//! Integration tests for update handling: ESWITCH's per-table, mostly
//! non-destructive updates versus the OVS architecture's full cache
//! invalidation (§3.4 and Figs. 17–18).

use eswitch::runtime::EswitchRuntime;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowMod};
use ovsdp::OvsDatapath;
use workloads::gateway::{self, GatewayConfig};
use workloads::l2::{self, L2Config};

fn small_gateway() -> GatewayConfig {
    GatewayConfig {
        ces: 3,
        users_per_ce: 5,
        routing_prefixes: 300,
        seed: 31,
        preinstall_users: true,
    }
}

#[test]
fn route_update_is_incremental_for_eswitch_and_flushes_ovs() {
    let config = small_gateway();
    let eswitch = EswitchRuntime::compile(gateway::build_pipeline(&config)).unwrap();
    let ovs = OvsDatapath::new(gateway::build_pipeline(&config));
    let traffic = gateway::build_traffic(&config, 200);

    // Warm both.
    for i in 0..2_000 {
        eswitch.process(&mut traffic.packet(i));
        ovs.process(&mut traffic.packet(i));
    }
    let megaflows_before = ovs.megaflow_count();
    assert!(megaflows_before > 0);

    // A single route added to the last-level routing table.
    let fm = FlowMod::add(
        gateway::ROUTING_TABLE,
        FlowMatch::any().with_prefix(
            Field::Ipv4Dst,
            u128::from(u32::from_be_bytes([203, 0, 113, 0])),
            24,
        ),
        134,
        terminal_actions(vec![Action::Output(1)]),
    );
    eswitch.flow_mod(&fm).unwrap();
    ovs.flow_mod(&fm).unwrap();

    // ESWITCH absorbed it in place (LPM insert), no full recompilation; the
    // counter records meaningful units (one update touching one entry).
    assert_eq!(eswitch.updates.incremental.updates(), 1);
    assert_eq!(eswitch.updates.incremental.entries(), 1);
    assert_eq!(eswitch.updates.full_recompiles.updates(), 0);
    // OVS had to drop every cached megaflow: the gateway rewrites Ipv4Dst
    // mid-pipeline, so the route's delta is not selective-safe and the
    // conservative full flush applies.
    assert_eq!(ovs.megaflow_count(), 0);

    // Both still forward the pre-existing traffic identically, and both now
    // route the new prefix.
    for i in 0..200 {
        let mut a = traffic.packet(i);
        let mut b = traffic.packet(i);
        assert_eq!(
            eswitch.process(&mut a).decision(),
            ovs.process(&mut b).decision()
        );
    }
    let new_dst = pkt::builder::PacketBuilder::tcp()
        .vlan(gateway::ce_vlan(0))
        .ipv4_src(gateway::user_private_ip(0, 0).octets())
        .ipv4_dst([203, 0, 113, 7])
        .in_port(0)
        .build();
    assert_eq!(eswitch.process(&mut new_dst.clone()).outputs, vec![1]);
    assert_eq!(ovs.process(&mut new_dst.clone()).outputs, vec![1]);
}

#[test]
fn batched_updates_keep_both_switches_consistent() {
    // The Fig. 18 "batched updates" scenario: 20 adds and 20 strict deletes
    // applied back to back; afterwards both architectures agree on fresh
    // traffic and ESWITCH never needed a full recompile.
    let config = L2Config {
        table_size: 256,
        ports: 4,
        seed: 33,
    };
    let eswitch = EswitchRuntime::compile(l2::build_pipeline(&config)).unwrap();
    let ovs = OvsDatapath::new(l2::build_pipeline(&config));

    for round in 0..5u64 {
        let base = 0x0600_0000_0000 + round * 100;
        let mods: Vec<FlowMod> = (0..20)
            .map(|i| {
                FlowMod::add(
                    0,
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(base + i)),
                    100,
                    terminal_actions(vec![Action::Output(2)]),
                )
            })
            .collect();
        let dels: Vec<FlowMod> = (0..20)
            .map(|i| {
                FlowMod::delete_strict(
                    0,
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(base + i)),
                    100,
                )
            })
            .collect();
        for fm in mods.iter().chain(dels.iter()) {
            eswitch.flow_mod(fm).unwrap();
            ovs.flow_mod(fm).unwrap();
        }
    }
    assert_eq!(eswitch.updates.full_recompiles.updates(), 0);
    assert!(eswitch.updates.incremental.updates() > 0);

    let traffic = l2::build_traffic(&config, 300);
    for packet in traffic.one_cycle() {
        let mut a = packet.clone();
        let mut b = packet;
        assert_eq!(
            eswitch.process(&mut a).decision(),
            ovs.process(&mut b).decision()
        );
    }
}

#[test]
fn updates_concurrent_with_forwarding_never_misroute() {
    // Packets processed while another thread updates an unrelated table must
    // never observe a broken datapath (the trampoline swap is atomic).
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let config = small_gateway();
    let eswitch = Arc::new(EswitchRuntime::compile(gateway::build_pipeline(&config)).unwrap());
    let traffic = gateway::build_traffic(&config, 100);
    let stop = Arc::new(AtomicBool::new(false));

    let updater = {
        let eswitch = Arc::clone(&eswitch);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let prefix = u32::from_be_bytes([202, (i % 200) as u8, 0, 0]);
                let fm = FlowMod::add(
                    gateway::ROUTING_TABLE,
                    FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(prefix), 16),
                    126,
                    terminal_actions(vec![Action::Output(1)]),
                );
                eswitch.flow_mod(&fm).unwrap();
                i += 1;
            }
            i
        })
    };

    for i in 0..5_000 {
        let mut packet = traffic.packet(i);
        let verdict = eswitch.process(&mut packet);
        // Every upstream packet of a provisioned user reaches the network.
        assert_eq!(verdict.outputs, vec![1]);
    }
    stop.store(true, Ordering::Relaxed);
    assert!(updater.join().unwrap() > 0);
}
