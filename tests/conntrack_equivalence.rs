//! Conntrack equivalence: random bidirectional TCP/UDP traces must drive
//! every datapath architecture to identical connection states, identical
//! NAT rewrites, and identical verdicts.
//!
//! Single-switch: the openflow interpreter (`Pipeline::process_ct`) is the
//! ground truth; the compiled datapath (`EswitchRuntime`), the OVS cache
//! hierarchy (`process_ct`), and the OVS burst/replay path
//! (`process_batch_into_ct`) each run the same trace against their own
//! private engine. After every event the verdict **and the frame bytes**
//! (NAT rewrites happen in place) must agree; after the trace the engines'
//! counter snapshots and live-connection counts must agree.
//!
//! Sharded: the same trace is dispatched through the 1-, 2- and 4-shard
//! runtime on both backends. With one shard the verdict *sequence* must
//! equal the interpreter's; with more shards symmetric RSS keeps each
//! connection's two directions on one shard, so the verdict *multiset*
//! must still match and the merged per-shard counters must reproduce the
//! single-engine totals and satisfy the conservation identity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use conntrack::CtEngine;
use eswitch::runtime::EswitchRuntime;
use openflow::ct::CtTuple;
use openflow::{Pipeline, Verdict};
use ovsdp::OvsDatapath;
use pkt::builder::PacketBuilder;
use pkt::{parse, Ipv4Addr4, Packet, ParseDepth, TcpFlags};
use proptest::prelude::*;
use shard::{BackendSpec, ShardedConfig, ShardedSwitch, VerdictSink};
use workloads::usecases::{PORT_NET, PORT_USER};
use workloads::{snat_edge, stateful_acl_gateway as acl};

/// One trace event: a packet of connection `conn`, in the original (client
/// → net) or reply direction, carrying one of four TCP flag shapes
/// (ignored for UDP connections).
#[derive(Debug, Clone, Copy)]
struct Event {
    conn: usize,
    reply: bool,
    flag_sel: u8,
}

fn flags_of(sel: u8) -> TcpFlags {
    match sel % 4 {
        0 => TcpFlags {
            syn: true,
            ..Default::default()
        },
        1 => TcpFlags {
            ack: true,
            ..Default::default()
        },
        2 => TcpFlags {
            fin: true,
            ack: true,
            ..Default::default()
        },
        _ => TcpFlags {
            rst: true,
            ..Default::default()
        },
    }
}

/// The client-side frame of connection `conn` (even ids are TCP, odd UDP).
fn forward_packet(conn: usize, flag_sel: u8) -> Packet {
    let tcp = conn.is_multiple_of(2);
    let src = Ipv4Addr4::new(10, 0, (conn >> 8) as u8, conn as u8);
    let dst = Ipv4Addr4::new(198, 51, 100, (conn % 200) as u8 + 1);
    let sport = 1024 + (conn % 30000) as u16;
    let builder = if tcp {
        PacketBuilder::tcp()
            .tcp_src(sport)
            .tcp_dst(80)
            .tcp_flags(flags_of(flag_sel))
    } else {
        PacketBuilder::udp().udp_src(sport).udp_dst(53)
    };
    builder
        .ipv4_src(src)
        .ipv4_dst(dst)
        .in_port(PORT_USER)
        .build()
}

/// A reply to `frame` *as it was forwarded* (so NAT translations are
/// answered like a real peer answers them), carrying `flag_sel`'s flags.
fn reply_packet(frame: &Packet, flag_sel: u8) -> Option<Packet> {
    let headers = parse(frame.data(), ParseDepth::L4);
    let t = CtTuple::from_frame(frame.data(), &headers)?;
    let builder = if t.proto == 6 {
        PacketBuilder::tcp()
            .tcp_src(t.dst_port)
            .tcp_dst(t.src_port)
            .tcp_flags(flags_of(flag_sel))
    } else {
        PacketBuilder::udp().udp_src(t.dst_port).udp_dst(t.src_port)
    };
    Some(
        builder
            .ipv4_src(Ipv4Addr4::from_u32(t.dst_ip))
            .ipv4_dst(Ipv4Addr4::from_u32(t.src_ip))
            .in_port(PORT_NET)
            .build(),
    )
}

fn event_strategy(conns: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0..conns, any::<bool>(), 0u8..4).prop_map(|(conn, reply, flag_sel)| Event {
            conn,
            reply,
            flag_sel,
        }),
        1..96,
    )
}

/// Materialises a trace into concrete input packets, interpreting reply
/// events against the frame the *reference* datapath last forwarded for
/// that connection (`last_forward`). Replies to connections that never
/// forwarded anything probe the reverse of the original tuple —
/// unsolicited traffic a stateful verb must deny.
fn event_input(ev: &Event, last_forward: &HashMap<usize, Packet>) -> Packet {
    if ev.reply {
        let base = last_forward
            .get(&ev.conn)
            .cloned()
            .unwrap_or_else(|| forward_packet(ev.conn, 0));
        reply_packet(&base, ev.flag_sel).expect("ipv4 tcp/udp frame is replyable")
    } else {
        forward_packet(ev.conn, ev.flag_sel)
    }
}

/// Runs `events` through all four single-switch architectures over the
/// given stateful use case, asserting equivalence event by event.
fn assert_single_switch_equivalence(
    label: &str,
    build: impl Fn() -> Pipeline,
    ct_config: &conntrack::CtConfig,
    events: &[Event],
) {
    let reference = build();
    let mut ct_ref = CtEngine::new(ct_config);
    let eswitch = EswitchRuntime::compile(build()).expect("pipeline compiles");
    let mut ct_es = CtEngine::new(ct_config);
    let ovs = OvsDatapath::new(build());
    let mut ct_ovs = CtEngine::new(ct_config);
    let ovs_burst = OvsDatapath::new(build());
    let mut ct_burst = CtEngine::new(ct_config);

    let mut last_forward: HashMap<usize, Packet> = HashMap::new();
    let mut burst_verdicts: Vec<Verdict> = Vec::with_capacity(1);
    for (i, ev) in events.iter().enumerate() {
        let input = event_input(ev, &last_forward);
        let mut p_ref = input.clone();
        let mut p_es = input.clone();
        let mut p_ovs = input.clone();
        let mut p_burst = input;

        let want = reference.process_ct(&mut p_ref, &mut ct_ref);
        let got_es = eswitch.process_ct(&mut p_es, &mut ct_es);
        let got_ovs = ovs.process_ct(&mut p_ovs, &mut ct_ovs);
        burst_verdicts.clear();
        ovs_burst.process_batch_into_ct(
            std::slice::from_mut(&mut p_burst),
            &mut burst_verdicts,
            &mut ct_burst,
        );

        for (arch, got, frame) in [
            ("eswitch", &got_es, &p_es),
            ("ovs", &got_ovs, &p_ovs),
            ("ovs-burst", &burst_verdicts[0], &p_burst),
        ] {
            assert_eq!(
                got.outputs, want.outputs,
                "{label}/{arch}: verdict diverged at event {i} ({ev:?})"
            );
            assert_eq!(
                frame.data(),
                p_ref.data(),
                "{label}/{arch}: frame bytes (NAT rewrites) diverged at event {i} ({ev:?})"
            );
        }

        if !ev.reply && !want.outputs.is_empty() {
            last_forward.insert(ev.conn, p_ref.clone());
        }
    }

    // Identical traces must leave identical connection state behind.
    let mut snaps = Vec::new();
    for (arch, engine) in [
        ("reference", &mut ct_ref),
        ("eswitch", &mut ct_es),
        ("ovs", &mut ct_ovs),
        ("ovs-burst", &mut ct_burst),
    ] {
        engine.advance_to(engine.now()); // flush batched hit counts
        snaps.push((arch, engine.live(), engine.stats().snapshot()));
    }
    let (_, want_live, want_snap) = snaps[0];
    for (arch, live, snap) in &snaps {
        assert_eq!(
            *live, want_live,
            "{label}/{arch}: live connections diverged"
        );
        assert_eq!(*snap, want_snap, "{label}/{arch}: ct counters diverged");
        assert!(snap.identity_holds(), "{label}/{arch}: identity violated");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stateful_acl_architectures_agree(events in event_strategy(24)) {
        assert_single_switch_equivalence(
            "acl",
            || acl::build_pipeline(&acl::StatefulAclConfig::default()),
            &acl::ct_config(),
            &events,
        );
    }

    #[test]
    fn snat_architectures_agree(events in event_strategy(24)) {
        assert_single_switch_equivalence(
            "snat",
            || snat_edge::build_pipeline(&snat_edge::SnatEdgeConfig::default()),
            &snat_edge::ct_config(),
            &events,
        );
    }
}

/// The ACL ct config with effectively infinite idle timeouts. The sharded
/// workers tick their engines once per burst (real time passes), while the
/// single-engine reference never ticks — equal timeouts would let a
/// SYN-state connection idle out mid-trace in one world but not the other.
/// Timeout behaviour has its own tests; this suite pins state equivalence.
fn patient_ct_config() -> conntrack::CtConfig {
    let mut config = acl::ct_config();
    config.timeouts = conntrack::CtTimeouts {
        tcp_syn: 1 << 40,
        tcp_established: 1 << 40,
        tcp_fin: 1 << 40,
        udp_new: 1 << 40,
        udp_established: 1 << 40,
    };
    config
}

/// The interpreter's verdicts for an ACL trace, with replies synthesised
/// from original tuples (the ACL gateway never rewrites, so the sharded
/// runs below can feed the byte-identical packet stream).
fn reference_run(events: &[Event]) -> (Vec<Packet>, Vec<Verdict>, conntrack::CtSnapshot) {
    let pipeline = acl::build_pipeline(&acl::StatefulAclConfig::default());
    let mut engine = CtEngine::new(&patient_ct_config());
    let mut last_forward: HashMap<usize, Packet> = HashMap::new();
    let mut inputs = Vec::with_capacity(events.len());
    let mut verdicts = Vec::with_capacity(events.len());
    for ev in events {
        let input = event_input(ev, &last_forward);
        let mut p = input.clone();
        let v = pipeline.process_ct(&mut p, &mut engine);
        if !ev.reply && !v.outputs.is_empty() {
            last_forward.insert(ev.conn, p);
        }
        inputs.push(input);
        verdicts.push(v);
    }
    engine.advance_to(engine.now());
    (inputs, verdicts, engine.stats().snapshot())
}

fn multiset(outputs: impl Iterator<Item = Vec<u32>>) -> HashMap<Vec<u32>, usize> {
    let mut m = HashMap::new();
    for o in outputs {
        *m.entry(o).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 1-/2-/4-shard runtime equivalence on both backends. Connection
    /// state is strictly shard-local; symmetric RSS pins both directions
    /// of a connection to one shard, so verdicts and aggregated counters
    /// must reproduce the single-engine reference exactly.
    #[test]
    fn sharded_runtime_agrees_with_reference(events in event_strategy(16)) {
        let (inputs, want_verdicts, want_snap) = reference_run(&events);
        let want_multiset = multiset(want_verdicts.iter().map(|v| v.outputs.to_vec()));

        for workers in [1usize, 2, 4] {
            for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
                let seen: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(Vec::new()));
                let sink_seen = Arc::clone(&seen);
                let sink: VerdictSink = Arc::new(move |_, _packet, verdict: &Verdict| {
                    sink_seen.lock().unwrap().push(verdict.outputs.to_vec());
                });
                let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
                    spec,
                    acl::build_pipeline(&acl::StatefulAclConfig::default()),
                    ShardedConfig {
                        workers,
                        ct: Some(patient_ct_config()),
                        ..ShardedConfig::default()
                    },
                    Some(sink),
                )
                .expect("pipeline compiles");
                for input in &inputs {
                    dispatcher.dispatch(input.clone());
                }
                dispatcher.flush();
                let report = switch.shutdown(dispatcher);
                let label = format!("{}x{workers}", spec.label());

                let got = seen.lock().unwrap();
                prop_assert_eq!(got.len(), inputs.len(), "{}: verdict count", &label);
                if workers == 1 {
                    // One shard processes in dispatch order: exact sequence.
                    for (i, (g, w)) in got.iter().zip(want_verdicts.iter()).enumerate() {
                        prop_assert_eq!(
                            g,
                            &w.outputs.to_vec(),
                            "{}: verdict sequence diverged at {}", &label, i
                        );
                    }
                } else {
                    prop_assert_eq!(
                        multiset(got.iter().cloned()),
                        want_multiset.clone(),
                        "{}: verdict multiset diverged", &label
                    );
                }

                // Shard-local state must aggregate to the single-engine
                // truth and satisfy the conservation identity per shard.
                let per_shard = report.ct_per_shard.as_ref().expect("ct stats recorded");
                prop_assert_eq!(per_shard.len(), workers, "{}", &label);
                for (shard, snap) in per_shard.iter().enumerate() {
                    prop_assert!(
                        snap.identity_holds(),
                        "{}: shard {} identity violated: {:?}", &label, shard, snap
                    );
                }
                let merged = report.ct_merged().expect("ct stats recorded");
                prop_assert_eq!(merged, want_snap, "{}: merged ct counters diverged", &label);
            }
        }
    }
}
