//! Allocation-regression tests: the steady-state cache hit paths of the OVS
//! datapath must not touch the heap. A counting global allocator wraps the
//! system allocator; after warm-up, processing packets that hit the
//! microflow or megaflow cache must leave the allocation counter untouched.
//!
//! This pins the tentpole property of the zero-allocation fast path: flat
//! mask projection into stack buffers, slice-borrow subtable probes, inline
//! miniflow keys, inline verdict port lists, and reused burst scratch.
//!
//! The conntrack tests extend the property to the stateful datapath: once a
//! connection is established, per-packet tracking (table probe, TCP state
//! advance, in-place timer re-arm, CLOCK recency bit, batched hit counters,
//! fixed-capacity NAT rewrite outcomes) is heap-free too — the engine's
//! slab, index, and wheel are all sized at construction.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench_harness::conntrack::{data_ring, warm_established, BURST};
use conntrack::CtEngine;
use netdev::Port;
use openflow::{Action, FlowEntry, FlowMatch, NullController, Pipeline, Verdict};
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use workloads::usecases::{PORT_NET, PORT_USER};
use workloads::{snat_edge, stateful_acl_gateway as acl};

/// Counts every allocation (alloc, alloc_zeroed, realloc) forwarded to the
/// system allocator. Deallocations are free and not counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure passthrough to the system allocator — every method forwards
// its arguments unchanged, so `GlobalAlloc`'s layout/aliasing contract holds
// exactly as it does for `System`; the counter bump has no side effect on
// allocation state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours; `layout` is forwarded unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours; `layout` is forwarded unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from this allocator, which forwards to
        // `System`, and `layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator, which forwards to
        // `System`; `layout` is the one it was allocated with.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn port_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for i in 0..16u16 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(openflow::Field::TcpDst, u128::from(1000 + i)),
            100,
            openflow::instruction::terminal_actions(vec![Action::Output(u32::from(i % 4))]),
        ));
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

fn flow_packets(flows: u16) -> Vec<Packet> {
    (0..flows)
        .map(|f| {
            PacketBuilder::tcp()
                .tcp_dst(1000 + (f % 16))
                .tcp_src(2000 + f)
                .build()
        })
        .collect()
}

#[test]
fn microflow_hit_path_is_allocation_free() {
    let dp = OvsDatapath::new(port_pipeline());
    let mut packets = flow_packets(64);
    // Warm up: slow path + megaflow promotion populate the EMC.
    for p in packets.iter_mut() {
        dp.process(p);
    }
    for p in packets.iter_mut() {
        dp.process(p);
    }
    assert!(
        dp.stats.microflow_hits.packets() > 0,
        "warm-up must reach the EMC"
    );

    let before_hits = dp.stats.microflow_hits.packets();
    let before = allocations();
    for p in packets.iter_mut() {
        std::hint::black_box(dp.process(p));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "microflow hit path allocated {} times over {} packets",
        after - before,
        packets.len()
    );
    assert_eq!(
        dp.stats.microflow_hits.packets() - before_hits,
        packets.len() as u64,
        "every measured packet must be a microflow hit"
    );
}

#[test]
fn megaflow_hit_path_is_allocation_free() {
    // EMC disabled: every packet is answered by tuple-space search.
    let dp = OvsDatapath::with_config(
        port_pipeline(),
        OvsConfig {
            use_microflow: false,
            ..OvsConfig::default()
        },
        Box::new(NullController::new()),
    );
    let mut packets = flow_packets(64);
    for p in packets.iter_mut() {
        dp.process(p);
    }
    let before_hits = dp.stats.megaflow_hits.packets();
    let before = allocations();
    for p in packets.iter_mut() {
        std::hint::black_box(dp.process(p));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "megaflow hit path allocated {} times over {} packets",
        after - before,
        packets.len()
    );
    assert_eq!(
        dp.stats.megaflow_hits.packets() - before_hits,
        packets.len() as u64,
        "every measured packet must be a megaflow hit"
    );
}

#[test]
fn batched_hit_path_is_allocation_free_with_reused_buffers() {
    let dp = OvsDatapath::new(port_pipeline());
    let mut packets = flow_packets(64);
    let mut verdicts = Vec::new();
    // Warm up caches AND the reusable burst scratch / verdict buffers.
    dp.process_batch_into(&mut packets, &mut verdicts);
    dp.process_batch_into(&mut packets, &mut verdicts);

    let before = allocations();
    for _ in 0..8 {
        dp.process_batch_into(&mut packets, &mut verdicts);
        std::hint::black_box(verdicts.len());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "batched hit path allocated {} times over {} packets",
        after - before,
        8 * packets.len()
    );
}

/// Runs `ring` through a warmed stateful datapath for eight passes —
/// ticking the engine once per burst, exactly like the shard worker loop —
/// and asserts the established path (conntrack lookup, state advance,
/// in-place re-arm, CLOCK touch, batched hit counting, wheel sweeps, and
/// any NAT rewrites from the stored tuples) never touches the heap.
fn assert_established_path_allocation_free(
    name: &str,
    dp: &OvsDatapath,
    engine: &mut CtEngine,
    ring: &[Packet],
) {
    let mut work: Vec<Packet> = ring.to_vec();
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST);
    // One unmeasured pass warms the burst scratch and verdict buffers.
    work.clone_from_slice(ring);
    for chunk in work.chunks_mut(BURST) {
        engine.tick();
        dp.process_batch_into_ct(chunk, &mut verdicts, engine);
    }
    let hits_before = {
        engine.advance_to(engine.now());
        engine.stats().snapshot().hits
    };

    // Restore the pristine ring *outside* the counted region each pass
    // (cloning packets allocates; the datapath must not).
    let mut allocated = 0;
    for _ in 0..8 {
        work.clone_from_slice(ring);
        let before = allocations();
        for chunk in work.chunks_mut(BURST) {
            engine.tick();
            dp.process_batch_into_ct(chunk, &mut verdicts, engine);
            std::hint::black_box(verdicts.len());
        }
        allocated += allocations() - before;
    }
    assert_eq!(
        allocated,
        0,
        "{name}: established path allocated {allocated} times over {} packets",
        8 * ring.len()
    );

    engine.advance_to(engine.now());
    assert_eq!(
        engine.stats().snapshot().hits - hits_before,
        8 * ring.len() as u64,
        "{name}: every measured packet must be an established-path ct hit"
    );
}

/// The full port I/O loop — burst RX out of an ingress port's ring into a
/// reused buffer, cache-hit processing, egress staging, one vectored
/// `tx_burst`, and wire-side drain/re-injection — is heap-free in steady
/// state. Packets circulate by move the whole way (no clones), so after the
/// warm-up pass sizes every scratch buffer, eight full laps of 64 packets
/// must leave the allocation counter untouched. This is the regression for
/// the old `rx_burst`/`tx_drain` per-burst `Vec` allocations.
#[test]
fn port_rx_process_tx_loop_is_allocation_free() {
    let dp = OvsDatapath::new(port_pipeline());
    let ingress = Port::with_depth(1, 256);
    let egress = Port::with_depth(2, 256);

    let mut staged = flow_packets(64);
    let mut batch: Vec<Packet> = Vec::with_capacity(BURST);
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST);

    // One lap moves a burst all the way around the loop and back into the
    // ingress ring, warming caches and every reusable buffer on the way.
    let lap = |staged: &mut Vec<Packet>, batch: &mut Vec<Packet>, verdicts: &mut Vec<Verdict>| {
        assert_eq!(ingress.inject_burst(staged), 64);
        loop {
            if ingress.rx_burst_into(batch, BURST) == 0 {
                break;
            }
            dp.process_batch_into(batch, verdicts);
            std::hint::black_box(verdicts.len());
            // Stage the whole burst for one vectored flush (the pipeline's
            // verdicts all name ports; routing fan-out is covered by the
            // multiport suite — here the property under test is the I/O).
            let frames = batch.len();
            assert_eq!(egress.tx_burst(batch), frames);
        }
        while egress.tx_drain_into(staged, BURST) > 0 {}
        assert_eq!(staged.len(), 64, "a lap lost frames");
    };
    lap(&mut staged, &mut batch, &mut verdicts);
    lap(&mut staged, &mut batch, &mut verdicts);

    let before = allocations();
    for _ in 0..8 {
        lap(&mut staged, &mut batch, &mut verdicts);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "port RX→process→TX loop allocated {} times over {} packets",
        after - before,
        8 * 64
    );
    assert_eq!(ingress.stats().rx.drops(), 0);
    assert_eq!(egress.stats().tx.drops(), 0);
}

#[test]
fn conntrack_established_path_is_allocation_free() {
    let dp = OvsDatapath::new(acl::build_pipeline(&acl::StatefulAclConfig::default()));
    let mut engine = CtEngine::new(&acl::ct_config());
    let ring = data_ring(64, PORT_USER);
    warm_established(&dp, &mut engine, &ring, PORT_NET);
    assert_established_path_allocation_free("stateful_acl", &dp, &mut engine, &ring);
}

#[test]
fn conntrack_nat_established_path_is_allocation_free() {
    let dp = OvsDatapath::new(snat_edge::build_pipeline(
        &snat_edge::SnatEdgeConfig::default(),
    ));
    let mut engine = CtEngine::new(&snat_edge::ct_config());
    let ring = data_ring(64, PORT_USER);
    warm_established(&dp, &mut engine, &ring, PORT_NET);
    assert_established_path_allocation_free("snat_edge", &dp, &mut engine, &ring);
}
