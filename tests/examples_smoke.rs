//! Smoke test: every example under `examples/` must build and run to
//! completion. Examples are not exercised by `cargo build` / `cargo test`
//! alone, so without this gate they can silently rot as the crates evolve.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "decomposition",
    "load_balancer",
    "access_gateway",
    "cache_attack",
    "sharded_switch",
    "learning_switch_sharded",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} produced no output"
        );
    }
}
