//! Updates-under-traffic: flow-mods racing live packets through the sharded
//! runtime.
//!
//! The §3.4 guarantee the `shard` control plane must uphold: an update is
//! atomic per packet. While packets stream through N worker shards and
//! flow-mods fire from another thread, every verdict must be consistent with
//! either the pre-update or the post-update pipeline — never a mixture
//! within one packet — and the epoch swap must not drop a single packet.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eswitch_repro::openflow::flow_match::FlowMatch;
use eswitch_repro::openflow::instruction::terminal_actions;
use eswitch_repro::openflow::{Action, Field, FlowEntry, FlowMod, Pipeline, Verdict};
use eswitch_repro::pkt::builder::PacketBuilder;
use eswitch_repro::pkt::Packet;
use eswitch_repro::shard::{BackendSpec, ShardedConfig, ShardedSwitch, VerdictSink};

/// The two-output entry the updater keeps flipping. A torn update would show
/// up as a verdict mixing the pairs (e.g. ports `[1, 4]`).
const OLD_OUTPUTS: [u32; 2] = [1, 2];
const NEW_OUTPUTS: [u32; 2] = [3, 4];
const FINAL_OUTPUTS: [u32; 2] = [9, 10];

/// `(shard, output ports)` pairs recorded by the verdict sink.
type SeenVerdicts = Arc<Mutex<Vec<(usize, Vec<u32>)>>>;

fn pipeline_with(outputs: &[u32]) -> Vec<Action> {
    outputs.iter().map(|p| Action::Output(*p)).collect()
}

fn base_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::TcpDst, 80),
        100,
        terminal_actions(pipeline_with(&OLD_OUTPUTS)),
    ));
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

fn flip_to(outputs: &[u32]) -> FlowMod {
    FlowMod::add(
        0,
        FlowMatch::any().with_exact(Field::TcpDst, 80),
        100,
        terminal_actions(pipeline_with(outputs)),
    )
}

fn traffic_packet(i: usize) -> Packet {
    PacketBuilder::tcp()
        .tcp_dst(80)
        .tcp_src(1024 + (i % 2048) as u16)
        .build()
}

#[test]
fn flow_mods_under_load_are_per_packet_atomic_and_lossless() {
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        let seen: SeenVerdicts = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let sink: VerdictSink = Arc::new(move |shard, _packet, verdict: &Verdict| {
            sink_seen
                .lock()
                .unwrap()
                .push((shard, verdict.outputs.to_vec()));
        });
        let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
            spec,
            base_pipeline(),
            ShardedConfig {
                workers: 2,
                ring_capacity: 256,
                ..ShardedConfig::default()
            },
            Some(sink),
        )
        .expect("pipeline compiles");
        let switch = Arc::new(switch);

        // Updater: flips the entry between the two output pairs from another
        // thread while the main thread keeps dispatching.
        let updates = 24u64;
        let updater = {
            let switch = Arc::clone(&switch);
            let updating = Arc::new(AtomicBool::new(true));
            let flag = Arc::clone(&updating);
            let handle = std::thread::spawn(move || {
                for round in 0..updates {
                    let outputs = if round % 2 == 0 {
                        &NEW_OUTPUTS
                    } else {
                        &OLD_OUTPUTS
                    };
                    switch
                        .flow_mod(&flip_to(outputs))
                        .expect("flow-mod applies");
                    std::thread::yield_now();
                }
                flag.store(false, Ordering::Release);
            });
            (handle, updating)
        };

        // Traffic: keep dispatching until every update has been published.
        let mut dispatched = 0usize;
        while updater.1.load(Ordering::Acquire) {
            for _ in 0..256 {
                dispatcher.dispatch(traffic_packet(dispatched));
                dispatched += 1;
            }
        }
        updater.0.join().expect("updater panicked");
        assert_eq!(switch.epoch(), updates, "{}", spec.label());

        // Workers must have kept processing while epochs advanced.
        let mid = switch.stats();
        assert!(
            mid.packets > 0,
            "{}: no packets processed during the update storm",
            spec.label()
        );

        // Final update; then stream until *every* shard demonstrably serves
        // it (a shard applies an epoch at its next loop iteration, so this
        // converges quickly — the deadline is pure paranoia).
        switch.flow_mod(&flip_to(&FINAL_OUTPUTS)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut converged: HashSet<usize> = HashSet::new();
        while converged.len() < switch.workers() {
            for _ in 0..64 {
                dispatcher.dispatch(traffic_packet(dispatched));
                dispatched += 1;
            }
            dispatcher.flush();
            for (shard, outputs) in seen.lock().unwrap().iter() {
                if outputs == &FINAL_OUTPUTS {
                    converged.insert(*shard);
                }
            }
            assert!(
                Instant::now() < deadline,
                "{}: shards never converged to the final update (saw {:?})",
                spec.label(),
                converged
            );
        }

        let report = switch_into_inner(switch).shutdown(dispatcher);

        // Losslessness: every dispatched packet was processed and produced
        // exactly one verdict.
        assert_eq!(report.dispatched, dispatched as u64, "{}", spec.label());
        assert_eq!(
            report.processed.packets,
            report.dispatched,
            "{}: packets lost across the epoch swaps",
            spec.label()
        );
        let verdicts = seen.lock().unwrap();
        assert_eq!(verdicts.len(), dispatched, "{}", spec.label());

        // Per-packet atomicity: every verdict matches exactly one epoch's
        // pipeline; a mixed pair would be a torn update.
        let valid: [&[u32]; 3] = [&OLD_OUTPUTS, &NEW_OUTPUTS, &FINAL_OUTPUTS];
        let mut seen_pairs: HashSet<Vec<u32>> = HashSet::new();
        for (shard, outputs) in verdicts.iter() {
            assert!(
                valid.contains(&outputs.as_slice()),
                "{}: shard {shard} emitted a torn verdict {outputs:?}",
                spec.label()
            );
            seen_pairs.insert(outputs.clone());
        }
        // The updates genuinely raced the traffic: more than one epoch's
        // behaviour must appear in the stream.
        assert!(
            seen_pairs.len() >= 2,
            "{}: traffic never observed an update ({seen_pairs:?})",
            spec.label()
        );
        assert_eq!(report.epoch, updates + 1, "{}", spec.label());
    }
}

/// Unwraps the `Arc` once the updater thread is joined (sole owner again).
fn switch_into_inner(switch: Arc<ShardedSwitch>) -> ShardedSwitch {
    Arc::try_unwrap(switch).unwrap_or_else(|_| panic!("switch still shared"))
}
