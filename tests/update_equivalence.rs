//! Differential property test for the §3.4 update planner: replaying a
//! random flow-mod sequence must leave every update path observationally
//! identical —
//!
//! (a) the planner-driven `EswitchRuntime` (incremental edits, per-table
//!     trampoline swaps, full recompiles, whatever the planner picked),
//! (b) a from-scratch full recompilation of the final pipeline,
//! (c) the sharded runtime after epoch convergence, on both the ESWITCH and
//!     the OVS backend (delta-aware cache invalidation included),
//!
//! all compared against the reference interpreter on a fixed probe set. The
//! ladder is an optimisation, never a semantic change.

use eswitch::compile::compile_default;
use eswitch::runtime::EswitchRuntime;
use openflow::flow_match::FlowMatch;
use openflow::flow_mod::{apply_flow_mod, FlowModCommand};
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowMod, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use proptest::prelude::*;
use shard::{BackendSpec, ShardedConfig, ShardedSwitch, VerdictSink};

const MAC_BASE: u64 = 0x0200_0000_0000;

/// A hash-templated L2 pipeline (table 0) and an LPM-templated routing
/// pipeline share the flow-mod universe below.
fn base_pipeline(lpm: bool) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    if lpm {
        for i in 0..12u32 {
            let len = if i % 2 == 0 { 16 } else { 24 };
            t.insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, i as u8, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(i % 3)]),
            ));
        }
    } else {
        for i in 0..48u64 {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(MAC_BASE + i)),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

/// One randomly generated flow-mod over the shared universe: hash-shaped MAC
/// adds/deletes, LPM-shaped route adds/deletes, non-strict deletes, modifies,
/// and the occasional structural add into a fresh table.
fn arb_flow_mod() -> impl Strategy<Value = FlowMod> {
    prop_oneof![
        // Template-shaped MAC add. Priorities vary deliberately: a
        // same-match add at another priority creates a duplicate a single
        // hash slot cannot express, which must escalate to a rebuild that
        // preserves highest-priority-wins semantics (and priority 1 ties
        // the catch-all, breaking the template prerequisite entirely).
        (
            0u64..64,
            0u32..4,
            prop_oneof![Just(1u16), Just(5), Just(10), Just(15)]
        )
            .prop_map(|(mac, out, priority)| FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(MAC_BASE + mac)),
                priority,
                terminal_actions(vec![Action::Output(out)]),
            )),
        // Strict MAC delete (incremental when present and unduplicated).
        (0u64..64, prop_oneof![Just(5u16), Just(10), Just(15)]).prop_map(|(mac, priority)| {
            FlowMod::delete_strict(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(MAC_BASE + mac)),
                priority,
            )
        }),
        // Route add (incremental on the LPM pipeline).
        (0u8..16, prop_oneof![Just(16u32), Just(24u32)], 0u32..4).prop_map(|(octet, len, out)| {
            FlowMod::add(
                0,
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, octet, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(out)]),
            )
        }),
        // Strict route delete.
        (0u8..16, prop_oneof![Just(16u32), Just(24u32)]).prop_map(|(octet, len)| {
            FlowMod::delete_strict(
                0,
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, octet, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
            )
        }),
        // Non-strict delete (per-table rebuild).
        (0u64..64).prop_map(|mac| FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(MAC_BASE + mac)),
        )),
        // Modify the catch-all's instructions.
        (0u32..4).prop_map(|out| FlowMod {
            command: FlowModCommand::Modify,
            table_id: Some(0),
            flow_match: FlowMatch::any(),
            priority: 0,
            instructions: terminal_actions(vec![Action::Output(90 + out)]),
            cookie: None,
        }),
        // Structural: install into a table the datapath does not have yet.
        (1u32..3, 0u32..4).prop_map(|(t, out)| FlowMod::add(
            t,
            FlowMatch::any().with_exact(Field::TcpDst, 8000 + u128::from(t)),
            20,
            terminal_actions(vec![Action::Output(out)]),
        )),
    ]
}

/// Probe packets covering the whole universe the flow-mods touch.
fn probes() -> Vec<Packet> {
    let mut probes = Vec::new();
    for mac in (0u64..64).step_by(5) {
        probes.push(
            PacketBuilder::udp()
                .eth_dst(pkt::MacAddr::from_u64(MAC_BASE + mac).octets())
                .build(),
        );
    }
    for octet in (0u8..16).step_by(3) {
        probes.push(PacketBuilder::udp().ipv4_dst([10, octet, 1, 9]).build());
        probes.push(PacketBuilder::udp().ipv4_dst([10, octet, 200, 9]).build());
    }
    for port in [8001u16, 8002, 443] {
        probes.push(PacketBuilder::tcp().tcp_dst(port).build());
    }
    probes
}

/// Runs the flow-mod sequence through the sharded runtime (one worker, so
/// the verdict sink observes dispatch order) and returns per-probe decisions
/// after every shard converged to the final epoch.
type Decision = (Vec<u32>, bool, bool);

fn sharded_decisions(
    spec: BackendSpec,
    base: &Pipeline,
    mods: &[FlowMod],
    probes: &[Packet],
) -> Vec<Decision> {
    use std::sync::{Arc, Mutex};

    let seen: Arc<Mutex<Vec<Decision>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let sink: VerdictSink = Arc::new(move |_shard, _packet, verdict| {
        sink_seen.lock().unwrap().push(verdict.decision());
    });
    let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
        spec,
        base.clone(),
        ShardedConfig {
            workers: 1,
            ring_capacity: 128,
            ..ShardedConfig::default()
        },
        Some(sink),
    )
    .expect("base pipeline compiles");

    for fm in mods {
        let _ = switch.flow_mod(fm);
    }
    // Wait for the single shard to converge to the newest epoch before
    // probing, so every probe sees the final state.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while switch.shard_epochs().iter().any(|e| *e != switch.epoch()) {
        assert!(
            std::time::Instant::now() < deadline,
            "shards never converged"
        );
        std::thread::yield_now();
    }
    for p in probes {
        dispatcher.dispatch(p.clone());
    }
    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, probes.len() as u64);
    let decisions = seen.lock().unwrap().clone();
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn planner_full_recompile_and_sharded_paths_agree(
        lpm in any::<bool>(),
        mods in prop::collection::vec(arb_flow_mod(), 1..14),
    ) {
        let base = base_pipeline(lpm);

        // Reference: the declarative pipeline with the same mods applied.
        let mut reference = base.clone();
        let mut applied = Vec::new();
        for fm in &mods {
            if apply_flow_mod(&mut reference, fm).is_ok() {
                applied.push(fm.clone());
            }
        }

        // (a) the planner-driven incremental path.
        let runtime = EswitchRuntime::compile(base.clone()).unwrap();
        for fm in &mods {
            let _ = runtime.flow_mod(fm);
        }
        // (b) a from-scratch full recompile of the final pipeline.
        let recompiled = compile_default(&reference).unwrap();

        let probes = probes();
        for (i, probe) in probes.iter().enumerate() {
            let expected = reference.process(&mut probe.clone()).decision();
            let mut a = probe.clone();
            prop_assert_eq!(
                runtime.process(&mut a).decision(),
                expected.clone(),
                "probe {} diverged on the planner path (lpm={})",
                i,
                lpm
            );
            let mut b = probe.clone();
            prop_assert_eq!(
                recompiled.process(&mut b).decision(),
                expected,
                "probe {} diverged on the full recompile (lpm={})",
                i,
                lpm
            );
        }

        // (c) the sharded runtime after convergence, both backends.
        let expected: Vec<_> = probes
            .iter()
            .map(|p| reference.process(&mut p.clone()).decision())
            .collect();
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            let got = sharded_decisions(spec, &base, &mods, &probes);
            prop_assert_eq!(
                &got,
                &expected,
                "sharded {} diverged (lpm={})",
                spec.label(),
                lpm
            );
        }
    }
}
