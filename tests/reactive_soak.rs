//! Soak and backpressure tests for the sharded runtime's asynchronous
//! controller channel (the reactive slow path).
//!
//! * `sharded_learning_switch_converges_under_load` — streams ≥100K packets
//!   over 256 (src, dst) MAC flows through a sharded learning switch while
//!   punts resolve asynchronously: zero packets lost, punts for every flow
//!   go to zero once its install lands, and the reactive installs publish as
//!   `Incremental` epochs (the §3.4 ladder under miss-driven churn).
//! * `punt_ring_overflow_is_counted_never_blocking` — shrinks the punt ring
//!   to 4 slots under a miss storm with a deliberately slow controller:
//!   workers keep forwarding (never block on the ring), shed punt copies are
//!   counted as overflow, and every counter identity holds at shutdown.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eswitch_repro::openflow::controller::FnController;
use eswitch_repro::openflow::flow_match::FlowMatch;
use eswitch_repro::openflow::instruction::terminal_actions;
use eswitch_repro::openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, PacketIn,
    PacketOut, Pipeline, TableMissBehavior,
};
use eswitch_repro::pkt::builder::PacketBuilder;
use eswitch_repro::pkt::{MacAddr, Packet};
use eswitch_repro::shard::{BackendSpec, RssDispatcher, ShardedConfig, ShardedSwitch};

const HOSTS: u64 = 16;
const HOST_MAC_BASE: u64 = 0x0200_0000_2000;
/// Seeded MACs in a range disjoint from the hosts, so table 0 compiles to
/// the compound-hash template and learned installs absorb incrementally.
const SEED_MAC_BASE: u64 = 0x0200_0000_7000;

fn host_mac(i: u64) -> MacAddr {
    MacAddr::from_u64(HOST_MAC_BASE + i)
}

/// Table 0: 64 seeded MAC rules (hash template) + miss punts to controller.
fn learning_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.miss = TableMissBehavior::ToController;
    for i in 0..64u64 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(SEED_MAC_BASE + i)),
            10,
            terminal_actions(vec![Action::Output((i % 4) as u32)]),
        ));
    }
    p
}

/// A classic L2 learning switch as a controller application: learn the
/// source MAC's port from every packet-in; once the destination is known,
/// install a dst rule (through the epoch-swap control plane) and resubmit
/// the triggering packet so it takes the new rule; flood while unknown.
fn learning_controller() -> Box<dyn Controller> {
    let mut learned: HashMap<u64, u32> = HashMap::new();
    Box::new(FnController::new(move |pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        learned.insert(key.eth_src, pi.packet.in_port);
        match learned.get(&key.eth_dst) {
            Some(port) => vec![
                ControllerDecision::FlowMod(FlowMod::add(
                    0,
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                    10,
                    terminal_actions(vec![Action::Output(*port)]),
                )),
                ControllerDecision::PacketOut(PacketOut::resubmit(pi.packet)),
            ],
            None => vec![ControllerDecision::PacketOut(PacketOut::new(
                pi.packet,
                vec![Action::Flood],
            ))],
        }
    }))
}

fn flow_packet(src: u64, dst: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(host_mac(src))
        .eth_dst(host_mac(dst))
        .in_port(src as u32)
        .build()
}

/// Waits until the reactive flow is provably quiescent: every dispatched
/// packet processed, every punt answered, every re-injected packet
/// processed, twice in a row.
fn quiesce(switch: &ShardedSwitch, dispatcher: &mut RssDispatcher) {
    dispatcher.flush();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = switch.reactive_stats().expect("reactive launch");
        let settled = switch.stats().packets == dispatcher.dispatched()
            && stats.answered == stats.punted
            && stats.injected == stats.reinjected;
        if settled
            && switch.reactive_stats().expect("reactive launch") == stats
            && switch.stats().packets == dispatcher.dispatched()
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "reactive flow never quiesced: {stats:?}"
        );
        std::thread::yield_now();
    }
}

/// [`quiesce`], then additionally wait for every shard to serve the newest
/// epoch — the moment the last punt is answered its install is published
/// but a shard only swaps it in at the next burst boundary.
fn quiesce_and_converge(switch: &ShardedSwitch, dispatcher: &mut RssDispatcher) {
    quiesce(switch, dispatcher);
    let deadline = Instant::now() + Duration::from_secs(30);
    while switch.shard_epochs().iter().any(|e| *e != switch.epoch()) {
        assert!(Instant::now() < deadline, "shards never converged");
        std::thread::yield_now();
    }
}

#[test]
fn sharded_learning_switch_converges_under_load() {
    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        BackendSpec::eswitch(),
        learning_pipeline(),
        ShardedConfig {
            workers: 2,
            ring_capacity: 1024,
            ..ShardedConfig::default()
        },
        learning_controller(),
    )
    .unwrap();

    // Phase 0: every host speaks once, so the controller learns all ports.
    for i in 0..HOSTS {
        dispatcher.dispatch(flow_packet(i, (i + 1) % HOSTS));
    }

    // Phase 1: ≥100K packets round-robin over all 256 (src, dst) pairs while
    // the punts resolve. In-flight + processed always adds up: nothing is
    // dropped on the punt path, and the shutdown fixpoint proves it below.
    let flows: Vec<(u64, u64)> = (0..HOSTS)
        .flat_map(|s| (0..HOSTS).map(move |d| (s, d)))
        .collect();
    assert_eq!(flows.len(), 256);
    let mut streamed = 0usize;
    while streamed < 100_000 {
        for &(s, d) in &flows {
            dispatcher.dispatch(flow_packet(s, d));
        }
        streamed += flows.len();
    }
    quiesce_and_converge(&switch, &mut dispatcher);
    let converged = switch.reactive_stats().unwrap();
    assert!(converged.punted > 0, "the miss path never punted");
    assert!(
        converged.flow_mods >= HOSTS,
        "installs missing: {converged:?}"
    );
    assert!(converged.reinjected > 0, "no packet-out was re-injected");

    // Phase 2: punts for every flow are zero after its install — another
    // 50K packets over the same flows must not raise a single new punt
    // attempt (admitted or suppressed): every flow hits the fast path.
    for _ in 0..200 {
        for &(s, d) in &flows {
            dispatcher.dispatch(flow_packet(s, d));
        }
    }
    quiesce(&switch, &mut dispatcher);
    let settled = switch.reactive_stats().unwrap();
    assert_eq!(
        settled.attempts(),
        converged.attempts(),
        "installed flows kept punting"
    );
    assert_eq!(settled.answered, converged.answered);

    // The reactive installs went through the §3.4 planner: the histogram is
    // dominated by Incremental epochs (hash-shaped MAC adds).
    let classes = switch.update_classes();
    assert!(
        classes.incremental >= HOSTS,
        "learned installs should be incremental: {classes:?}"
    );
    assert!(
        classes.incremental > classes.per_table + classes.full,
        "histogram not dominated by Incremental: {classes:?}"
    );

    let report = switch.shutdown(dispatcher);
    // Zero lost packets: processed + in-flight == dispatched, and at
    // shutdown in-flight is provably zero.
    assert_eq!(report.processed.packets, report.dispatched);
    let reactive = report.reactive.expect("reactive launch");
    // Every punted, answered, re-injected and suppressed packet accounted
    // exactly once.
    assert_eq!(reactive.answered, reactive.punted);
    assert_eq!(reactive.injected, reactive.reinjected);
    assert_eq!(reactive.admitted, reactive.punted + reactive.overflow);
    assert_eq!(reactive.attempts(), reactive.admitted + reactive.suppressed);
    assert!(
        reactive.suppressed > 0,
        "dedup never suppressed a duplicate"
    );
}

#[test]
fn punt_ring_overflow_is_counted_never_blocking() {
    // Everything misses, every flow is distinct (dedup cannot absorb the
    // storm), the controller is deliberately slow, and the punt ring holds
    // only 4 slots: the overwhelming majority of punt copies must be shed —
    // counted — while the workers keep forwarding at full rate.
    let mut pipeline = Pipeline::with_tables(1);
    pipeline.table_mut(0).unwrap().miss = TableMissBehavior::ToController;

    let slow_controller: Box<dyn Controller> = Box::new(FnController::new(|_pi: PacketIn| {
        std::thread::sleep(Duration::from_micros(200));
        vec![ControllerDecision::Drop]
    }));

    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        BackendSpec::eswitch(),
        pipeline,
        ShardedConfig {
            workers: 2,
            ring_capacity: 256,
            punt_ring_capacity: 4,
            ..ShardedConfig::default()
        },
        slow_controller,
    )
    .unwrap();

    let total = 8_192u64;
    for i in 0..total {
        // Distinct source MACs: every packet is a fresh flow.
        dispatcher.dispatch(
            PacketBuilder::udp()
                .eth_src(MacAddr::from_u64(0x0200_0000_9000 + i))
                .eth_dst(host_mac(0))
                .build(),
        );
    }
    dispatcher.flush();
    // Workers never block on the full punt ring: the whole storm is
    // processed while the controller has barely answered a thing.
    let deadline = Instant::now() + Duration::from_secs(30);
    while switch.stats().packets < total {
        assert!(Instant::now() < deadline, "workers stalled on punt ring");
        std::thread::yield_now();
    }
    let mid = switch.reactive_stats().unwrap();
    assert!(
        mid.overflow > 0,
        "4-slot punt ring never overflowed under a {total}-flow storm: {mid:?}"
    );
    // Every processed packet missed, every flow was distinct: each produced
    // exactly one punt attempt, resolved as enqueued or shed — none lost.
    assert_eq!(
        mid.punted + mid.overflow + mid.suppressed,
        total,
        "punt attempts unaccounted mid-storm: {mid:?}"
    );

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, total, "packets lost under storm");
    let reactive = report.reactive.expect("reactive launch");
    // Every counter identity holds at shutdown: nothing silently dropped.
    assert_eq!(reactive.answered, reactive.punted);
    assert_eq!(reactive.admitted, reactive.punted + reactive.overflow);
    assert_eq!(reactive.attempts(), reactive.admitted + reactive.suppressed);
    assert_eq!(reactive.reinjected, 0);
    assert_eq!(reactive.injected, 0);
    assert_eq!(reactive.attempts(), total, "a punt attempt went missing");
}
