//! Rebalance equivalence: moving flow buckets between shards mid-stream
//! must be invisible to the traffic.
//!
//! Identical packet streams are dispatched twice through the sharded
//! runtime: once with the launch-time static indirection table, once with
//! bucket remaps injected halfway through the trace (every active
//! connection's bucket is re-homed via `RssDispatcher::remap_bucket` — the
//! same quiesce/export/import handshake the elastic rebalancer drives).
//! Per-flow, the two runs must produce identical verdict sequences and
//! byte-identical output frames, and the aggregated conntrack counters
//! must agree — i.e. the remap migrated connection state (verdict pinning),
//! NAT port allocations (rewrite pinning), and LB backend choices intact,
//! and reordered nothing within any flow.
//!
//! Three stateful use cases, both backends (the OVS run additionally
//! exercises the moved-flow EMC/megaflow invalidation; the ESWITCH replica
//! is placement-independent):
//!
//! * **Stateful ACL** — bidirectional proptest traces; established-only
//!   reverse path means a dropped migration would flip reply verdicts.
//! * **SNAT edge** — forward streams from unique clients; the bucket-strided
//!   port allocator must survive the move so rewrites stay byte-identical.
//! * **L4 LB** — connections pinned to consistent-hash backends; the pinned
//!   choice must follow the connection to its new shard.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use conntrack::{bucket_of, CtConfig};
use openflow::ct::CtTuple;
use openflow::Pipeline;
use pkt::builder::PacketBuilder;
use pkt::{parse, Ipv4Addr4, Packet, ParseDepth, TcpFlags};
use proptest::prelude::*;
use shard::{rss_hash_symmetric, BackendSpec, ShardedConfig, ShardedSwitch, VerdictSink};
use workloads::usecases::{PORT_NET, PORT_USER};
use workloads::{l4_lb, snat_edge, stateful_acl_gateway as acl, L4LbConfig};

/// Idle timeouts long enough that no connection ages out mid-trace (the
/// workers tick real time; the comparison needs state to survive both
/// runs identically regardless of wall-clock jitter).
fn patient(mut config: CtConfig) -> CtConfig {
    config.timeouts = conntrack::CtTimeouts {
        tcp_syn: 1 << 40,
        tcp_established: 1 << 40,
        tcp_fin: 1 << 40,
        udp_new: 1 << 40,
        udp_established: 1 << 40,
    };
    config
}

/// What one run observed for one flow, in that flow's processing order.
type FlowLog = Vec<(Vec<u8>, Vec<u32>)>;

/// The raw sink feed: (flow hash, frame bytes, verdict outputs).
type SinkLog = Arc<Mutex<Vec<(u64, Vec<u8>, Vec<u32>)>>>;

/// Runs `inputs` through a 2-shard launch of (`spec`, `pipeline`). With
/// `remap` set, every distinct flow bucket seen in the stream is re-homed
/// to the *other* shard after `split` packets — a migration storm squarely
/// in the middle of the live connections. Returns the per-flow logs keyed
/// by the symmetric RSS hash (stamped on each packet at dispatch, so the
/// key survives NAT rewrites) plus the merged conntrack snapshot and the
/// executed remap count.
fn run_sharded(
    spec: BackendSpec,
    pipeline: Pipeline,
    ct: CtConfig,
    inputs: &[Packet],
    remap: bool,
) -> (HashMap<u64, FlowLog>, conntrack::CtSnapshot, u64) {
    let seen: SinkLog = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let sink: VerdictSink = Arc::new(move |_shard, packet: &Packet, verdict| {
        sink_seen.lock().unwrap().push((
            packet.rss_hash().expect("dispatch stamps the hash"),
            packet.data().to_vec(),
            verdict.outputs.to_vec(),
        ));
    });
    let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
        spec,
        pipeline,
        ShardedConfig {
            workers: 2,
            ct: Some(ct),
            ..ShardedConfig::default()
        },
        Some(sink),
    )
    .expect("pipeline compiles");
    assert!(dispatcher.is_symmetric(), "ct launch uses symmetric RSS");

    let split = inputs.len() / 2;
    for input in &inputs[..split] {
        dispatcher.dispatch(input.clone());
    }
    if remap {
        dispatcher.flush();
        // Re-home every bucket the stream touches — connections mid-trace
        // included — to the opposite shard.
        let mut buckets: Vec<usize> = inputs
            .iter()
            .map(|p| bucket_of(rss_hash_symmetric(p)))
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        for bucket in buckets {
            let owner = dispatcher.table().owner(bucket);
            dispatcher.remap_bucket(bucket, 1 - owner);
        }
    }
    for input in &inputs[split..] {
        dispatcher.dispatch(input.clone());
    }
    dispatcher.flush();
    let remaps = dispatcher.remaps();
    let report = switch.shutdown(dispatcher);
    for (shard, snap) in report
        .ct_per_shard
        .as_ref()
        .expect("ct stats recorded")
        .iter()
        .enumerate()
    {
        assert!(
            snap.identity_holds(),
            "shard {shard} ct identity violated after remap: {snap:?}"
        );
    }
    let merged = report.ct_merged().expect("ct stats recorded");

    let mut flows: HashMap<u64, FlowLog> = HashMap::new();
    for (hash, frame, outputs) in seen.lock().unwrap().drain(..) {
        flows.entry(hash).or_default().push((frame, outputs));
    }
    (flows, merged, remaps)
}

/// The differential assertion: a static run and a mid-stream-remapped run
/// of the same inputs must be indistinguishable per flow.
fn assert_remap_invisible(
    label: &str,
    spec: BackendSpec,
    build: impl Fn() -> Pipeline,
    ct: CtConfig,
    inputs: &[Packet],
) {
    let (want, want_ct, baseline_remaps) = run_sharded(spec, build(), ct.clone(), inputs, false);
    let (got, got_ct, remaps) = run_sharded(spec, build(), ct, inputs, true);

    assert_eq!(baseline_remaps, 0, "{label}: static run must not remap");
    assert!(remaps > 0, "{label}: remap run executed no migrations");
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: flow population diverged across the remap"
    );
    for (hash, want_log) in &want {
        let got_log = got
            .get(hash)
            .unwrap_or_else(|| panic!("{label}: flow {hash:#x} lost across the remap"));
        assert_eq!(
            got_log.len(),
            want_log.len(),
            "{label}: flow {hash:#x} packet count diverged"
        );
        for (i, ((got_frame, got_out), (want_frame, want_out))) in
            got_log.iter().zip(want_log.iter()).enumerate()
        {
            assert_eq!(
                got_out, want_out,
                "{label}: flow {hash:#x} verdict diverged at its packet {i}"
            );
            assert_eq!(
                got_frame, want_frame,
                "{label}: flow {hash:#x} frame bytes (NAT/LB rewrites) diverged at its packet {i}"
            );
        }
    }
    // The remap run's snapshot additionally records the migrations
    // themselves; every other counter — creations, hits, denials,
    // evictions, live population — must be untouched by the moves.
    assert!(
        got_ct.migrated_out > 0 && got_ct.migrated_in == got_ct.migrated_out,
        "{label}: migration counters off: {got_ct:?}"
    );
    let mut normalized = got_ct;
    normalized.migrated_in = want_ct.migrated_in;
    normalized.migrated_out = want_ct.migrated_out;
    assert_eq!(
        normalized, want_ct,
        "{label}: merged conntrack counters diverged across the remap"
    );
}

fn backends() -> [BackendSpec; 2] {
    [BackendSpec::eswitch(), BackendSpec::ovs()]
}

/// A client frame of connection `conn` for the ACL gateway (even ids TCP,
/// odd UDP).
fn acl_forward(conn: usize, flags: TcpFlags) -> Packet {
    let src = Ipv4Addr4::new(10, 0, (conn >> 8) as u8, conn as u8);
    let dst = Ipv4Addr4::new(198, 51, 100, (conn % 200) as u8 + 1);
    let builder = if conn.is_multiple_of(2) {
        PacketBuilder::tcp()
            .tcp_src(1024 + conn as u16)
            .tcp_dst(80)
            .tcp_flags(flags)
    } else {
        PacketBuilder::udp().udp_src(1024 + conn as u16).udp_dst(53)
    };
    builder
        .ipv4_src(src)
        .ipv4_dst(dst)
        .in_port(PORT_USER)
        .build()
}

/// The peer's answer to `frame` as forwarded.
fn reply_to(frame: &Packet, flags: TcpFlags) -> Packet {
    let headers = parse(frame.data(), ParseDepth::L4);
    let t = CtTuple::from_frame(frame.data(), &headers).expect("replyable frame");
    let builder = if t.proto == 6 {
        PacketBuilder::tcp()
            .tcp_src(t.dst_port)
            .tcp_dst(t.src_port)
            .tcp_flags(flags)
    } else {
        PacketBuilder::udp().udp_src(t.dst_port).udp_dst(t.src_port)
    };
    builder
        .ipv4_src(Ipv4Addr4::from_u32(t.dst_ip))
        .ipv4_dst(Ipv4Addr4::from_u32(t.src_ip))
        .in_port(PORT_NET)
        .build()
}

fn syn() -> TcpFlags {
    TcpFlags {
        syn: true,
        ..Default::default()
    }
}

fn ack() -> TcpFlags {
    TcpFlags {
        ack: true,
        ..Default::default()
    }
}

/// ACL trace: open `conns` connections, then interleave forward/reply
/// traffic so every connection is established and mid-conversation when
/// the remap storm hits (the stream's second half keeps both directions
/// flowing across the migrated table).
fn acl_trace(conns: usize, rounds: usize) -> Vec<Packet> {
    let mut inputs = Vec::new();
    for conn in 0..conns {
        inputs.push(acl_forward(conn, syn()));
    }
    for _ in 0..rounds {
        for conn in 0..conns {
            let fwd = acl_forward(conn, ack());
            inputs.push(reply_to(&fwd, ack()));
            inputs.push(fwd);
        }
    }
    inputs
}

#[test]
fn acl_verdicts_survive_a_midstream_remap_storm() {
    for spec in backends() {
        assert_remap_invisible(
            &format!("acl/{}", spec.label()),
            spec,
            || acl::build_pipeline(&acl::StatefulAclConfig::default()),
            patient(acl::ct_config()),
            &acl_trace(24, 4),
        );
    }
}

#[test]
fn snat_rewrites_survive_a_midstream_remap_storm() {
    // Unique clients through the SNAT edge: each connection holds a
    // bucket-strided source-port allocation that must migrate with it.
    let mut inputs = Vec::new();
    for conn in 0..32 {
        inputs.push(acl_forward(conn * 2, syn())); // even ids: TCP only
    }
    for _ in 0..3 {
        for conn in 0..32 {
            inputs.push(acl_forward(conn * 2, ack()));
        }
    }
    for spec in backends() {
        assert_remap_invisible(
            &format!("snat/{}", spec.label()),
            spec,
            || snat_edge::build_pipeline(&snat_edge::SnatEdgeConfig::default()),
            patient(snat_edge::ct_config()),
            &inputs,
        );
    }
}

#[test]
fn lb_backend_pinning_survives_a_midstream_remap_storm() {
    // Requests from distinct clients to the VIP: the consistent-hash
    // backend choice is pinned per connection at first packet and must
    // follow the connection's bucket to its new shard.
    let config = L4LbConfig::default();
    let mut inputs = Vec::new();
    let request = |client: usize, flags: TcpFlags| {
        PacketBuilder::tcp()
            .tcp_src(2048 + client as u16)
            .tcp_dst(80)
            .tcp_flags(flags)
            .ipv4_src(Ipv4Addr4::new(172, 16, (client >> 8) as u8, client as u8))
            .ipv4_dst(l4_lb::vip())
            .in_port(PORT_NET)
            .build()
    };
    for client in 0..32 {
        inputs.push(request(client, syn()));
    }
    for _ in 0..3 {
        for client in 0..32 {
            inputs.push(request(client, ack()));
        }
    }
    for spec in backends() {
        assert_remap_invisible(
            &format!("l4_lb/{}", spec.label()),
            spec,
            || l4_lb::build_pipeline(&config),
            patient(l4_lb::ct_config(&config)),
            &inputs,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised ACL differential: arbitrary interleavings of forward and
    /// reply events across 16 connections, with the full bucket-migration
    /// storm injected at the stream's midpoint, stay per-flow identical to
    /// the static run on both backends.
    #[test]
    fn random_acl_traces_are_remap_invariant(
        events in prop::collection::vec((0usize..16, any::<bool>(), 0u8..4), 8..64)
    ) {
        let mut last_forward: HashMap<usize, Packet> = HashMap::new();
        let mut inputs = Vec::with_capacity(events.len());
        for (conn, reply, sel) in &events {
            let flags = match sel % 4 {
                0 => syn(),
                1 => ack(),
                2 => TcpFlags { fin: true, ack: true, ..Default::default() },
                _ => TcpFlags { rst: true, ..Default::default() },
            };
            if *reply {
                let base = last_forward
                    .get(conn)
                    .cloned()
                    .unwrap_or_else(|| acl_forward(*conn, syn()));
                inputs.push(reply_to(&base, flags));
            } else {
                let fwd = acl_forward(*conn, flags);
                last_forward.insert(*conn, fwd.clone());
                inputs.push(fwd);
            }
        }
        for spec in backends() {
            assert_remap_invisible(
                &format!("acl-prop/{}", spec.label()),
                spec,
                || acl::build_pipeline(&acl::StatefulAclConfig::default()),
                patient(acl::ct_config()),
                &inputs,
            );
        }
    }
}
