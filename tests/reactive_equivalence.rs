//! Differential property test for the reactive slow path: a random
//! miss-to-controller pipeline driven by the *same* deterministic controller
//! must converge to identical final table contents — and therefore identical
//! per-flow verdicts — no matter which runtime carried the punts:
//!
//! (a) the synchronous single-switch `EswitchRuntime` (punt handled inline),
//! (b) the synchronous single-switch `OvsDatapath` (punt from the slow-path
//!     classifier),
//! (c) the sharded runtime's asynchronous controller channel, with 1, 2 and
//!     4 worker shards, on both the ESWITCH and the OVS backend.
//!
//! The asynchronous channel reorders, buffers and deduplicates punts; none
//! of that may change *what* ends up installed, only *when*.

use std::time::{Duration, Instant};

use eswitch::runtime::EswitchRuntime;
use eswitch::CompilerConfig;
use openflow::controller::FnController;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, PacketIn, Pipeline,
    TableMissBehavior,
};
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::builder::PacketBuilder;
use pkt::{MacAddr, Packet};
use proptest::prelude::*;
use shard::{BackendSpec, RssDispatcher, ShardedConfig, ShardedSwitch};

const SEED_MAC_BASE: u64 = 0x0200_0000_5000;
const FLOW_MAC_BASE: u64 = 0x0200_0000_6000;

/// Table 0: a few seeded MAC rules plus a miss that punts to the controller.
fn reactive_pipeline(seeded: u64) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.miss = TableMissBehavior::ToController;
    for i in 0..seeded {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(SEED_MAC_BASE + i)),
            10,
            terminal_actions(vec![Action::Output((i % 4) as u32)]),
        ));
    }
    p
}

/// A deterministic reactive controller: the install is a pure function of
/// the punted packet's key, so every runtime must converge to the same
/// table contents regardless of punt order, duplication or suppression.
fn deterministic_controller() -> Box<dyn Controller> {
    Box::new(FnController::new(|pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        let out = (key.eth_dst % 5) as u32;
        vec![ControllerDecision::FlowMod(FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
            10,
            terminal_actions(vec![Action::Output(out)]),
        ))]
    }))
}

fn flow_packet(flow: u64, rep: u64) -> Packet {
    PacketBuilder::udp()
        .eth_dst(MacAddr::from_u64(FLOW_MAC_BASE + flow))
        .udp_src(40_000 + (rep % 16) as u16)
        .build()
}

/// Canonical dump of every table's contents, order-independent.
fn canonical_tables(pipeline: &Pipeline) -> Vec<(u32, u16, String, String)> {
    let mut out: Vec<(u32, u16, String, String)> = pipeline
        .tables()
        .iter()
        .flat_map(|t| {
            t.entries().iter().map(|e| {
                (
                    t.id,
                    e.priority,
                    format!("{:?}", e.flow_match),
                    format!("{:?}", e.instructions),
                )
            })
        })
        .collect();
    out.sort();
    out
}

/// Per-flow verdicts of a pipeline on the probe set, via the reference
/// interpreter (the runtimes' fast paths are pinned to it elsewhere).
fn per_flow_verdicts(pipeline: &Pipeline, flows: &[u64]) -> Vec<(Vec<u32>, bool, bool)> {
    flows
        .iter()
        .map(|f| pipeline.process(&mut flow_packet(*f, 0)).decision())
        .collect()
}

/// Runs the traffic through a reactive sharded launch and returns a clone of
/// the final canonical pipeline once the punt flow is quiescent.
fn sharded_final_pipeline(
    spec: BackendSpec,
    workers: usize,
    base: &Pipeline,
    traffic: &[Packet],
) -> Pipeline {
    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        spec,
        base.clone(),
        ShardedConfig {
            workers,
            ring_capacity: 256,
            ..ShardedConfig::default()
        },
        deterministic_controller(),
    )
    .expect("base pipeline compiles");
    for packet in traffic {
        dispatcher.dispatch(packet.clone());
    }
    quiesce(&switch, &mut dispatcher);
    let pipeline = switch.with_pipeline(Pipeline::clone);
    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    let reactive = report.reactive.expect("reactive launch");
    assert_eq!(reactive.answered, reactive.punted);
    assert_eq!(reactive.admitted, reactive.punted + reactive.overflow);
    pipeline
}

fn quiesce(switch: &ShardedSwitch, dispatcher: &mut RssDispatcher) {
    dispatcher.flush();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = switch.reactive_stats().expect("reactive launch");
        if switch.stats().packets == dispatcher.dispatched()
            && stats.answered == stats.punted
            && stats.injected == stats.reinjected
            && switch.reactive_stats().expect("reactive launch") == stats
        {
            return;
        }
        assert!(Instant::now() < deadline, "never quiesced: {stats:?}");
        std::thread::yield_now();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every punt-carrying runtime converges to the same installed state.
    #[test]
    fn reactive_runtimes_converge_to_identical_tables(
        seeded in 1u64..8,
        flows in prop::collection::vec(0u64..24, 2..20),
        reps in 1u64..4,
    ) {
        let base = reactive_pipeline(seeded);
        // The traffic: every flow `reps` times, interleaved.
        let traffic: Vec<Packet> = (0..reps)
            .flat_map(|r| flows.iter().map(move |f| flow_packet(*f, r)))
            .collect();

        // (a) synchronous ESWITCH runtime: punts handled inline.
        let es = EswitchRuntime::with_config(
            base.clone(),
            CompilerConfig::default(),
            deterministic_controller(),
        )
        .unwrap();
        for packet in &traffic {
            es.process(&mut packet.clone());
        }
        let expected_tables = es.with_pipeline(canonical_tables);
        let expected_verdicts = es.with_pipeline(|p| per_flow_verdicts(p, &flows));

        // (b) synchronous OVS datapath: punts from the slow-path classifier.
        let ovs = OvsDatapath::with_config(
            base.clone(),
            OvsConfig::default(),
            deterministic_controller(),
        );
        for packet in &traffic {
            ovs.process(&mut packet.clone());
        }
        {
            let pipeline = ovs.pipeline();
            let guard = pipeline.read();
            prop_assert_eq!(&canonical_tables(&guard), &expected_tables, "OVS single-switch diverged");
            prop_assert_eq!(&per_flow_verdicts(&guard, &flows), &expected_verdicts);
        }

        // (c) the asynchronous controller channel: 1, 2 and 4 shards, both
        // backends. Buffering, reordering and dedup must not change what
        // converges.
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            for workers in [1usize, 2, 4] {
                let converged = sharded_final_pipeline(spec, workers, &base, &traffic);
                prop_assert_eq!(
                    &canonical_tables(&converged),
                    &expected_tables,
                    "sharded {}x{} diverged",
                    spec.label(),
                    workers
                );
                prop_assert_eq!(
                    &per_flow_verdicts(&converged, &flows),
                    &expected_verdicts,
                    "sharded {}x{} per-flow verdicts diverged",
                    spec.label(),
                    workers
                );
            }
        }
    }
}
