//! Cross-crate integration tests: the three datapath architectures (direct
//! reference interpreter, OVS-style cache hierarchy, compiled ESWITCH) must
//! agree packet-for-packet on randomly generated pipelines and traffic.
//!
//! This is the master correctness property of the reproduction: dataplane
//! specialization (and flow caching) are *optimisations*, never semantic
//! changes.

use eswitch::runtime::EswitchRuntime;
use openflow::flow_match::FlowMatch;
use openflow::instruction::{actions_then_goto, terminal_actions};
use openflow::{Action, DirectDatapath, Field, FlowEntry, Pipeline};
use ovsdp::OvsDatapath;
use pkt::builder::PacketBuilder;
use pkt::Packet;
use proptest::prelude::*;

/// A restricted but expressive random rule: exact or prefix matches over the
/// fields the use cases exercise, forwarding to a small port set.
fn arb_rule() -> impl Strategy<Value = FlowEntry> {
    let field_matches = prop::collection::vec(
        prop_oneof![
            (0u32..4).prop_map(|p| (Field::InPort, u128::from(p), 32u32)),
            (0u64..16).prop_map(|m| (Field::EthDst, u128::from(0x0200_0000_0000 + m), 48u32)),
            (0u8..4).prop_map(|x| (
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([10, 0, 0, x])),
                32u32
            )),
            (8u32..=24).prop_map(|len| {
                (
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, 0, 0, 0])),
                    len,
                )
            }),
            (0u16..4).prop_map(|p| (Field::TcpDst, u128::from(80 + p), 16u32)),
            Just((Field::IpProto, 6u128, 8u32)),
        ],
        0..3,
    );
    (field_matches, 1u16..200, 0u32..4).prop_map(|(fields, priority, out_port)| {
        let mut m = FlowMatch::any();
        for (field, value, len) in fields {
            if len >= field.width_bits() {
                m = m.with_exact(field, value);
            } else {
                m = m.with_prefix(field, value, len);
            }
        }
        FlowEntry::new(
            m,
            priority,
            terminal_actions(vec![Action::Output(out_port)]),
        )
    })
}

/// A random 1- or 2-table pipeline; a fraction of table-0 rules forward to
/// table 1 instead of outputting directly.
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    (
        prop::collection::vec(arb_rule(), 1..20),
        prop::collection::vec(arb_rule(), 0..10),
        any::<bool>(),
    )
        .prop_map(|(t0_rules, t1_rules, add_catch_all)| {
            let two_stage = !t1_rules.is_empty();
            let mut pipeline = Pipeline::with_tables(if two_stage { 2 } else { 1 });
            for (i, mut rule) in t0_rules.into_iter().enumerate() {
                if two_stage && i % 3 == 0 {
                    rule.instructions =
                        actions_then_goto(vec![Action::SetField(Field::IpDscp, 10)], 1);
                }
                pipeline.table_mut(0).unwrap().insert(rule);
            }
            for rule in t1_rules {
                pipeline.table_mut(1).unwrap().insert(rule);
            }
            if add_catch_all {
                pipeline.table_mut(0).unwrap().insert(FlowEntry::new(
                    FlowMatch::any(),
                    0,
                    terminal_actions(vec![Action::Output(3)]),
                ));
            }
            pipeline
        })
}

/// Random packets drawn from the same small universe the rules match over.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..4,
        0u64..20,
        0u8..6,
        75u16..90,
        1000u16..1010,
        any::<bool>(),
    )
        .prop_map(|(in_port, mac, ip_last, dport, sport, udp)| {
            let builder = if udp {
                PacketBuilder::udp().udp_src(sport).udp_dst(dport)
            } else {
                PacketBuilder::tcp().tcp_src(sport).tcp_dst(dport)
            };
            builder
                .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0000 + mac).octets())
                .ipv4_dst([10, 0, 0, ip_last])
                .in_port(in_port)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three architectures produce identical forwarding decisions and
    /// identical rewritten packets.
    #[test]
    fn datapaths_agree_on_random_pipelines(
        pipeline in arb_pipeline(),
        packets in prop::collection::vec(arb_packet(), 1..40),
    ) {
        let direct = DirectDatapath::new(pipeline.clone());
        let ovs = OvsDatapath::new(pipeline.clone());
        let eswitch = EswitchRuntime::compile(pipeline).expect("random pipeline compiles");
        for packet in packets {
            let mut a = packet.clone();
            let mut b = packet.clone();
            let mut c = packet.clone();
            let reference = direct.process(&mut a);
            let cached = ovs.process(&mut b);
            let compiled = eswitch.process(&mut c);
            prop_assert_eq!(reference.decision(), cached.decision());
            prop_assert_eq!(reference.decision(), compiled.decision());
            prop_assert_eq!(a.data(), b.data());
            prop_assert_eq!(a.data(), c.data());
        }
    }

    /// Replaying the same traffic twice through the caching datapath (cold
    /// then warm caches) yields identical decisions: caching is transparent.
    #[test]
    fn ovs_caching_is_transparent_across_replays(
        pipeline in arb_pipeline(),
        packets in prop::collection::vec(arb_packet(), 1..20),
    ) {
        let ovs = OvsDatapath::new(pipeline);
        let first: Vec<_> = packets
            .iter()
            .map(|p| ovs.process(&mut p.clone()).decision())
            .collect();
        let second: Vec<_> = packets
            .iter()
            .map(|p| ovs.process(&mut p.clone()).decision())
            .collect();
        prop_assert_eq!(first, second);
    }
}
