//! Differential property test for the burst-mode fast path: for random
//! pipelines and random bursts, `process_batch` must be observationally
//! identical to per-packet `process` on both the OVS-style caching datapath
//! and the compiled ESWITCH datapath — same verdicts, same rewritten packet
//! bytes. Batching (key pre-extraction, per-flow grouping, hoisted locks) is
//! an optimisation, never a semantic change.

use eswitch::runtime::EswitchRuntime;
use openflow::flow_match::FlowMatch;
use openflow::instruction::{actions_then_goto, terminal_actions};
use openflow::{Action, Field, FlowEntry, NullController, Pipeline};
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use proptest::prelude::*;

/// A restricted but expressive random rule over the fields the use cases
/// exercise (same universe as `tests/semantic_equivalence.rs`).
fn arb_rule() -> impl Strategy<Value = FlowEntry> {
    let field_matches = prop::collection::vec(
        prop_oneof![
            (0u32..4).prop_map(|p| (Field::InPort, u128::from(p), 32u32)),
            (0u64..16).prop_map(|m| (Field::EthDst, u128::from(0x0200_0000_0000 + m), 48u32)),
            (0u8..4).prop_map(|x| (
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([10, 0, 0, x])),
                32u32
            )),
            (8u32..=24).prop_map(|len| {
                (
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, 0, 0, 0])),
                    len,
                )
            }),
            (0u16..4).prop_map(|p| (Field::TcpDst, u128::from(80 + p), 16u32)),
            Just((Field::IpProto, 6u128, 8u32)),
        ],
        0..3,
    );
    (field_matches, 1u16..200, 0u32..4).prop_map(|(fields, priority, out_port)| {
        let mut m = FlowMatch::any();
        for (field, value, len) in fields {
            if len >= field.width_bits() {
                m = m.with_exact(field, value);
            } else {
                m = m.with_prefix(field, value, len);
            }
        }
        FlowEntry::new(
            m,
            priority,
            terminal_actions(vec![Action::Output(out_port)]),
        )
    })
}

/// A random 1- or 2-table pipeline; some table-0 rules rewrite a header and
/// forward to table 1 so batched replay also covers packet mutation.
fn arb_pipeline() -> impl Strategy<Value = Pipeline> {
    (
        prop::collection::vec(arb_rule(), 1..16),
        prop::collection::vec(arb_rule(), 0..8),
        any::<bool>(),
    )
        .prop_map(|(t0_rules, t1_rules, add_catch_all)| {
            let two_stage = !t1_rules.is_empty();
            let mut pipeline = Pipeline::with_tables(if two_stage { 2 } else { 1 });
            for (i, mut rule) in t0_rules.into_iter().enumerate() {
                if two_stage && i % 3 == 0 {
                    rule.instructions =
                        actions_then_goto(vec![Action::SetField(Field::IpDscp, 10)], 1);
                }
                pipeline.table_mut(0).unwrap().insert(rule);
            }
            for rule in t1_rules {
                pipeline.table_mut(1).unwrap().insert(rule);
            }
            if add_catch_all {
                pipeline.table_mut(0).unwrap().insert(FlowEntry::new(
                    FlowMatch::any(),
                    0,
                    terminal_actions(vec![Action::Output(3)]),
                ));
            }
            pipeline
        })
}

/// Random packets drawn from the same small universe the rules match over.
/// The narrow port/address ranges make intra-burst flow repeats (the
/// grouping path) common.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..4,
        0u64..20,
        0u8..6,
        75u16..90,
        1000u16..1004,
        any::<bool>(),
    )
        .prop_map(|(in_port, mac, ip_last, dport, sport, udp)| {
            let builder = if udp {
                PacketBuilder::udp().udp_src(sport).udp_dst(dport)
            } else {
                PacketBuilder::tcp().tcp_src(sport).tcp_dst(dport)
            };
            builder
                .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0000 + mac).octets())
                .ipv4_dst([10, 0, 0, ip_last])
                .in_port(in_port)
                .build()
        })
}

/// Asserts batch == sequential for one OVS configuration.
fn check_ovs(pipeline: &Pipeline, packets: &[Packet], config: OvsConfig) {
    let batch_dp =
        OvsDatapath::with_config(pipeline.clone(), config, Box::new(NullController::new()));
    let seq_dp =
        OvsDatapath::with_config(pipeline.clone(), config, Box::new(NullController::new()));

    let mut batch_pkts = packets.to_vec();
    let mut verdicts = Vec::new();
    batch_dp.process_batch_into(&mut batch_pkts, &mut verdicts);
    prop_assert_eq!(verdicts.len(), packets.len());

    let mut seq_pkts = packets.to_vec();
    for (i, p) in seq_pkts.iter_mut().enumerate() {
        let v = seq_dp.process(p);
        prop_assert_eq!(v.decision(), verdicts[i].decision(), "ovs verdict {}", i);
    }
    for (i, (a, b)) in batch_pkts.iter().zip(&seq_pkts).enumerate() {
        prop_assert_eq!(a.data(), b.data(), "ovs packet bytes {}", i);
    }
    prop_assert_eq!(batch_dp.stats.total(), packets.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Burst processing and per-packet processing agree on the OVS datapath,
    /// with both roomy caches and deliberately tiny ones (so bursts straddle
    /// evictions), and on the compiled datapath.
    #[test]
    fn process_batch_matches_per_packet_processing(
        pipeline in arb_pipeline(),
        packets in prop::collection::vec(arb_packet(), 1..80),
    ) {
        check_ovs(&pipeline, &packets, OvsConfig::default());
        check_ovs(&pipeline, &packets, OvsConfig {
            microflow_entries: 16,
            megaflow_entries: 8,
            ..OvsConfig::default()
        });
        check_ovs(&pipeline, &packets, OvsConfig {
            use_microflow: false,
            ..OvsConfig::default()
        });

        // Compiled ESWITCH runtime: batch vs sequential.
        let batch_switch = EswitchRuntime::compile(pipeline.clone()).expect("compiles");
        let seq_switch = EswitchRuntime::compile(pipeline.clone()).expect("compiles");
        let mut batch_pkts = packets.clone();
        let mut verdicts = Vec::new();
        batch_switch.process_batch_into(&mut batch_pkts, &mut verdicts);
        let mut seq_pkts = packets.clone();
        for (i, p) in seq_pkts.iter_mut().enumerate() {
            let v = seq_switch.process(p);
            prop_assert_eq!(v.decision(), verdicts[i].decision(), "eswitch verdict {}", i);
        }
        for (i, (a, b)) in batch_pkts.iter().zip(&seq_pkts).enumerate() {
            prop_assert_eq!(a.data(), b.data(), "eswitch packet bytes {}", i);
        }

        // And the two architectures agree with each other on the batch API.
        let ovs = OvsDatapath::new(pipeline.clone());
        let mut ovs_pkts = packets.clone();
        let ovs_verdicts = ovs.process_batch(&mut ovs_pkts);
        for (i, (a, b)) in ovs_verdicts.iter().zip(&verdicts).enumerate() {
            prop_assert_eq!(a.decision(), b.decision(), "cross-architecture verdict {}", i);
        }
    }
}
