//! Multi-port differential suite: the per-port-dispatcher front end must be
//! invisible to the traffic.
//!
//! Identical traffic is replayed through two deployments of the multi-port
//! runtime: one ingress port behind a single dispatcher (the PR-6 shape),
//! and every port active behind per-port dispatchers over the full
//! per-(port, shard) SPSC ring matrix. Per flow, both runs must produce
//! identical verdict sequences and byte-identical frames — including when a
//! bucket-migration storm is injected at the stream's midpoint through the
//! barrier-quiesce remap (`MultiPortSwitch::remap_bucket`), and on both
//! datapath backends. On the wire side, every output port must carry the
//! same multiset of frames in both deployments.
//!
//! A final test pins the classifier contract: controller-bound traffic
//! steered with `ClassifyAction::Steer` only ever lands on its designated
//! shard, from every ingress port, while ordinary traffic still spreads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use conntrack::bucket_of;
use netdev::classify::{Classifier, ClassifyAction};
use netdev::{MatchSpec, PortSet};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::{parse, Packet, ParseDepth};
use shard::rss::rss_hash;
use shard::{BackendSpec, MultiPortConfig, MultiPortSwitch, VerdictSink};

const PORTS: u32 = 4;
const SHARDS: usize = 2;
const FLOWS: u16 = 16;
const ROUNDS: usize = 40;

/// A pipeline steering by TCP destination port — deliberately independent
/// of `in_port`, so the same frame takes the same verdict whichever ingress
/// port carried it: 1000+i → Output(i % PORTS), catch-all drop.
fn pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for i in 0..FLOWS {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(1000 + i)),
            100,
            terminal_actions(vec![Action::Output(u32::from(i) % PORTS)]),
        ));
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

/// Flow `flow`'s `seq`-th packet: distinct payload per packet so frame
/// comparisons are meaningful, distinct `tcp_src` per flow so flows are
/// identifiable from the frame alone (the `in_port` metadata differs
/// between deployments by design).
fn flow_packet(flow: u16, seq: usize) -> Packet {
    PacketBuilder::tcp()
        .tcp_dst(1000 + flow)
        .tcp_src(4000 + flow)
        .payload(&[flow as u8, seq as u8, (seq >> 8) as u8])
        .build()
}

/// The trace: ROUNDS interleaved packets per flow.
fn trace() -> Vec<(u16, Packet)> {
    let mut inputs = Vec::new();
    for seq in 0..ROUNDS {
        for flow in 0..FLOWS {
            inputs.push((flow, flow_packet(flow, seq)));
        }
    }
    inputs
}

/// What one run observed for one flow, in that flow's processing order.
type FlowLog = Vec<(Vec<u8>, Vec<u32>)>;

/// Runs the trace through a multi-port launch. `ingress_ports == 1` sends
/// everything through port 0 (single dispatcher); otherwise flow `f` enters
/// on port `f % ingress_ports`, one consistent port per flow so in-flow
/// order is preserved. With `remap`, every bucket the stream occupies is
/// re-homed to the opposite shard at the midpoint through the barrier
/// quiesce. Returns per-flow logs keyed by `tcp_src` plus the per-port
/// egress frames (sorted multiset).
fn run_multiport(
    spec: BackendSpec,
    ingress_ports: u32,
    remap: bool,
) -> (HashMap<u16, FlowLog>, Vec<Vec<Vec<u8>>>, u64) {
    let ports = Arc::new(PortSet::with_ports(PORTS));
    type Seen = Arc<Mutex<Vec<(u16, Vec<u8>, Vec<u32>)>>>;
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let sink: VerdictSink = Arc::new(move |_shard, packet: &Packet, verdict| {
        let headers = parse(packet.data(), ParseDepth::L4);
        let flow_key = headers.l4_src(packet.data()).expect("tcp frame") - 4000;
        sink_seen.lock().unwrap().push((
            flow_key,
            packet.data().to_vec(),
            verdict.outputs.as_slice().to_vec(),
        ));
    });
    let mut switch = MultiPortSwitch::launch_with_sink(
        spec,
        pipeline(),
        MultiPortConfig {
            shards: SHARDS,
            ..MultiPortConfig::default()
        },
        Arc::clone(&ports),
        Some(sink),
    )
    .expect("pipeline compiles");

    let inputs = trace();
    let ingress = |flow: u16| u32::from(flow) % ingress_ports;
    let split = inputs.len() / 2;
    for (flow, packet) in &inputs[..split] {
        assert!(ports.get(ingress(*flow)).unwrap().inject(packet.clone()));
    }
    let mut remaps = 0u64;
    if remap {
        // Re-home every bucket the stream occupies — hashes cover the
        // stamped in_port, so probe with the ingress port each flow uses.
        let mut buckets: Vec<usize> = inputs
            .iter()
            .map(|(flow, packet)| {
                let mut probe = packet.clone();
                probe.in_port = ingress(*flow);
                bucket_of(rss_hash(&probe))
            })
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        for bucket in buckets {
            let owner = switch.table().owner(bucket);
            switch.remap_bucket(bucket, (owner + 1) % SHARDS);
            remaps += 1;
        }
    }
    for (flow, packet) in &inputs[split..] {
        assert!(ports.get(ingress(*flow)).unwrap().inject(packet.clone()));
    }
    let report = switch.shutdown();
    assert_eq!(
        report.dispatched,
        inputs.len() as u64,
        "dispatch lost frames"
    );
    let processed: u64 = report.per_shard.iter().map(|s| s.packets).sum();
    assert_eq!(processed, inputs.len() as u64, "processing lost frames");

    // Drain the wire side: per-port egress as a sorted frame multiset.
    let mut egress: Vec<Vec<Vec<u8>>> = Vec::new();
    for port in ports.iter() {
        assert_eq!(port.stats().tx.drops(), 0, "egress dropped frames");
        let mut drained = Vec::new();
        while port.tx_drain_into(&mut drained, 256) > 0 {}
        let mut frames: Vec<Vec<u8>> = drained.iter().map(|p| p.data().to_vec()).collect();
        frames.sort_unstable();
        egress.push(frames);
    }

    let mut flows: HashMap<u16, FlowLog> = HashMap::new();
    for (flow, frame, outputs) in seen.lock().unwrap().drain(..) {
        flows.entry(flow).or_default().push((frame, outputs));
    }
    (flows, egress, remaps)
}

/// The differential assertion: the single-dispatcher and per-port-
/// dispatcher deployments must be indistinguishable per flow and on the
/// wire.
fn assert_front_ends_agree(label: &str, spec: BackendSpec, remap: bool) {
    let (want, want_egress, _) = run_multiport(spec, 1, false);
    let (got, got_egress, remaps) = run_multiport(spec, PORTS, remap);

    if remap {
        assert!(remaps > 0, "{label}: remap run executed no migrations");
    }
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: flow population diverged across front ends"
    );
    for (flow, want_log) in &want {
        let got_log = got
            .get(flow)
            .unwrap_or_else(|| panic!("{label}: flow {flow} lost in the multi-port run"));
        assert_eq!(
            got_log.len(),
            want_log.len(),
            "{label}: flow {flow} packet count diverged"
        );
        for (i, ((got_frame, got_out), (want_frame, want_out))) in
            got_log.iter().zip(want_log.iter()).enumerate()
        {
            assert_eq!(
                got_out, want_out,
                "{label}: flow {flow} verdict diverged at its packet {i}"
            );
            assert_eq!(
                got_frame, want_frame,
                "{label}: flow {flow} frame bytes diverged at its packet {i}"
            );
        }
    }
    assert_eq!(
        got_egress, want_egress,
        "{label}: wire-side egress diverged across front ends"
    );
}

#[test]
fn per_port_dispatchers_match_single_dispatcher() {
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        assert_front_ends_agree(&format!("static/{}", spec.label()), spec, false);
    }
}

#[test]
fn per_port_dispatchers_match_across_a_midstream_remap_storm() {
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        assert_front_ends_agree(&format!("remap/{}", spec.label()), spec, true);
    }
}

#[test]
fn classifier_steering_isolates_controller_traffic() {
    const CONTROLLER_SHARD: usize = 3;
    let ports = Arc::new(PortSet::with_ports(PORTS));
    type Seen = Arc<Mutex<Vec<(usize, u16)>>>;
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    let sink: VerdictSink = Arc::new(move |shard, packet: &Packet, _verdict| {
        let headers = parse(packet.data(), ParseDepth::L4);
        let dst = headers.l4_dst(packet.data()).unwrap_or(0);
        sink_seen.lock().unwrap().push((shard, dst));
    });
    // OpenFlow-over-TCP to the controller pins to the designated shard;
    // everything else hashes.
    let classifier = Classifier::new().rule(
        MatchSpec::any().ip_proto(6).l4_dst(6653),
        ClassifyAction::Steer(CONTROLLER_SHARD),
    );
    let switch = MultiPortSwitch::launch_with_sink(
        BackendSpec::eswitch(),
        pipeline(),
        MultiPortConfig {
            shards: 4,
            classifier,
            ..MultiPortConfig::default()
        },
        Arc::clone(&ports),
        Some(sink),
    )
    .expect("pipeline compiles");
    for seq in 0..64usize {
        for pid in 0..PORTS {
            let port = ports.get(pid).unwrap();
            assert!(port.inject(
                PacketBuilder::tcp()
                    .tcp_dst(6653)
                    .tcp_src(5000 + pid as u16)
                    .payload(&[seq as u8])
                    .build()
            ));
            assert!(port.inject(flow_packet((seq % usize::from(FLOWS)) as u16, seq)));
        }
    }
    switch.shutdown();
    let seen = seen.lock().unwrap();
    let (steered, hashed): (Vec<_>, Vec<_>) = seen.iter().partition(|(_, dst)| *dst == 6653);
    assert_eq!(steered.len(), 64 * PORTS as usize);
    assert!(
        steered.iter().all(|(shard, _)| *shard == CONTROLLER_SHARD),
        "controller-bound traffic leaked off its designated shard"
    );
    assert!(
        hashed.iter().any(|(shard, _)| *shard != CONTROLLER_SHARD),
        "ordinary traffic never spread beyond the designated shard"
    );
}
