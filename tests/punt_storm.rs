//! Adversarial soak tests for the layered punt admission pipeline: punt
//! storms from misbehaving sources must not starve compliant flows.
//!
//! * `attacker_storm_cannot_starve_compliant_flows` — 4K attacker flows
//!   from ONE source signature (a scanner cycling destinations) hammer the
//!   punt path while a handful of compliant flows (distinct sources) need
//!   their reactive installs. The per-source bucket sheds the storm, every
//!   compliant flow converges within a bound, and every rejection is
//!   accounted by layer.
//! * `minted_sources_degrade_to_aggregate_budget` — the adversary mints a
//!   fresh source per flow instead (4K sources), spreading thin over the
//!   per-source bucket table: the fixed-width table plus the aggregate
//!   budget bound the controller's exposure, and compliant flows still
//!   converge.

use std::time::{Duration, Instant};

use eswitch_repro::openflow::controller::{resubmit_packet_out, FnController};
use eswitch_repro::openflow::flow_match::FlowMatch;
use eswitch_repro::openflow::instruction::terminal_actions;
use eswitch_repro::openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, PacketIn, Pipeline,
    TableMissBehavior,
};
use eswitch_repro::pkt::builder::PacketBuilder;
use eswitch_repro::pkt::{MacAddr, Packet};
use eswitch_repro::shard::{
    BackendSpec, PuntPolicy, ReactiveSnapshot, RssDispatcher, ShardedConfig, ShardedSwitch,
};

/// Seeded MACs (hash template) so reactive installs absorb incrementally.
const SEED_MAC_BASE: u64 = 0x0200_0000_7000;
/// Compliant flows' destinations and per-flow source identities.
const VICTIM_MAC_BASE: u64 = 0x0200_0000_5000;
const VICTIM_SRC_BASE: u64 = 0x0200_0000_6000;
/// The controller refuses to install anything at or above this base.
const ATTACK_MAC_BASE: u64 = 0x0200_0000_8000;
const ATTACK_SRC_MAC: u64 = 0x0200_0000_0bad;

const ATTACKER_FLOWS: usize = 4_096;
const COMPLIANT_FLOWS: usize = 64;

fn storm_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.miss = TableMissBehavior::ToController;
    for i in 0..64u64 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(SEED_MAC_BASE + i)),
            10,
            terminal_actions(vec![Action::Output((i % 4) as u32)]),
        ));
    }
    p
}

/// An access-gateway-style controller: installs (and resubmits) compliant
/// destinations, refuses the attacker's — so attacker flows punt forever.
fn gatekeeper_controller() -> Box<dyn Controller> {
    Box::new(FnController::new(|pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        if key.eth_dst >= ATTACK_MAC_BASE {
            return vec![ControllerDecision::Drop];
        }
        vec![
            ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output((key.eth_dst % 4) as u32)]),
            )),
            resubmit_packet_out(pi.packet),
        ]
    }))
}

/// One compliant flow: its own source identity, an uninstalled destination.
fn compliant_packet(i: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(MacAddr::from_u64(VICTIM_SRC_BASE + i))
        .eth_dst(MacAddr::from_u64(VICTIM_MAC_BASE + i))
        .build()
}

/// One attacker flow with every origin field pinned (single source
/// signature) and a high-entropy destination.
fn single_source_attack_packet(i: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(MacAddr::from_u64(ATTACK_SRC_MAC))
        .eth_dst(MacAddr::from_u64(ATTACK_MAC_BASE + i))
        .udp_src(40_000 + (i % 512) as u16)
        .build()
}

/// One attacker flow with a *minted* source identity (one per flow).
fn minted_source_attack_packet(i: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(MacAddr::from_u64(ATTACK_SRC_MAC + 1 + i))
        .eth_dst(MacAddr::from_u64(ATTACK_MAC_BASE + i))
        .build()
}

fn drain(switch: &ShardedSwitch, dispatcher: &mut RssDispatcher) {
    dispatcher.flush();
    while switch.stats().packets < dispatcher.dispatched() {
        std::thread::yield_now();
    }
}

/// Runs the storm: the attacker pool cycles while compliant flows ride
/// along, until a compliant-only pass over a drained switch raises zero new
/// punt attempts (every compliant flow on the fast path). Returns the
/// convergence latency.
fn storm_until_compliant_converge(
    switch: &ShardedSwitch,
    dispatcher: &mut RssDispatcher,
    attackers: &[(usize, Packet)],
    compliant: &[(usize, Packet)],
) -> Duration {
    let start = Instant::now();
    let deadline = start + Duration::from_secs(60);
    loop {
        // Compliant flows first within each pass: the aggregate budget
        // (layer 3) is deliberately not fair — it sheds whoever arrives
        // after the bucket drains — so the test keeps arrival order fixed
        // and lets the *per-source* layer carry the fairness claim.
        for (shard, proto) in compliant {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
        for (shard, proto) in attackers {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
        drain(switch, dispatcher);
        // The probe: with the switch drained, a compliant-only pass that
        // raises no new punt attempt proves every compliant flow converged.
        let stats = switch.reactive_stats().expect("reactive launch");
        let before = stats.attempts();
        for (shard, proto) in compliant {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
        drain(switch, dispatcher);
        let stats = switch.reactive_stats().expect("reactive launch");
        if stats.attempts() == before && stats.answered == stats.punted {
            return start.elapsed();
        }
        assert!(
            Instant::now() < deadline,
            "compliant flows starved by the punt storm: {stats:?}"
        );
    }
}

fn assert_identities(s: &ReactiveSnapshot) {
    assert_eq!(
        s.admitted,
        s.punted + s.overflow + s.shed_source + s.shed_aggregate,
        "a rejection went uncounted: {s:?}"
    );
    assert_eq!(s.attempts(), s.admitted + s.suppressed, "{s:?}");
    assert_eq!(s.answered, s.punted, "{s:?}");
    assert_eq!(s.injected, s.reinjected, "{s:?}");
    assert_eq!(
        s.punted,
        s.per_worker.iter().map(|w| w.drained).sum::<u64>(),
        "per-worker drains must cover every punt: {s:?}"
    );
}

fn launch_hardened(policy: PuntPolicy) -> (ShardedSwitch, RssDispatcher) {
    ShardedSwitch::launch_reactive(
        BackendSpec::eswitch(),
        storm_pipeline(),
        ShardedConfig {
            workers: 2,
            controller_workers: 2,
            ring_capacity: 1024,
            punt_policy: policy,
            ..ShardedConfig::default()
        },
        gatekeeper_controller(),
    )
    .unwrap()
}

fn precompute(dispatcher: &RssDispatcher, packets: Vec<Packet>) -> Vec<(usize, Packet)> {
    packets
        .into_iter()
        .map(|p| (dispatcher.shard_for(&p), p))
        .collect()
}

#[test]
fn attacker_storm_cannot_starve_compliant_flows() {
    let (switch, mut dispatcher) = launch_hardened(PuntPolicy::hardened(100, 20_000));
    let attackers = precompute(
        &dispatcher,
        (0..ATTACKER_FLOWS as u64)
            .map(single_source_attack_packet)
            .collect(),
    );
    let compliant = precompute(
        &dispatcher,
        (0..COMPLIANT_FLOWS as u64).map(compliant_packet).collect(),
    );

    let latency = storm_until_compliant_converge(&switch, &mut dispatcher, &attackers, &compliant);
    // The bound: converging is not enough, it must happen promptly. 30s is
    // generous for 64 installs on any machine — a starved design (attacker
    // punts queued ahead of the victim's, no shedding) blows far past it.
    assert!(
        latency < Duration::from_secs(30),
        "compliant installs took {latency:?} under the storm"
    );

    let mid = switch.reactive_stats().unwrap();
    // The single-source storm is shed at layer 2: one source signature far
    // over its rate. 4K flows per pass against a 100/s bucket means the
    // overwhelming majority of admitted attempts shed there.
    assert!(
        mid.shed_source > 0,
        "the per-source bucket never shed the single-source storm: {mid:?}"
    );
    // Every compliant flow's install went through.
    assert!(
        mid.flow_mods >= COMPLIANT_FLOWS as u64,
        "compliant installs missing: {mid:?}"
    );
    // The punt RTT stayed bounded: shallow rings + shed storms keep the
    // worst observed round trip in interactive range even on a loaded host.
    assert!(
        mid.rtt_max_nanos < Duration::from_secs(10).as_nanos() as u64,
        "punt RTT blew up under the storm: {mid:?}"
    );

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    let reactive = report.reactive.expect("reactive launch");
    assert_identities(&reactive);
    // Both controller workers shared the drain (the compliant + admitted
    // attacker flows spread over partitions).
    assert_eq!(reactive.per_worker.len(), 2);
    assert!(
        reactive.per_worker.iter().all(|w| w.drained > 0),
        "a controller worker never drained: {reactive:?}"
    );
}

#[test]
fn minted_sources_degrade_to_aggregate_budget() {
    // An aggregate budget whose burst is below even a single pass of the
    // storm (4K+ attempts) but far above the compliant population's needs,
    // so the minted-source storm — 4K sources spread over the 1K-bucket
    // table, each bucket under its own per-source rate — visibly hits the
    // backstop layer.
    let (switch, mut dispatcher) = launch_hardened(PuntPolicy::hardened(100, 2_000));
    let attackers = precompute(
        &dispatcher,
        (0..ATTACKER_FLOWS as u64)
            .map(minted_source_attack_packet)
            .collect(),
    );
    let compliant = precompute(
        &dispatcher,
        (0..COMPLIANT_FLOWS as u64).map(compliant_packet).collect(),
    );

    let latency = storm_until_compliant_converge(&switch, &mut dispatcher, &attackers, &compliant);
    assert!(
        latency < Duration::from_secs(30),
        "compliant installs took {latency:?} under the minted-source storm"
    );

    let mid = switch.reactive_stats().unwrap();
    // Minting sources evades per-source accounting by design; the aggregate
    // budget is what bounds the controller's exposure.
    assert!(
        mid.shed_aggregate > 0,
        "the aggregate budget never shed the minted-source storm: {mid:?}"
    );
    assert!(
        mid.flow_mods >= COMPLIANT_FLOWS as u64,
        "compliant installs missing: {mid:?}"
    );

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    assert_identities(&report.reactive.expect("reactive launch"));
}
