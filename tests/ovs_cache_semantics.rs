//! Integration tests for the flow-cache behaviours the paper's §2.3 critique
//! rests on: megaflow masks reflect what the slow path consulted, arrival
//! order shapes the cache, fine-grained rules fragment aggregates, and
//! updates invalidate everything.

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowMod, Pipeline};
use ovsdp::{MegaflowCache, OvsDatapath};
use pkt::builder::PacketBuilder;
use pkt::Packet;

fn port_pipeline(rules: &[(u16, u32)]) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for (i, (port, out)) in rules.iter().enumerate() {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(*port)),
            200 - i as u16,
            terminal_actions(vec![Action::Output(*out)]),
        ));
    }
    t.insert(FlowEntry::new(
        FlowMatch::any(),
        1,
        terminal_actions(vec![Action::Output(99)]),
    ));
    p
}

fn tcp(port: u16, src: u16) -> Packet {
    PacketBuilder::tcp().tcp_dst(port).tcp_src(src).build()
}

/// The Fig. 3 experiment: replaying the same seven destination ports in two
/// different orders against the same table. With sound mask construction the
/// megaflow count is order-independent (documented divergence from the
/// paper's 7-vs-1), but the cache still records the per-packet unwildcarding
/// behaviour the figure is really about: packets that only had to be proven
/// different from the high-priority rule get broader megaflows than the
/// packet that matched it.
#[test]
fn fig3_arrival_orders_and_mask_specificity() {
    let ports = [190u16, 189, 187, 183, 175, 159, 191];
    let pipeline = || port_pipeline(&[(191, 1)]);

    let seq1 = OvsDatapath::new(pipeline());
    for &p in &ports {
        seq1.process(&mut tcp(p, 40_000));
    }
    let mut seq2_order = ports.to_vec();
    seq2_order.rotate_right(1); // 191 first
    let seq2 = OvsDatapath::new(pipeline());
    for &p in &seq2_order {
        seq2.process(&mut tcp(p, 40_000));
    }

    // Both orders classify every distinct packet once (seven slow-path trips)
    // and produce one megaflow per distinct first-difference position.
    assert_eq!(seq1.stats.slowpath_hits.packets(), 7);
    assert_eq!(seq2.stats.slowpath_hits.packets(), 7);
    assert_eq!(seq1.megaflow_count(), 7);
    assert_eq!(seq2.megaflow_count(), 7);

    // Broad megaflows absorb later traffic: after 159's megaflow exists, any
    // port in 128..=159 is answered without another slow-path trip.
    let dp = OvsDatapath::new(pipeline());
    dp.process(&mut tcp(159, 1));
    let slow_before = dp.stats.slowpath_hits.packets();
    dp.process(&mut tcp(130, 2));
    dp.process(&mut tcp(140, 3));
    assert_eq!(dp.stats.slowpath_hits.packets(), slow_before);
    // While a port outside that range still needs the slow path.
    dp.process(&mut tcp(200, 4));
    assert_eq!(dp.stats.slowpath_hits.packets(), slow_before + 1);
}

/// "Only a single fine-grained rule is enough to punch a hole in all
/// aggregates": adding a rule on a high-entropy field makes every megaflow
/// pin that field, so aggregates stop covering whole port ranges.
#[test]
fn fine_grained_rule_fragments_megaflows() {
    // Coarse pipeline: one rule on the destination /24 only.
    let mut coarse = Pipeline::with_tables(1);
    coarse.table_mut(0).unwrap().insert(FlowEntry::new(
        FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(0xc0000200u32), 24),
        100,
        terminal_actions(vec![Action::Output(1)]),
    ));
    coarse
        .table_mut(0)
        .unwrap()
        .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

    // Same pipeline plus one fine-grained rule on an exact TCP source port.
    let mut fine = coarse.clone();
    fine.table_mut(0).unwrap().insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::TcpSrc, 31337),
        200,
        terminal_actions(vec![Action::Output(9)]),
    ));

    // Both runs disable the address/ports tries (prefix tracking) so the
    // comparison isolates the aggregate-fragmentation effect itself — this is
    // the behaviour OVS exhibits for fields its tries do not cover.
    let run = |pipeline: Pipeline| {
        let config = ovsdp::OvsConfig {
            slowpath: ovsdp::slowpath::SlowPathConfig {
                prefix_tracking: false,
            },
            ..ovsdp::OvsConfig::default()
        };
        let dp =
            OvsDatapath::with_config(pipeline, config, Box::new(openflow::NullController::new()));
        for src in 0..200u16 {
            dp.process(
                &mut PacketBuilder::tcp()
                    .ipv4_dst([192, 0, 2, 50])
                    .tcp_src(1000 + src)
                    .tcp_dst(80)
                    .build(),
            );
        }
        (dp.megaflow_count(), dp.stats.slowpath_hits.packets())
    };
    let (coarse_megaflows, coarse_slow) = run(coarse);
    let (fine_megaflows, fine_slow) = run(fine);

    assert_eq!(
        coarse_megaflows, 1,
        "destination-only traffic is one aggregate"
    );
    assert_eq!(coarse_slow, 1);
    assert!(
        fine_megaflows > coarse_megaflows * 20,
        "the high-entropy rule must fragment the cache ({fine_megaflows} megaflows)"
    );
    assert!(fine_slow > coarse_slow * 20);
}

/// Flow-table changes invalidate the caches — but only as much as the
/// change's delta demands. A rule add provably disjoint from every cached
/// flow spares them (delta-aware invalidation); overlapping rules and
/// delta-less pipeline swaps flush, and the cache is rebuilt reactively from
/// the slow path (§2.3, footnote 2).
#[test]
fn updates_invalidate_and_repopulate_reactively() {
    let dp = OvsDatapath::new(port_pipeline(&[(80, 1), (443, 2)]));
    for src in 0..50 {
        dp.process(&mut tcp(80, 1000 + src));
        dp.process(&mut tcp(443, 1000 + src));
    }
    let megaflows = dp.megaflow_count();
    assert!(megaflows >= 2);
    let slow_before = dp.stats.slowpath_hits.packets();

    // An unrelated rule change (port 8080, nothing rewritten in this
    // pipeline) keeps every disjoint megaflow and EMC entry alive...
    dp.flow_mod(&FlowMod::add(
        0,
        FlowMatch::any().with_exact(Field::TcpDst, 8080),
        150,
        terminal_actions(vec![Action::Output(3)]),
    ))
    .unwrap();
    assert_eq!(dp.megaflow_count(), megaflows);
    assert!(dp.microflow_count() > 0);
    // ...so the old flows never revisit the slow path.
    dp.process(&mut tcp(80, 1000));
    dp.process(&mut tcp(443, 1000));
    assert_eq!(dp.stats.slowpath_hits.packets(), slow_before);

    // A rule overlapping a cached flow flushes that flow (and anything not
    // provably disjoint), which then repopulates reactively.
    dp.flow_mod(&FlowMod::add(
        0,
        FlowMatch::any().with_exact(Field::TcpDst, 443),
        210,
        terminal_actions(vec![Action::Output(7)]),
    ))
    .unwrap();
    let slow_mid = dp.stats.slowpath_hits.packets();
    dp.process(&mut tcp(443, 1000));
    assert!(dp.stats.slowpath_hits.packets() > slow_mid);
    assert_eq!(dp.process(&mut tcp(443, 1000)).outputs, vec![7]);

    // A delta-less pipeline replacement is the brute-force §2.3 behaviour:
    // everything flushed, every flow back through the slow path.
    dp.replace_pipeline(port_pipeline(&[(80, 1), (443, 2)]));
    assert_eq!(dp.megaflow_count(), 0);
    assert_eq!(dp.microflow_count(), 0);
    let slow_late = dp.stats.slowpath_hits.packets();
    dp.process(&mut tcp(80, 1000));
    dp.process(&mut tcp(443, 1000));
    assert!(dp.stats.slowpath_hits.packets() >= slow_late + 2);
}

/// The megaflow store itself: disjoint aggregates, eviction at capacity, and
/// tuple-space search cost growing with mask diversity.
#[test]
fn megaflow_store_disjointness_and_eviction() {
    let mut cache = MegaflowCache::with_capacity(8);
    let key = |port: u16| openflow::FlowKey {
        tcp_dst: Some(port),
        eth_type: 0x0800,
        ip_proto: Some(6),
        ..Default::default()
    };
    let mut mask = ovsdp::FieldMask::wildcard_all();
    mask.unwildcard_exact(Field::TcpDst);
    for port in 0..20u16 {
        cache.insert(
            &key(port),
            mask.clone(),
            std::sync::Arc::new(vec![Action::Output(1)]),
        );
    }
    assert!(cache.len() <= 8, "capacity must bound the cache");
    assert!(cache.lookup(&key(19)).is_some(), "recent entries survive");
    assert!(cache.lookup(&key(0)).is_none(), "oldest entries evicted");
    assert_eq!(cache.subtable_count(), 1, "one mask, one subtable");
}
