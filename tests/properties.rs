//! Property-based tests on the core data structures and invariants:
//! the DIR-24-8 LPM versus a linear-scan oracle, the collision-free hash
//! versus `HashMap`, match/mask algebra, parser robustness against arbitrary
//! bytes, and semantic preservation of flow-table decomposition.

use std::collections::HashMap;

use eswitch::decompose::decompose_table;
use netdev::{Lpm, PerfectHash};
use openflow::flow_match::{FlowMatch, MatchField};
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowKey, FlowTable, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::ipv4::{prefix_mask, Ipv4Addr4};
use pkt::parser::{parse, ParseDepth};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DIR-24-8 structure agrees with a brute-force longest-prefix scan
    /// for arbitrary rule sets and lookups.
    #[test]
    fn lpm_matches_linear_scan(
        rules in prop::collection::vec((any::<u32>(), 0u8..=32, 1u16..100), 1..60),
        lookups in prop::collection::vec(any::<u32>(), 1..60),
    ) {
        let mut lpm = Lpm::new();
        let mut oracle: Vec<(u32, u8, u16)> = Vec::new();
        for (addr, len, hop) in rules {
            let prefix = addr & prefix_mask(len);
            lpm.add(Ipv4Addr4::from_u32(prefix), len, hop).unwrap();
            oracle.retain(|(p, l, _)| !(*p == prefix && *l == len));
            oracle.push((prefix, len, hop));
        }
        for addr in lookups {
            let expected = oracle
                .iter()
                .filter(|(p, l, _)| addr & prefix_mask(*l) == *p)
                .max_by_key(|(_, l, _)| *l)
                .map(|(_, _, h)| *h);
            prop_assert_eq!(lpm.lookup(Ipv4Addr4::from_u32(addr)), expected);
        }
    }

    /// After deletions the LPM still agrees with the oracle.
    #[test]
    fn lpm_delete_matches_linear_scan(
        rules in prop::collection::vec((any::<u32>(), 8u8..=32, 1u16..50), 5..40),
        delete_every in 2usize..5,
        lookups in prop::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut lpm = Lpm::new();
        let mut oracle: HashMap<(u32, u8), u16> = HashMap::new();
        for (addr, len, hop) in &rules {
            let prefix = addr & prefix_mask(*len);
            lpm.add(Ipv4Addr4::from_u32(prefix), *len, *hop).unwrap();
            oracle.insert((prefix, *len), *hop);
        }
        for (i, (addr, len, _)) in rules.iter().enumerate() {
            if i % delete_every == 0 {
                let prefix = addr & prefix_mask(*len);
                if oracle.remove(&(prefix, *len)).is_some() {
                    lpm.delete(Ipv4Addr4::from_u32(prefix), *len).unwrap();
                }
            }
        }
        for addr in lookups {
            let expected = oracle
                .iter()
                .filter(|((p, l), _)| addr & prefix_mask(*l) == *p)
                .max_by_key(|((_, l), _)| *l)
                .map(|(_, h)| *h);
            prop_assert_eq!(lpm.lookup(Ipv4Addr4::from_u32(addr)), expected);
        }
    }

    /// The collision-free hash behaves exactly like a `HashMap` under an
    /// arbitrary interleaving of inserts, removes and rebuilds.
    #[test]
    fn perfect_hash_matches_hashmap(
        ops in prop::collection::vec((any::<u8>(), 0u128..500, any::<u16>()), 1..200),
    ) {
        let mut ph: PerfectHash<u16> = PerfectHash::new();
        let mut oracle: HashMap<u128, u16> = HashMap::new();
        for (op, key, value) in ops {
            match op % 4 {
                0 | 1 => {
                    ph.insert(key, value);
                    oracle.insert(key, value);
                }
                2 => {
                    prop_assert_eq!(ph.remove(key), oracle.remove(&key));
                }
                _ => ph.rebuild(),
            }
            prop_assert_eq!(ph.len(), oracle.len());
        }
        for (k, v) in &oracle {
            prop_assert_eq!(ph.get(*k), Some(v));
        }
    }

    /// Prefix-mask constructors and the prefix-length recogniser are inverses.
    #[test]
    fn prefix_len_roundtrip(len in 0u32..=32, value in any::<u32>()) {
        let mf = MatchField::prefix(Field::Ipv4Dst, u128::from(value), len);
        prop_assert_eq!(mf.prefix_len(), Some(len));
        // The masked value always satisfies its own match.
        prop_assert!(mf.matches_value(u128::from(value)));
    }

    /// The parser never panics and never reports layers beyond the frame, for
    /// completely arbitrary input bytes.
    #[test]
    fn parser_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let headers = parse(&bytes, ParseDepth::L4);
        if headers.has_tcp() || headers.has_udp() {
            prop_assert!(usize::from(headers.l4_offset) < bytes.len());
        }
        if headers.has_ipv4() {
            prop_assert!(usize::from(headers.l3_offset) + 20 <= bytes.len());
        }
    }

    /// FlowKey extraction is consistent with the matcher-template field loads
    /// for arbitrary well-formed packets.
    #[test]
    fn flow_key_and_template_loads_agree(
        dst_port in any::<u16>(),
        src_port in any::<u16>(),
        ip_last in any::<u8>(),
        vlan in prop::option::of(1u16..4095),
    ) {
        let mut builder = PacketBuilder::tcp()
            .tcp_src(src_port)
            .tcp_dst(dst_port)
            .ipv4_dst([192, 0, 2, ip_last]);
        if let Some(vid) = vlan {
            builder = builder.vlan(vid);
        }
        let packet = builder.build();
        let key = FlowKey::extract(&packet);
        let headers = parse(packet.data(), ParseDepth::L4);
        let regs = eswitch::templates::matcher::Regs { in_port: packet.in_port, ..Default::default() };
        for field in [Field::TcpDst, Field::TcpSrc, Field::Ipv4Dst, Field::EthDst, Field::VlanVid] {
            prop_assert_eq!(
                eswitch::templates::matcher::load_field(field, packet.data(), &headers, &regs),
                key.get(field),
                "field {:?}", field
            );
        }
    }

    /// Decomposing a random exact-or-wildcard table preserves its semantics.
    #[test]
    fn decomposition_preserves_semantics(
        rows in prop::collection::vec(
            (prop::option::of(0u8..4), prop::option::of(0u16..4), prop::option::of(0u8..3), 0u32..4),
            1..12,
        ),
        packets in prop::collection::vec((0u8..5, 0u16..5, 0u8..4), 1..30),
    ) {
        let mut table = FlowTable::new(0);
        let row_count = rows.len() as u16;
        for (i, (ip, port, proto, out)) in rows.into_iter().enumerate() {
            let mut m = FlowMatch::any();
            if let Some(ip) = ip {
                m = m.with_exact(Field::Ipv4Dst, u128::from(u32::from_be_bytes([10, 0, 0, ip])));
            }
            if let Some(port) = port {
                m = m.with_exact(Field::TcpDst, u128::from(1000 + port));
            }
            if let Some(proto) = proto {
                m = m.with_exact(Field::IpDscp, u128::from(proto));
            }
            table.insert(FlowEntry::new(
                m,
                100 + row_count - i as u16,
                terminal_actions(vec![Action::Output(out)]),
            ));
        }
        let mut original = Pipeline::new();
        original.add_table(table.clone());

        let mut next_id = 1;
        let mut decomposed = Pipeline::new();
        for t in decompose_table(&table, &mut next_id) {
            decomposed.add_table(t);
        }
        prop_assert!(decomposed.validate().is_ok());

        for (ip, port, dscp) in packets {
            let packet = PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, ip])
                .tcp_dst(1000 + port)
                .dscp(dscp)
                .build();
            let mut a = packet.clone();
            let mut b = packet;
            prop_assert_eq!(
                original.process(&mut a).decision(),
                decomposed.process(&mut b).decision()
            );
        }
    }
}
