//! End-to-end integration tests over the four evaluation use cases: the
//! compiled datapath and the flow-caching datapath must agree with the
//! reference interpreter, the expected templates must be selected, and the
//! cache-hierarchy behaviour the figures rely on must be observable.

use eswitch::analysis::{CompilerConfig, TemplateKind};
use eswitch::runtime::EswitchRuntime;
use openflow::{DirectDatapath, NullController};
use ovsdp::OvsDatapath;
use workloads::gateway::{self, GatewayConfig};
use workloads::l2::{self, L2Config};
use workloads::l3::{self, L3Config};
use workloads::load_balancer::{self, LoadBalancerConfig};
use workloads::FlowSet;

/// Checks that every architecture agrees with the direct interpreter over one
/// full cycle of the traffic mix.
fn assert_all_agree(pipeline_builder: impl Fn() -> openflow::Pipeline, traffic: &FlowSet) {
    let direct = DirectDatapath::new(pipeline_builder());
    let ovs = OvsDatapath::new(pipeline_builder());
    let eswitch = EswitchRuntime::compile(pipeline_builder()).expect("compiles");
    for (i, packet) in traffic.one_cycle().enumerate() {
        let mut a = packet.clone();
        let mut b = packet.clone();
        let mut c = packet;
        let reference = direct.process(&mut a).decision();
        assert_eq!(
            ovs.process(&mut b).decision(),
            reference,
            "OVS diverged at {i}"
        );
        assert_eq!(
            eswitch.process(&mut c).decision(),
            reference,
            "ESWITCH diverged at {i}"
        );
    }
}

#[test]
fn l2_use_case_compiles_to_hash_and_agrees() {
    let config = L2Config {
        table_size: 200,
        ports: 4,
        seed: 21,
    };
    let eswitch = EswitchRuntime::compile(l2::build_pipeline(&config)).unwrap();
    assert_eq!(
        eswitch.datapath().template_kinds(),
        vec![(0, TemplateKind::CompoundHash)]
    );
    assert_all_agree(
        || l2::build_pipeline(&config),
        &l2::build_traffic(&config, 500),
    );
}

#[test]
fn l3_use_case_compiles_to_lpm_and_agrees() {
    let config = L3Config {
        prefixes: 500,
        next_hops: 8,
        seed: 22,
    };
    let eswitch = EswitchRuntime::compile(l3::build_pipeline(&config)).unwrap();
    assert_eq!(
        eswitch.datapath().template_kinds(),
        vec![(0, TemplateKind::Lpm)]
    );
    assert_all_agree(
        || l3::build_pipeline(&config),
        &l3::build_traffic(&config, 500),
    );
}

#[test]
fn load_balancer_decomposition_promotes_templates_and_agrees() {
    let config = LoadBalancerConfig {
        services: 20,
        seed: 23,
    };
    // Without decomposition the single heterogeneous table is a linked list.
    let naive = EswitchRuntime::compile(load_balancer::build_pipeline(&config)).unwrap();
    assert_eq!(
        naive.datapath().template_kinds(),
        vec![(0, TemplateKind::LinkedList)]
    );

    // With decomposition every compiled table is a fast template.
    let decomposed = EswitchRuntime::with_config(
        load_balancer::build_pipeline(&config),
        CompilerConfig {
            enable_decomposition: true,
            ..CompilerConfig::default()
        },
        Box::new(NullController::new()),
    )
    .unwrap();
    assert!(decomposed.datapath().template_kinds().len() > 1);
    for (id, kind) in decomposed.datapath().template_kinds() {
        assert_ne!(
            kind,
            TemplateKind::LinkedList,
            "table {id} still linked list"
        );
    }

    // And the decomposed compiled datapath still agrees with the reference.
    let traffic = load_balancer::build_traffic(&config, 400);
    let reference = DirectDatapath::new(load_balancer::build_pipeline(&config));
    for packet in traffic.one_cycle() {
        let mut a = packet.clone();
        let mut b = packet;
        assert_eq!(
            decomposed.process(&mut b).decision(),
            reference.process(&mut a).decision()
        );
    }
}

#[test]
fn gateway_use_case_agrees_in_both_directions() {
    let config = GatewayConfig {
        ces: 4,
        users_per_ce: 5,
        routing_prefixes: 500,
        seed: 24,
        preinstall_users: true,
    };
    assert_all_agree(
        || gateway::build_pipeline(&config),
        &gateway::build_traffic(&config, 300),
    );
    assert_all_agree(
        || gateway::build_pipeline(&config),
        &gateway::build_downstream_traffic(&config, 300),
    );
}

#[test]
fn gateway_templates_match_the_paper_mapping() {
    // "ESWITCH compiles this pipeline using the hash template for each table
    // except for Table 110 that is mapped to the LPM store."
    let config = GatewayConfig {
        ces: 3,
        users_per_ce: 10,
        routing_prefixes: 1_000,
        seed: 25,
        preinstall_users: true,
    };
    let eswitch = EswitchRuntime::compile(gateway::build_pipeline(&config)).unwrap();
    for (id, kind) in eswitch.datapath().template_kinds() {
        if id == gateway::ROUTING_TABLE {
            assert_eq!(kind, TemplateKind::Lpm, "routing table must be LPM");
        } else {
            assert!(
                matches!(kind, TemplateKind::CompoundHash | TemplateKind::DirectCode),
                "table {id} unexpectedly compiled to {kind:?}"
            );
        }
    }
}

#[test]
fn ovs_hierarchy_shifts_with_active_flow_count() {
    // The Fig. 14 mechanism: with few flows the microflow cache answers most
    // packets; with many flows its hit share collapses.
    let config = GatewayConfig {
        ces: 4,
        users_per_ce: 10,
        routing_prefixes: 500,
        seed: 26,
        preinstall_users: true,
    };
    let few = OvsDatapath::new(gateway::build_pipeline(&config));
    let traffic_few = gateway::build_traffic(&config, 10);
    for i in 0..5_000 {
        few.process(&mut traffic_few.packet(i));
    }
    let (micro_few, _, _) = few.stats.hit_fractions();

    let many = OvsDatapath::new(gateway::build_pipeline(&config));
    let traffic_many = gateway::build_traffic(&config, 50_000);
    for i in 0..5_000 {
        many.process(&mut traffic_many.packet(i));
    }
    let (micro_many, _, slow_many) = many.stats.hit_fractions();

    assert!(
        micro_few > 0.9,
        "few flows should be microflow-dominated: {micro_few}"
    );
    assert!(
        micro_many < 0.5,
        "many flows must thrash the microflow cache: {micro_many}"
    );
    assert!(slow_many > 0.0, "many flows must reach the slow path");
}

#[test]
fn eswitch_work_is_flow_count_independent() {
    // The compiled datapath visits the same tables regardless of how many
    // flows are active — the structural reason behind its flat curves.
    let config = GatewayConfig {
        ces: 4,
        users_per_ce: 5,
        routing_prefixes: 300,
        seed: 27,
        preinstall_users: true,
    };
    let eswitch = EswitchRuntime::compile(gateway::build_pipeline(&config)).unwrap();
    for flows in [1usize, 1_000] {
        let traffic = gateway::build_traffic(&config, flows);
        for packet in traffic.one_cycle().take(200) {
            let mut p = packet;
            let verdict = eswitch.process(&mut p);
            assert_eq!(
                verdict.tables_visited, 3,
                "upstream walk is always 3 tables"
            );
        }
    }
}
