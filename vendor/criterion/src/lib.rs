//! Minimal `criterion` shim.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the subset of the Criterion API the workspace's bench target
//! uses: `Criterion::benchmark_group`, group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), `bench_with_input`/`bench_function`
//! with `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up for the
//! configured warm-up time, then timed over `sample_size` samples; the shim
//! reports min/mean/max nanoseconds per iteration to stdout. No HTML
//! reports, no outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records per-sample wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, and use the
        // throughput observed to size each measurement sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim for samples of roughly 1ms, bounded to keep total time sane.
        let target = (1_000_000 / per_iter.max(1)) as u64;
        self.iters_per_sample = target.clamp(1, 1_000_000);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Number of iterations each recorded sample aggregates.
    pub fn iters_per_sample(&self) -> u64 {
        self.iters_per_sample
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget (advisory in this shim).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher, input);
        let iters = bencher.iters_per_sample();
        report(&self.name, &id.id, &samples, iters);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (parity with upstream; nothing to flush here).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &[Duration], iters_per_sample: u64) {
    if samples.is_empty() || iters_per_sample == 0 {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{group}/{id}: [{min:.1} ns {mean:.1} ns {max:.1} ns] per iter \
         ({} samples x {} iters)",
        per_iter.len(),
        iters_per_sample
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parses CLI arguments (accepted and ignored in this shim, so that
    /// `cargo bench -- <filter>` invocations do not error out).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Opaque hint preventing the optimizer from eliding a value (re-exported
/// for parity with upstream; prefer `std::hint::black_box` in new code).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function calling each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        let mut acc = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("add"), &1u64, |b, &x| {
            b.iter(|| {
                acc = acc.wrapping_add(x);
                acc
            })
        });
        group.finish();
    }
}
