//! Minimal `bytes` shim backed by `Vec<u8>`.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the subset of the `bytes` API the workspace uses: [`BytesMut`]
//! with `from`, `freeze`, `split_off`, `split_to`, `unsplit` and
//! `extend_from_slice`, plus an immutable [`Bytes`] handle. Unlike upstream,
//! buffers here are plainly owned vectors — no refcounted sharing — which is
//! semantically equivalent for this workspace (it only clones and mutates).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// An immutable byte buffer, as produced by [`BytesMut::freeze`].
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copies the given slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `extend` to the end of the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Splits the buffer at `at`, returning the tail `[at, len)` and keeping
    /// the head `[0, at)` in `self`.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            data: self.data.split_off(at),
        }
    }

    /// Splits the buffer at `at`, returning the head `[0, at)` and keeping
    /// the tail `[at, len)` in `self`.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let head: Vec<u8> = self.data.drain(..at).collect();
        BytesMut { data: head }
    }

    /// Re-appends a buffer previously produced by [`BytesMut::split_off`].
    pub fn unsplit(&mut self, other: BytesMut) {
        self.data.extend_from_slice(&other.data);
    }

    /// Converts the buffer into an immutable [`Bytes`] handle.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_unsplit_roundtrip() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4, 5][..]);
        let tail = b.split_off(2);
        assert_eq!(&b[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
        b.unsplit(tail);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn split_to_removes_head() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        let head = b.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&b[..], &[4]);
    }

    #[test]
    fn freeze_preserves_contents() {
        let b = BytesMut::from(&[9u8, 8][..]);
        assert_eq!(&b.freeze()[..], &[9, 8]);
    }
}
