//! Minimal `serde` shim.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides marker versions of the [`Serialize`] and [`Deserialize`] traits
//! plus the derive re-exports. The workspace only uses serde derives to mark
//! config/profile types as serializable for downstream tooling; nothing in
//! the tree actually serializes, so the marker traits carry no methods. Swap
//! for real serde (the derives and bounds are upstream-compatible) when
//! registry access is available.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_marker {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_marker!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
