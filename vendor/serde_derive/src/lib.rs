//! Minimal `serde_derive` shim.
//!
//! Emits empty marker-trait impls for the shimmed `serde::Serialize` /
//! `serde::Deserialize` traits. Written against `proc_macro` directly (no
//! `syn`/`quote` — the build environment has no registry access), so it
//! supports the shapes the workspace actually derives on: plain structs and
//! enums without generic parameters.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` definition.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.peek() {
                                assert!(
                                    p.as_char() != '<',
                                    "serde_derive shim does not support generic types \
                                     (deriving on `{name}`)"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{word}`, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct/enum/union found in derive input");
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
