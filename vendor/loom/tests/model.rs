//! Self-tests for the vendored model checker. These run as ordinary tests —
//! no `--cfg loom` needed, because the models are explicit — and pin down
//! the properties the workspace's concurrency suites rely on: exhaustive
//! interleaving coverage, acquire/release visibility, data-race detection,
//! and deadlock detection.

use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Two unsynchronized read-modify-write sequences (load then store, not an
/// RMW) must be interleaved both ways: the DFS has to find the lost-update
/// schedule (final value 1) *and* the sequential one (final value 2).
#[test]
fn explores_lost_update_and_sequential_schedules() {
    let finals: std::sync::Arc<StdMutex<BTreeSet<usize>>> =
        std::sync::Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = std::sync::Arc::clone(&finals);
    loom::model(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        sink.lock().unwrap().insert(n.load(Ordering::SeqCst));
    });
    let seen = finals.lock().unwrap();
    assert!(seen.contains(&1), "lost-update schedule never explored");
    assert!(seen.contains(&2), "sequential schedule never explored");
}

/// `fetch_add` is atomic, so concurrent increments are exact in every
/// schedule — the property `netdev::stats::Counters` is modelled on.
#[test]
fn fetch_add_is_exact_in_every_schedule() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// Release-store / acquire-load message passing: the reader that observes
/// the flag also observes the cell write that preceded the flag store, in
/// every schedule. This is the SPSC ring's publication protocol in
/// miniature.
#[test]
fn release_acquire_publishes_cell_write() {
    loom::model(|| {
        let cell = std::sync::Arc::new(UnsafeCell::new(0u32));
        let flag = std::sync::Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (std::sync::Arc::clone(&cell), std::sync::Arc::clone(&flag));
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: the flag protocol gives the producer exclusive
                // access until the release store below.
                unsafe { *p = 7 }
            });
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let v = cell.with(|p| {
            // SAFETY: the acquire load above observed the release store, so
            // the producer's write happens-before this read.
            unsafe { *p }
        });
        assert_eq!(v, 7);
        t.join().unwrap();
    });
}

/// The same protocol with a `Relaxed` flag store is a data race on the cell
/// — the detector must abort the model and name the racing accesses. This
/// is exactly the mutation the SPSC tail-publication model test relies on
/// catching.
#[test]
#[should_panic(expected = "data race")]
fn relaxed_publication_is_reported_as_a_race() {
    loom::model(|| {
        let cell = std::sync::Arc::new(UnsafeCell::new(0u32));
        let flag = std::sync::Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (std::sync::Arc::clone(&cell), std::sync::Arc::clone(&flag));
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: intentionally racy — the model aborts before any
                // real concurrent access can occur (threads are serialized).
                unsafe { *p = 7 }
            });
            f2.store(1, Ordering::Relaxed);
        });
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        let _ = cell.with(|p| {
            // SAFETY: as above — serialized by the model scheduler.
            unsafe { *p }
        });
        t.join().unwrap();
    });
}

/// An unsynchronized cell read concurrent with a write races in *every*
/// schedule (stamps persist, so even write-then-read orders are flagged).
#[test]
#[should_panic(expected = "data race")]
fn unsynchronized_cell_access_races() {
    loom::model(|| {
        let cell = std::sync::Arc::new(UnsafeCell::new(0u32));
        let c2 = std::sync::Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: intentionally racy; the model serializes threads.
                unsafe { *p = 1 }
            });
        });
        let _ = cell.with(|p| {
            // SAFETY: as above.
            unsafe { *p }
        });
        t.join().unwrap();
    });
}

/// Mutexes exclude: a guarded read-modify-write never loses an update.
#[test]
fn mutex_guards_read_modify_write() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let mut g = n2.lock();
            *g += 1;
        });
        {
            let mut g = n.lock();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*n.lock(), 2);
    });
}

/// ABBA lock ordering must be caught as a deadlock, not a hang.
#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_order_deadlocks() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
}

/// A model closure that returns with a spawned thread still running is a
/// thread leak, reported rather than silently accepted.
#[test]
#[should_panic(expected = "still running")]
fn leaked_thread_is_reported() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let _t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        // no join
    });
}

/// Assertion failures inside a spawned model thread surface with their
/// original panic message, not a generic wrapper.
#[test]
#[should_panic(expected = "boom 42")]
fn spawned_thread_panic_payload_is_preserved() {
    loom::model(|| {
        let t = thread::spawn(|| {
            panic!("boom 42");
        });
        t.join().unwrap();
    });
}

/// Using a model primitive outside `loom::model` is a programming error
/// with a clear message.
#[test]
#[should_panic(expected = "outside loom::model")]
fn primitives_outside_model_panic() {
    let n = AtomicUsize::new(0);
    let _ = n.load(Ordering::Relaxed);
}
