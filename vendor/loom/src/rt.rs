//! The model-checking runtime: a deterministic DFS scheduler over bounded
//! thread interleavings, plus the vector-clock machinery the synchronization
//! primitives use to track happens-before.
//!
//! # How exploration works
//!
//! All simulated threads are real OS threads, but at most one is ever
//! *running*: every tracked operation (an atomic access, an [`UnsafeCell`]
//! access, a lock acquire/release, spawn/join/yield) first calls
//! [`branch`], which hands control to the scheduler. The scheduler consults
//! the current [`Path`] — the sequence of scheduling decisions that defines
//! this execution — and either replays a recorded choice or, past the end of
//! the recorded prefix, records a new branch (picking the first enabled
//! thread). When an execution finishes, the driver backtracks: the deepest
//! branch with an unexplored alternative is advanced and everything after it
//! is discarded, so successive executions enumerate every schedule in
//! depth-first order. Exploration is exhaustive for terminating models; a
//! model whose schedules do not all terminate trips the branch bound.
//!
//! Because only one thread runs at a time, the memory *values* observed are
//! sequentially consistent. Weak-memory bugs are caught structurally
//! instead: every thread carries a vector clock, release stores deposit the
//! writer's clock on the atomic, acquire loads join it, and every
//! [`UnsafeCell`] access is checked for a happens-before edge against the
//! accesses that came before it — two unordered accesses (one of them a
//! write) abort the model with both access sites.
//!
//! [`UnsafeCell`]: crate::cell::UnsafeCell

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on simulated threads per model (the suites bound themselves to
/// three; four leaves headroom for a coordinator).
pub(crate) const MAX_THREADS: usize = 4;

/// Per-execution bound on scheduling decisions. Tripping it almost always
/// means a spin loop without [`crate::thread::yield_now`] or a model that
/// cannot terminate under some schedule.
const MAX_BRANCHES: usize = 100_000;

/// Default bound on explored executions; override with `LOOM_MAX_ITERATIONS`.
const MAX_ITERATIONS: usize = 4_000_000;

/// Stack size for simulated threads — model closures are tiny.
const STACK_SIZE: usize = 256 * 1024;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over simulated thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    slots: [u32; MAX_THREADS],
}

impl VClock {
    pub(crate) fn component(&self, tid: usize) -> u32 {
        self.slots[tid]
    }

    pub(crate) fn inc(&mut self, tid: usize) {
        self.slots[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self` happens-after both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = (*a).max(*b);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.slots = [0; MAX_THREADS];
    }
}

/// One recorded access to an [`UnsafeCell`](crate::cell::UnsafeCell): who,
/// at what point of their clock, and from which source location.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessStamp {
    pub(crate) tid: usize,
    pub(crate) at: u32,
    pub(crate) location: &'static Location<'static>,
}

impl AccessStamp {
    /// True when this access happens-before a thread whose clock is `clock`.
    pub(crate) fn happens_before(&self, clock: &VClock) -> bool {
        clock.component(self.tid) >= self.at
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Deprioritized for exactly one scheduling decision (yield_now).
    Yielded,
    /// Waiting on a lock or a join; made runnable again by the resource.
    Blocked,
    Finished,
}

struct ThreadSlot {
    status: Status,
    clock: VClock,
    /// Threads blocked in `join` on this thread.
    join_waiters: Vec<usize>,
}

/// One scheduling decision: which of the enabled threads ran. Decisions with
/// a single enabled thread are not recorded (nothing to explore).
#[derive(Clone, Debug)]
struct Branch {
    enabled: Vec<usize>,
    sel: usize,
}

struct SchedState {
    threads: Vec<ThreadSlot>,
    current: usize,
    path: Vec<Branch>,
    cursor: usize,
    /// Scheduling decisions taken this execution (including unrecorded
    /// single-choice ones) — the branch-bound counter.
    decisions: usize,
    /// Threads not yet `Finished`.
    active: usize,
    /// First failure (panic payload) of this execution, if any.
    failure: Option<Box<dyn std::any::Any + Send + 'static>>,
}

pub(crate) struct Execution {
    sched: Mutex<SchedState>,
    cv: Condvar,
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom synchronization primitive used outside loom::model")
    })
}

/// True when the calling OS thread is a simulated thread of a live model.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Locks the scheduler, tolerating poison (a racing panic elsewhere must not
/// turn every other thread's diagnostics into `PoisonError`).
fn lock_sched(exec: &Execution) -> MutexGuard<'_, SchedState> {
    exec.sched.lock().unwrap_or_else(|e| e.into_inner())
}

/// The payload used when a thread aborts because *another* thread already
/// failed the model; [`model`] filters it out in favour of the root cause.
const ABORT: &str = "loom: aborting execution after failure in another thread";

fn abort_if_failed(st: &SchedState) {
    if st.failure.is_some() {
        std::panic::panic_any(ABORT);
    }
}

/// Records `msg` as the execution's failure and unwinds the current thread.
fn fail(mut st: MutexGuard<'_, SchedState>, exec: &Execution, msg: String) -> ! {
    if st.failure.is_none() {
        st.failure = Some(Box::new(msg.clone()));
    }
    exec.cv.notify_all();
    drop(st);
    std::panic::panic_any(msg);
}

/// Picks the next thread to run and publishes the choice. Must be called
/// with the scheduler locked; notifies waiters.
fn pick_next(st: &mut SchedState, exec: &Execution) {
    let runnable: Vec<usize> = (0..st.threads.len())
        .filter(|&t| st.threads[t].status == Status::Runnable)
        .collect();
    let enabled = if runnable.is_empty() {
        (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Yielded)
            .collect()
    } else {
        runnable
    };
    // A yield deprioritizes its thread for exactly this decision; afterwards
    // the thread competes again, so yield-loops interleave with every step
    // of their peers instead of parking until a peer finishes.
    for slot in st.threads.iter_mut() {
        if slot.status == Status::Yielded {
            slot.status = Status::Runnable;
        }
    }
    if enabled.is_empty() {
        if st.active == 0 {
            // Execution complete; the driver observes every thread Finished.
            exec.cv.notify_all();
            return;
        }
        let parked: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Blocked)
            .collect();
        let msg = format!("loom: deadlock — every live thread is blocked: {parked:?}");
        // Inline `fail` (we only have a &mut, not the guard, here): record
        // and unwind; the panic propagates through the runner.
        if st.failure.is_none() {
            st.failure = Some(Box::new(msg.clone()));
        }
        exec.cv.notify_all();
        std::panic::panic_any(msg);
    }
    st.decisions += 1;
    if st.decisions > MAX_BRANCHES {
        let msg = format!(
            "loom: execution exceeded {MAX_BRANCHES} scheduling decisions — \
             unbounded spin loop or non-terminating model?"
        );
        if st.failure.is_none() {
            st.failure = Some(Box::new(msg.clone()));
        }
        exec.cv.notify_all();
        std::panic::panic_any(msg);
    }
    let chosen = if enabled.len() == 1 {
        enabled[0]
    } else if st.cursor < st.path.len() {
        let b = &st.path[st.cursor];
        debug_assert_eq!(
            b.enabled, enabled,
            "loom: non-deterministic model (enabled sets diverged on replay)"
        );
        let chosen = b.enabled[b.sel];
        st.cursor += 1;
        chosen
    } else {
        let chosen = enabled[0];
        st.path.push(Branch { enabled, sel: 0 });
        st.cursor += 1;
        chosen
    };
    st.current = chosen;
    st.threads[chosen].status = Status::Runnable;
    exec.cv.notify_all();
}

/// Parks the calling thread until the scheduler makes it current (or the
/// execution fails, in which case it unwinds).
fn wait_turn(mut st: MutexGuard<'_, SchedState>, exec: &Execution, tid: usize) {
    loop {
        if st.failure.is_some() {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        if st.current == tid && st.threads[tid].status == Status::Runnable {
            return;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

// ---------------------------------------------------------------------------
// Scheduling entry points used by the primitives
// ---------------------------------------------------------------------------

/// The universal pre-operation scheduling point: ticks the caller's clock,
/// lets the scheduler (re)decide who runs, and parks until it is the
/// caller's turn again.
pub(crate) fn branch() {
    // Destructors run while a failed thread unwinds (guards, `Arc`s) reach
    // this point; panicking again inside a drop would abort the process, so
    // the execution being torn down is simply no longer scheduled.
    if std::thread::panicking() {
        return;
    }
    let ctx = ctx();
    let mut st = lock_sched(&ctx.exec);
    abort_if_failed(&st);
    st.threads[ctx.tid].clock.inc(ctx.tid);
    pick_next(&mut st, &ctx.exec);
    wait_turn(st, &ctx.exec, ctx.tid);
}

/// A scheduling point that deprioritizes the caller for one decision.
pub(crate) fn branch_yield() {
    // See `branch` — no scheduling while unwinding.
    if std::thread::panicking() {
        return;
    }
    let ctx = ctx();
    let mut st = lock_sched(&ctx.exec);
    abort_if_failed(&st);
    st.threads[ctx.tid].clock.inc(ctx.tid);
    st.threads[ctx.tid].status = Status::Yielded;
    pick_next(&mut st, &ctx.exec);
    wait_turn(st, &ctx.exec, ctx.tid);
}

/// Blocks the caller (status `Blocked`) and schedules someone else. The
/// caller resumes once a resource calls [`unblock`] *and* the scheduler
/// picks it again.
pub(crate) fn block_and_switch() {
    let ctx = ctx();
    let mut st = lock_sched(&ctx.exec);
    abort_if_failed(&st);
    st.threads[ctx.tid].status = Status::Blocked;
    pick_next(&mut st, &ctx.exec);
    wait_turn(st, &ctx.exec, ctx.tid);
}

/// Makes a blocked thread runnable again (it still waits to be scheduled).
pub(crate) fn unblock(tid: usize) {
    let ctx = ctx();
    let mut st = lock_sched(&ctx.exec);
    if st.threads[tid].status == Status::Blocked {
        st.threads[tid].status = Status::Runnable;
    }
}

/// Runs `f` with the calling thread's vector clock (and its tid).
pub(crate) fn with_clock<R>(f: impl FnOnce(&mut VClock, usize) -> R) -> R {
    let ctx = ctx();
    let mut st = lock_sched(&ctx.exec);
    let tid = ctx.tid;
    f(&mut st.threads[tid].clock, tid)
}

/// Records a failure message and unwinds — used by the race detector.
pub(crate) fn model_failure(msg: String) -> ! {
    let ctx = ctx();
    let st = lock_sched(&ctx.exec);
    fail(st, &ctx.exec, msg)
}

// ---------------------------------------------------------------------------
// Thread spawn / join support
// ---------------------------------------------------------------------------

/// Registers a new simulated thread and starts its OS runner. Returns the
/// simulated tid.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send + 'static>) -> usize {
    let ctx = ctx();
    branch();
    let tid = {
        let mut st = lock_sched(&ctx.exec);
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "loom: model spawned more than {MAX_THREADS} threads"
        );
        // The child happens-after the spawn point.
        let mut clock = st.threads[ctx.tid].clock.clone();
        clock.inc(tid);
        st.threads.push(ThreadSlot {
            status: Status::Runnable,
            clock,
            join_waiters: Vec::new(),
        });
        st.active += 1;
        tid
    };
    let exec = Arc::clone(&ctx.exec);
    std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .stack_size(STACK_SIZE)
        .spawn(move || runner(exec, tid, body))
        .expect("spawn loom runner thread");
    tid
}

/// Waits (simulated-blocking) for `tid` to finish, joining its final clock
/// into the caller's — the happens-before edge `join` provides.
pub(crate) fn join_thread(tid: usize) {
    let ctx = ctx();
    branch();
    loop {
        let mut st = lock_sched(&ctx.exec);
        abort_if_failed(&st);
        if st.threads[tid].status == Status::Finished {
            let child = st.threads[tid].clock.clone();
            st.threads[ctx.tid].clock.join(&child);
            return;
        }
        st.threads[tid].join_waiters.push(ctx.tid);
        st.threads[ctx.tid].status = Status::Blocked;
        pick_next(&mut st, &ctx.exec);
        wait_turn(st, &ctx.exec, ctx.tid);
    }
}

/// The OS-thread body hosting one simulated thread for one execution.
fn runner(exec: Arc<Execution>, tid: usize, body: Box<dyn FnOnce() + Send + 'static>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    // The prologue wait must sit inside the catch: if the execution fails
    // before this thread ever gets a turn, the resulting abort-unwind still
    // has to reach the epilogue below so the slot is marked `Finished` and
    // the driver can finish harvesting.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        {
            let st = lock_sched(&exec);
            wait_turn_or_abort(st, &exec, tid);
        }
        body()
    }));
    let mut st = lock_sched(&exec);
    if let Err(payload) = result {
        let is_abort = payload.downcast_ref::<&str>().is_some_and(|s| *s == ABORT);
        if st.failure.is_none() && !is_abort {
            st.failure = Some(payload);
        }
    }
    st.threads[tid].status = Status::Finished;
    st.active -= 1;
    let waiters = std::mem::take(&mut st.threads[tid].join_waiters);
    for w in waiters {
        if st.threads[w].status == Status::Blocked {
            st.threads[w].status = Status::Runnable;
        }
    }
    if tid == 0 && st.active > 0 && st.failure.is_none() {
        st.failure = Some(Box::new(format!(
            "loom: model closure returned with {} spawned thread(s) still running — join them",
            st.active
        )));
    }
    if st.failure.is_some() || st.active == 0 {
        exec.cv.notify_all();
        return;
    }
    // Hand control to a survivor; catch the scheduler's own failure panics
    // (deadlock, branch bound) so the runner always returns and the driver
    // can harvest the execution.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pick_next(&mut st, &exec);
    }));
}

/// Like [`wait_turn`] but for the runner prologue, where unwinding must not
/// carry a user-visible message.
fn wait_turn_or_abort(mut st: MutexGuard<'_, SchedState>, exec: &Execution, tid: usize) {
    loop {
        if st.failure.is_some() {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        if st.current == tid && st.threads[tid].status == Status::Runnable {
            return;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

fn max_iterations() -> usize {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(MAX_ITERATIONS)
}

/// Explores every schedule of `f` (up to the bounds above), panicking with
/// the first failure any schedule produces.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<Branch> = Vec::new();
    let mut iterations = 0usize;
    let cap = max_iterations();
    loop {
        iterations += 1;
        assert!(
            iterations <= cap,
            "loom: exploration exceeded {cap} executions — shrink the model \
             or raise LOOM_MAX_ITERATIONS"
        );
        let exec = Arc::new(Execution {
            sched: Mutex::new(SchedState {
                threads: vec![ThreadSlot {
                    status: Status::Runnable,
                    clock: {
                        let mut c = VClock::default();
                        c.inc(0);
                        c
                    },
                    join_waiters: Vec::new(),
                }],
                current: 0,
                path: std::mem::take(&mut path),
                cursor: 0,
                decisions: 0,
                active: 1,
                failure: None,
            }),
            cv: Condvar::new(),
        });
        let body = {
            let f = Arc::clone(&f);
            Box::new(move || f())
        };
        let exec0 = Arc::clone(&exec);
        let root = std::thread::Builder::new()
            .name("loom-0".to_string())
            .stack_size(STACK_SIZE)
            .spawn(move || runner(exec0, 0, body))
            .expect("spawn loom root thread");
        let _ = root.join();
        // Wait for every simulated thread of this execution to wind down.
        {
            let mut st = lock_sched(&exec);
            while st.threads.iter().any(|t| t.status != Status::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let (mut explored, failure) = {
            let mut st = lock_sched(&exec);
            (std::mem::take(&mut st.path), st.failure.take())
        };
        if let Some(payload) = failure {
            if std::env::var_os("LOOM_LOG").is_some() {
                eprintln!("loom: failing schedule found on execution {iterations}");
            }
            std::panic::resume_unwind(payload);
        }
        // Depth-first backtrack: advance the deepest branch with an
        // unexplored alternative, discarding everything after it.
        let advanced = loop {
            match explored.last_mut() {
                None => break false,
                Some(last) if last.sel + 1 < last.enabled.len() => {
                    last.sel += 1;
                    break true;
                }
                Some(_) => {
                    explored.pop();
                }
            }
        };
        if !advanced {
            if std::env::var_os("LOOM_LOG").is_some() {
                eprintln!("loom: explored {iterations} executions");
            }
            return;
        }
        path = explored;
    }
}

/// A bounded FIFO of recent stores, kept per atomic for diagnostics — the
/// modification order the SC value semantics realize.
#[derive(Debug, Default)]
pub(crate) struct ModOrder {
    stores: VecDeque<(u64, usize)>,
    total: u64,
}

impl ModOrder {
    const KEEP: usize = 8;

    pub(crate) fn record(&mut self, value: u64, tid: usize) {
        if self.stores.len() == Self::KEEP {
            self.stores.pop_front();
        }
        self.stores.push_back((value, tid));
        self.total += 1;
    }

    /// Total stores over the atomic's lifetime (its modification-order
    /// length).
    pub(crate) fn len(&self) -> u64 {
        self.total
    }
}
