//! A model-checked [`UnsafeCell`] with a dynamic data-race detector.
//!
//! Every access is checked for a happens-before edge (via the runtime's
//! vector clocks) against the accesses that preceded it: a read must
//! happen-after the last write, and a write must happen-after the last
//! write *and* every read since it. Two concurrent unordered accesses, at
//! least one of them a write, abort the model reporting both access sites —
//! this is exactly the undefined behaviour the real `std::cell::UnsafeCell`
//! would let through silently.

use std::panic::Location;
use std::sync::Mutex;

use crate::rt::{self, AccessStamp};

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<AccessStamp>,
    /// Most recent read per thread since the last write.
    reads: Vec<AccessStamp>,
}

/// The model-checked `UnsafeCell`. The API is access-scoped (`with` /
/// `with_mut`) rather than `get()`-based so every access is visible to the
/// checker; the facade's non-loom twin implements the same API as a
/// zero-cost passthrough.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    state: Mutex<CellState>,
}

// SAFETY: the whole point of this type is to *check* that cross-thread
// access is externally synchronized; the checker state itself is behind a
// Mutex, and `data` is only reachable through tracked accessors that abort
// the model on an actual race.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        UnsafeCell {
            data: std::cell::UnsafeCell::new(value),
            state: Mutex::new(CellState::default()),
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CellState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Immutable access: `f` receives the raw const pointer. Aborts the
    /// model if this read races a write by another thread.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        // A failed execution unwinds through destructors (e.g. a ring drop
        // draining its slots); re-reporting from inside a drop would turn
        // the failure into a process abort, so skip tracking entirely.
        if std::thread::panicking() {
            return f(self.data.get());
        }
        let location = Location::caller();
        rt::branch();
        let race = {
            let mut s = self.lock();
            rt::with_clock(|clock, tid| {
                if let Some(w) = &s.last_write {
                    if w.tid != tid && !w.happens_before(clock) {
                        return Some(format!(
                            "loom: data race on UnsafeCell — write at {} \
                             (thread {}) is concurrent with read at {} (thread {tid})",
                            w.location, w.tid, location
                        ));
                    }
                }
                let stamp = AccessStamp {
                    tid,
                    at: clock.component(tid),
                    location,
                };
                if let Some(r) = s.reads.iter_mut().find(|r| r.tid == tid) {
                    *r = stamp;
                } else {
                    s.reads.push(stamp);
                }
                None
            })
        };
        if let Some(msg) = race {
            rt::model_failure(msg);
        }
        f(self.data.get())
    }

    /// Mutable access: `f` receives the raw mut pointer. Aborts the model
    /// if this write races any other thread's unordered read or write.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        // See `with`: no tracking while unwinding from a reported failure.
        if std::thread::panicking() {
            return f(self.data.get());
        }
        let location = Location::caller();
        rt::branch();
        let race = {
            let mut s = self.lock();
            rt::with_clock(|clock, tid| {
                if let Some(w) = &s.last_write {
                    if w.tid != tid && !w.happens_before(clock) {
                        return Some(format!(
                            "loom: data race on UnsafeCell — write at {} \
                             (thread {}) is concurrent with write at {} (thread {tid})",
                            w.location, w.tid, location
                        ));
                    }
                }
                if let Some(r) = s
                    .reads
                    .iter()
                    .find(|r| r.tid != tid && !r.happens_before(clock))
                {
                    return Some(format!(
                        "loom: data race on UnsafeCell — read at {} (thread {}) \
                         is concurrent with write at {} (thread {tid})",
                        r.location, r.tid, location
                    ));
                }
                s.last_write = Some(AccessStamp {
                    tid,
                    at: clock.component(tid),
                    location,
                });
                s.reads.clear();
                None
            })
        };
        if let Some(msg) = race {
            rt::model_failure(msg);
        }
        f(self.data.get())
    }
}
