//! A model-checked mutex with the `parking_lot` (non-poisoning) API the
//! workspace's facade exposes.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;

use crate::rt::{self, VClock};

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    /// Clock released by the last unlock; acquiring joins it, so successive
    /// critical sections are totally ordered.
    sync: VClock,
    /// Simulated threads blocked waiting for the lock.
    waiters: Vec<usize>,
}

/// Model-checked mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: std::cell::UnsafeCell<T>,
    state: StdMutex<LockState>,
}

// SAFETY: `data` is only reachable through a `MutexGuard`, which the model
// hands to one thread at a time (the `held` flag below, checked under the
// scheduler's serialization); `T: Send` is required so the value may move
// between the threads that successively hold the lock.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — shared references to the Mutex only yield `&T`/`&mut T`
// through the exclusive guard.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            data: std::cell::UnsafeCell::new(value),
            state: StdMutex::new(LockState::default()),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Acquires the lock, blocking (in simulated time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::branch();
        loop {
            {
                let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if !s.held {
                    s.held = true;
                    rt::with_clock(|clock, _| clock.join(&s.sync));
                    return MutexGuard { lock: self };
                }
                rt::with_clock(|_, tid| s.waiters.push(tid));
            }
            rt::block_and_switch();
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        rt::branch();
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.held {
            return None;
        }
        s.held = true;
        rt::with_clock(|clock, _| clock.join(&s.sync));
        Some(MutexGuard { lock: self })
    }

    fn unlock(&self) {
        let waiters = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.held = false;
            rt::with_clock(|clock, _| s.sync.join(clock));
            std::mem::take(&mut s.waiters)
        };
        for tid in waiters {
            rt::unblock(tid);
        }
    }
}

/// Exclusive guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock (`held`
        // was set by this thread and is cleared only in `drop`).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard is exclusive.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}
