//! A model-checked `Arc`.
//!
//! The value lives in a real `std::sync::Arc`; what the model adds is the
//! happens-before edge real `Arc` provides through its reference count:
//! every drop *releases* the dropping thread's clock into the shared sync
//! clock, and the drop that turns out to be the last *acquires* the
//! accumulated clock — so whatever any owner did before releasing its
//! reference happens-before the final drop of the value.

use std::ops::Deref;
use std::sync::Mutex;

use crate::rt::{self, VClock};

#[derive(Debug, Default)]
struct ArcSync {
    clock: Mutex<VClock>,
}

/// Model-checked atomically reference-counted shared pointer.
pub struct Arc<T> {
    value: std::sync::Arc<T>,
    sync: std::sync::Arc<ArcSync>,
}

impl<T> Arc<T> {
    /// Creates a new reference-counted value.
    pub fn new(value: T) -> Self {
        Arc {
            value: std::sync::Arc::new(value),
            sync: std::sync::Arc::new(ArcSync::default()),
        }
    }

    /// Number of strong references.
    pub fn strong_count(this: &Self) -> usize {
        std::sync::Arc::strong_count(&this.sync)
    }

    /// Pointer equality of two handles.
    pub fn ptr_eq(this: &Self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&this.value, &other.value)
    }
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Self {
        if rt::in_model() {
            rt::branch();
        }
        Arc {
            value: std::sync::Arc::clone(&self.value),
            sync: std::sync::Arc::clone(&self.sync),
        }
    }
}

impl<T> Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        // Dropping outside a model (e.g. during post-failure unwinding of a
        // runner thread) needs no tracking.
        if !rt::in_model() {
            return;
        }
        rt::branch();
        let mut sync = self.sync.clock.lock().unwrap_or_else(|e| e.into_inner());
        rt::with_clock(|clock, _| {
            sync.join(clock);
            // We still hold one reference; a count of 1 means this drop is
            // the last and the value's destructor runs happens-after every
            // other owner's release above.
            if std::sync::Arc::strong_count(&self.sync) == 1 {
                clock.join(&sync);
            }
        });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: Default> Default for Arc<T> {
    fn default() -> Self {
        Arc::new(T::default())
    }
}
