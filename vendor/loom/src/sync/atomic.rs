//! Model-checked atomics.
//!
//! Values behave sequentially consistently (the scheduler serializes every
//! operation), while acquire/release *visibility* is tracked explicitly:
//! each atomic carries a sync clock deposited by release stores and joined
//! into the loading thread's clock by acquire loads. A `Relaxed` store
//! clears the sync clock (it heads no release sequence) and a `Relaxed` RMW
//! leaves it in place (it continues one) — so a protocol that publishes
//! through a `Relaxed` store genuinely fails to create the happens-before
//! edge, and the [`UnsafeCell`](crate::cell::UnsafeCell) race detector
//! catches the consumers that relied on it.

pub use std::sync::atomic::Ordering;

use std::sync::Mutex;

use crate::rt::{self, ModOrder, VClock};

fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

#[derive(Debug, Default)]
struct State {
    value: u64,
    /// Clock released into this atomic by the store (or release sequence)
    /// that produced the current value.
    sync: VClock,
    /// Recent modification order, for diagnostics.
    order: ModOrder,
}

/// The shared implementation under every public atomic type.
#[derive(Debug, Default)]
struct Atomic {
    state: Mutex<State>,
}

impl Atomic {
    fn new(value: u64) -> Self {
        Atomic {
            state: Mutex::new(State {
                value,
                sync: VClock::default(),
                order: ModOrder::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn load(&self, order: Ordering) -> u64 {
        rt::branch();
        let s = self.lock();
        if acquires(order) {
            rt::with_clock(|clock, _| clock.join(&s.sync));
        }
        s.value
    }

    fn store(&self, value: u64, order: Ordering) {
        rt::branch();
        let mut s = self.lock();
        rt::with_clock(|clock, tid| {
            if releases(order) {
                s.sync = clock.clone();
            } else {
                // A plain relaxed store breaks any release sequence headed
                // by an earlier store: readers synchronize with nothing.
                s.sync.clear();
            }
            s.order.record(value, tid);
        });
        s.value = value;
    }

    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        rt::branch();
        let mut s = self.lock();
        let prev = s.value;
        let next = f(prev);
        rt::with_clock(|clock, tid| {
            if acquires(order) {
                clock.join(&s.sync);
            }
            if releases(order) {
                // An RMW joins (rather than replaces) the sync clock: it
                // continues the release sequence it modifies.
                s.sync.join(clock);
            }
            s.order.record(next, tid);
        });
        s.value = next;
        prev
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        rt::branch();
        let mut s = self.lock();
        let prev = s.value;
        if prev == current {
            rt::with_clock(|clock, tid| {
                if acquires(success) {
                    clock.join(&s.sync);
                }
                if releases(success) {
                    s.sync.join(clock);
                }
                s.order.record(new, tid);
            });
            s.value = new;
            Ok(prev)
        } else {
            if acquires(failure) {
                rt::with_clock(|clock, _| clock.join(&s.sync));
            }
            Err(prev)
        }
    }

    /// Modification-order length (total stores), for model assertions.
    fn stores(&self) -> u64 {
        self.lock().order.len()
    }
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        /// A model-checked integer atomic (see the module docs).
        #[derive(Debug, Default)]
        pub struct $name {
            inner: Atomic,
        }

        impl $name {
            /// Creates a new atomic with `value`.
            pub fn new(value: $ty) -> Self {
                $name {
                    inner: Atomic::new(value as u64),
                }
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $ty {
                self.inner.load(order) as $ty
            }

            /// Stores `value`.
            pub fn store(&self, value: $ty, order: Ordering) {
                self.inner.store(value as u64, order)
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.inner.rmw(order, |_| value as u64) as $ty
            }

            /// Adds `value`, returning the previous value.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.inner
                    .rmw(order, |v| (v as $ty).wrapping_add(value) as u64) as $ty
            }

            /// Subtracts `value`, returning the previous value.
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.inner
                    .rmw(order, |v| (v as $ty).wrapping_sub(value) as u64) as $ty
            }

            /// Bitwise-ors in `value`, returning the previous value.
            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                self.inner.rmw(order, |v| v | (value as u64)) as $ty
            }

            /// Bitwise-ands in `value`, returning the previous value.
            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                self.inner.rmw(order, |v| ((v as $ty) & value) as u64) as $ty
            }

            /// Stores the maximum of the current value and `value`,
            /// returning the previous value.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                self.inner.rmw(order, |v| (v as $ty).max(value) as u64) as $ty
            }

            /// Compare-and-swap with independent success/failure orderings.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.inner
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Weak compare-and-swap (never fails spuriously in the model).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Total stores this atomic has absorbed — the length of its
            /// modification order (model-only diagnostic).
            pub fn modification_order_len(&self) -> u64 {
                self.inner.stores()
            }
        }
    };
}

int_atomic!(AtomicUsize, usize);
int_atomic!(AtomicU64, u64);
int_atomic!(AtomicU32, u32);

/// A model-checked boolean atomic (see the module docs).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: Atomic,
}

impl AtomicBool {
    /// Creates a new atomic with `value`.
    pub fn new(value: bool) -> Self {
        AtomicBool {
            inner: Atomic::new(value as u64),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> bool {
        self.inner.load(order) != 0
    }

    /// Stores `value`.
    pub fn store(&self, value: bool, order: Ordering) {
        self.inner.store(value as u64, order)
    }

    /// Swaps in `value`, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.inner.rmw(order, |_| value as u64) != 0
    }

    /// Compare-and-swap with independent success/failure orderings.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}
