//! A model-checked reader-writer lock with the `parking_lot` API.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;

use crate::rt::{self, VClock};

#[derive(Debug, Default)]
struct LockState {
    readers: usize,
    writer: bool,
    /// Clock released by unlocks; writers and readers both acquire it (a
    /// reader must see everything the last writer wrote), and both release
    /// into it (a writer must happen-after every preceding reader).
    sync: VClock,
    waiters: Vec<usize>,
}

/// Model-checked reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    data: std::cell::UnsafeCell<T>,
    state: StdMutex<LockState>,
}

// SAFETY: `data` is only reachable through the guards: many shared readers
// or one exclusive writer, enforced by the reader/writer accounting under
// the scheduler's serialization. `T: Send + Sync` mirrors std's bounds.
unsafe impl<T: Send> Send for RwLock<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            data: std::cell::UnsafeCell::new(value),
            state: StdMutex::new(LockState::default()),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        rt::branch();
        loop {
            {
                let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if !s.writer {
                    s.readers += 1;
                    rt::with_clock(|clock, _| clock.join(&s.sync));
                    return RwLockReadGuard { lock: self };
                }
                rt::with_clock(|_, tid| s.waiters.push(tid));
            }
            rt::block_and_switch();
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        rt::branch();
        loop {
            {
                let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if !s.writer && s.readers == 0 {
                    s.writer = true;
                    rt::with_clock(|clock, _| clock.join(&s.sync));
                    return RwLockWriteGuard { lock: self };
                }
                rt::with_clock(|_, tid| s.waiters.push(tid));
            }
            rt::block_and_switch();
        }
    }

    fn release(&self, write: bool) {
        let waiters = {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if write {
                s.writer = false;
            } else {
                s.readers -= 1;
            }
            rt::with_clock(|clock, _| s.sync.join(clock));
            std::mem::take(&mut s.waiters)
        };
        for tid in waiters {
            rt::unblock(tid);
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds a reader registration, so no writer can
        // be active (enforced in `write`).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(false);
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the writer flag, so access is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the writer flag guarantees exclusivity.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release(true);
    }
}
