//! Model-checked synchronization primitives.

pub mod atomic;

mod arc;
mod mutex;
mod rwlock;

pub use arc::Arc;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};
