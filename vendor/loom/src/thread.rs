//! Model-checked threads: spawn/join with happens-before edges, plus a
//! scheduler-aware `yield_now` for spin loops.

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a simulated thread; [`JoinHandle::join`] blocks (in simulated
/// time) until the thread finishes and establishes the usual happens-before
/// edge from everything the thread did.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err` carries
    /// the panic payload, as with `std`).
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_thread(self.tid);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom: thread result already taken")
    }
}

/// Spawns a simulated thread running `f`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn_thread(Box::new(move || {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(v) => *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v)),
            // Re-raise with the original payload: the runner records it as
            // the execution's failure, which is what a panicking model
            // thread means. (`join` never runs far enough to need the slot —
            // a failed execution aborts every surviving thread.)
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }));
    JoinHandle { tid, result }
}

/// Deprioritizes the calling thread for one scheduling decision — the model
/// equivalent of `std::thread::yield_now`, and the required ingredient of
/// any model spin loop (a spin without it livelocks the DFS).
pub fn yield_now() {
    rt::branch_yield();
}
