//! A minimal, vendored subset of the `loom` exhaustive concurrency model
//! checker.
//!
//! [`model`] runs a closure repeatedly, exploring every interleaving of the
//! simulated threads it spawns (bounded by [`rt::MAX_BRANCHES`] scheduling
//! decisions per execution and `LOOM_MAX_ITERATIONS` executions overall).
//! Threads are real OS threads, but the scheduler serializes them: exactly
//! one runs at a time, and every operation on a tracked primitive is a
//! *branch* — a point where the depth-first search may switch threads. On
//! later iterations the recorded path is replayed up to the deepest decision
//! with an unexplored alternative, which is then advanced.
//!
//! What the model tracks:
//!
//! - **Atomics** ([`sync::atomic`]): sequentially-consistent value semantics
//!   plus per-atomic *synchronization clocks* implementing acquire/release —
//!   a `Release` store publishes the writer's vector clock, an `Acquire`
//!   load joins it; a `Relaxed` store breaks the release sequence, while
//!   RMWs continue it.
//! - **Data races** ([`cell::UnsafeCell`]): every `with`/`with_mut` access
//!   is stamped with the thread's clock; a write concurrent with another
//!   access (neither ordered by happens-before) aborts the model and names
//!   the two racing source locations.
//! - **Locks and `Arc`** ([`sync`]): blocking is simulated (a blocked thread
//!   is removed from the enabled set), so lost-wakeup and deadlock schedules
//!   are explored and reported rather than hanging the test.
//!
//! The API mirrors the real `loom` crate for the subset the workspace's
//! `netdev::sync` facade needs; code written against the facade compiles
//! against `std` normally and against this crate under `--cfg loom`.

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub(crate) mod rt;

pub use rt::model;
