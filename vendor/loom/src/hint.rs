//! Model-checked spin-loop hint.

/// In a model, a spin-loop hint must deprioritize the spinner or the DFS
/// livelocks replaying the spin; it maps to [`crate::thread::yield_now`].
pub fn spin_loop() {
    crate::rt::branch_yield();
}
