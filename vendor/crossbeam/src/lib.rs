//! Minimal `crossbeam` shim providing `queue::ArrayQueue`.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the one crossbeam type the workspace uses. The shim is a bounded
//! MPMC queue with the same observable semantics as the upstream lock-free
//! implementation (push returns the rejected item when full, pop returns
//! `None` when empty); it trades the lock-free fast path for a plain mutex,
//! which is correct under arbitrary concurrency, just slower under heavy
//! contention.

/// Bounded queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded multi-producer multi-consumer queue.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `capacity` items.
        ///
        /// # Panics
        /// Panics if `capacity` is zero.
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Attempts to enqueue `item`, returning it back if the queue is full.
        pub fn push(&self, item: T) -> Result<(), T> {
            let mut q = self.guard();
            if q.len() == self.capacity {
                return Err(item);
            }
            q.push_back(item);
            Ok(())
        }

        /// Attempts to dequeue one item.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True when no items are queued.
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }

        /// True when the queue holds `capacity` items.
        pub fn is_full(&self) -> bool {
            self.guard().len() == self.capacity
        }

        /// Maximum number of items the queue can hold.
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_fifo() {
            let q = ArrayQueue::new(2);
            q.push(1).unwrap();
            q.push(2).unwrap();
            assert_eq!(q.push(3), Err(3));
            assert!(q.is_full());
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert_eq!(q.capacity(), 2);
        }
    }
}
