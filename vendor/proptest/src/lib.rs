//! Minimal `proptest` shim.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `ProptestConfig::with_cases`, `any`,
//! integer-range and tuple strategies, `prop::collection::vec`,
//! `prop::option::of`, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. Failing cases are reported at the size they were generated.
//! Generation is deterministic per test name and case index, so a failure
//! reproduces exactly under `cargo test` without persistence files.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic per-case RNG.

    use rand::prelude::*;

    /// RNG handed to strategies; seeded from the test name and case index.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from a range (delegates to the rand shim).
        pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
            self.inner.gen_range(range)
        }

        /// Uniform draw over the whole domain of `T`.
        pub fn gen<T: rand::Standard>(&mut self) -> T {
            self.inner.gen()
        }
    }
}

use test_runner::TestRng;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy adapter mapping values through a closure (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy choosing uniformly between type-erased alternatives (the
/// expansion of [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Picks uniformly among the listed strategies (all must produce the same
/// value type). Weighted variants of the upstream macro are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Strategy producing any value of `T` (full domain).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns a strategy producing any value of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// An inclusive size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy producing vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some` from an inner strategy, or `None`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Returns a strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Asserts a condition inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The conventional glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn options_cover_both_variants(pairs in prop::collection::vec(prop::option::of(0u8..5), 40..60)) {
            prop_assert!(pairs.iter().any(|p| p.is_none()));
            prop_assert!(pairs.iter().any(|p| p.is_some()));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        use crate::test_runner::TestRng;
        let a = TestRng::for_case("t", 0).next_u64();
        let b = TestRng::for_case("t", 0).next_u64();
        let c = TestRng::for_case("t", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
