//! Minimal `parking_lot` shim backed by `std::sync`.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — on top of the
//! standard-library primitives. Poisoning is ignored (a panic while holding a
//! lock does not poison it for later users), which matches `parking_lot`'s
//! semantics.

use std::fmt;

// Real `parking_lot` exports its guard types; the shim's guards are std's.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning `read()`/`write()` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
