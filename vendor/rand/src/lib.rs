//! Minimal `rand` shim.
//!
//! The build environment has no route to a crates registry, so this crate
//! provides the subset of the `rand` 0.8 API the workspace uses: `StdRng`
//! (here a xoshiro256** seeded via SplitMix64 — deterministic for a given
//! seed, which is all the workloads and tests rely on), the `Rng`,
//! `RngCore` and `SeedableRng` traits with `gen`, `gen_range`, `gen_bool`,
//! and `SliceRandom::shuffle`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits of uniformity in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                (self.start as u128).wrapping_add(draw % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: the modulus would overflow; draw raw.
                    return u128::sample(rng) as $t;
                }
                let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                (lo as u128).wrapping_add(draw % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, u128, usize);

/// Buffers that [`Rng::fill`] can populate with random bytes.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill(self);
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generator: xoshiro256** seeded via SplitMix64.
///
/// Unlike upstream's ChaCha-based `StdRng` this is not cryptographically
/// secure, but it is deterministic per seed and statistically sound, which is
/// what the traffic generators and tests need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// In-place randomisation of slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Picks a uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// The conventional glob-import module, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Fill, Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(1024..60_000);
            assert!((1024..60_000).contains(&v));
            let d: u8 = rng.gen_range(8..=32);
            assert!((8..=32).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should not be identity");
    }
}
