//! Umbrella crate for the ESWITCH reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that the
//! examples and cross-crate integration tests under the repository root can
//! use a single import path. Downstream users should normally depend on the
//! individual crates (`eswitch`, `ovsdp`, `openflow`, ...) directly.

pub use cpumodel;
pub use eswitch;
pub use netdev;
pub use openflow;
pub use ovsdp;
pub use pkt;
pub use shard;
pub use workloads;
