//! The "malicious workload" scenario of §2.3/§4.3: a single tenant emitting
//! high-entropy traffic (a port scan) degrades a flow-caching switch for
//! everyone, while the compiled datapath is unaffected.
//!
//! Run with: `cargo run --release --example cache_attack`

use std::time::Instant;

use eswitch::runtime::EswitchRuntime;
use ovsdp::OvsDatapath;
use pkt::builder::PacketBuilder;
use pkt::Packet;
use rand::prelude::*;
use workloads::gateway::{self, GatewayConfig};

/// Builds the attacker's traffic: one provisioned user cycling destination
/// ports and addresses as fast as possible (every packet is a new flow).
fn attack_packets(count: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            PacketBuilder::tcp()
                .vlan(gateway::ce_vlan(0))
                .ipv4_src(gateway::user_private_ip(0, 0).octets())
                .ipv4_dst([198, 51, 100, rng.gen_range(1..250)])
                .tcp_src(rng.gen_range(1024..u16::MAX))
                .tcp_dst(rng.gen())
                .in_port(0)
                .build()
        })
        .collect()
}

fn measure(
    label: &str,
    mut process: impl FnMut(&mut Packet),
    victim: &workloads::FlowSet,
    attack: &[Packet],
) {
    // Interleave victim traffic (a well-behaved user population) with the
    // attacker's scan, 1:1, and measure the aggregate rate.
    let packets = 200_000usize;
    let start = Instant::now();
    for i in 0..packets {
        if i % 2 == 0 {
            process(&mut victim.packet(i));
        } else {
            process(&mut attack[i % attack.len()].clone());
        }
    }
    let rate = packets as f64 / start.elapsed().as_secs_f64();
    println!("{label}: {:>12.0} packets/s under attack", rate);
}

fn main() {
    let config = GatewayConfig::default();
    let victim = gateway::build_traffic(&config, 1_000);
    let attack = attack_packets(50_000, 0xbad);

    let eswitch = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
    let ovs = OvsDatapath::new(gateway::build_pipeline(&config));

    // Warm both switches with the victim traffic only.
    for i in 0..20_000 {
        eswitch.process(&mut victim.packet(i));
        ovs.process(&mut victim.packet(i));
    }

    measure(
        "ESWITCH",
        |p| {
            eswitch.process(p);
        },
        &victim,
        &attack,
    );
    measure(
        "OVS    ",
        |p| {
            ovs.process(p);
        },
        &victim,
        &attack,
    );

    let (micro, mega, slow) = ovs.stats.hit_fractions();
    println!(
        "OVS hit fractions under attack: microflow {micro:.2}, megaflow {mega:.2}, slow path {slow:.2}"
    );
    println!(
        "OVS megaflows cached: {} (the scan punches one hole per probed flow)",
        ovs.megaflow_count()
    );
    println!("ESWITCH compiled tables are unaffected by the scan: no per-flow state exists.");
}
