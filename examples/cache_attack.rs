//! The "malicious workload" scenario of §2.3/§4.3: a single tenant emitting
//! high-entropy traffic (a port scan) degrades a flow-caching switch for
//! everyone, while the compiled datapath is unaffected.
//!
//! Act two aims the same adversary at the slow path it actually threatens:
//! the sharded *reactive* runtime, where the gateway admits users through
//! the controller. The scan mutates into a fake-user storm (every packet a
//! fresh unknown source, none ever installable), and the layered punt
//! admission — per-flow gate, per-source token buckets, aggregate budget —
//! sheds it while the legitimate users still get their NAT rules installed.
//!
//! Run with: `cargo run --release --example cache_attack`

use std::time::Instant;

use eswitch::runtime::EswitchRuntime;
use ovsdp::OvsDatapath;
use pkt::builder::PacketBuilder;
use pkt::Packet;
use rand::prelude::*;
use shard::{BackendSpec, PuntPolicy, ShardedConfig, ShardedSwitch};
use workloads::gateway::{self, GatewayConfig};

/// Builds the attacker's traffic: one provisioned user cycling destination
/// ports and addresses as fast as possible (every packet is a new flow).
fn attack_packets(count: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            PacketBuilder::tcp()
                .vlan(gateway::ce_vlan(0))
                .ipv4_src(gateway::user_private_ip(0, 0).octets())
                .ipv4_dst([198, 51, 100, rng.gen_range(1..250)])
                .tcp_src(rng.gen_range(1024..u16::MAX))
                .tcp_dst(rng.gen())
                .in_port(0)
                .build()
        })
        .collect()
}

fn measure(
    label: &str,
    mut process: impl FnMut(&mut Packet),
    victim: &workloads::FlowSet,
    attack: &[Packet],
) {
    // Interleave victim traffic (a well-behaved user population) with the
    // attacker's scan, 1:1, and measure the aggregate rate.
    let packets = 200_000usize;
    let start = Instant::now();
    for i in 0..packets {
        if i % 2 == 0 {
            process(&mut victim.packet(i));
        } else {
            process(&mut attack[i % attack.len()].clone());
        }
    }
    let rate = packets as f64 / start.elapsed().as_secs_f64();
    println!("{label}: {:>12.0} packets/s under attack", rate);
}

/// The punt-path adversary: packets from CE 0 claiming private addresses no
/// provisioned user owns. Each one misses the NAT table, punts, and is
/// refused by the admission controller — so unlike the port scan (one punt,
/// then the user's NAT rule covers every probe), this storm punts forever.
/// Each fake identity scans from many distinct flows: the per-flow gate
/// (layer 1) only dedups an in-flight flow, so the identity's *aggregate*
/// punt rate is what the per-source bucket (layer 2) has to catch.
fn fake_user_packets(users: usize, flows_per_user: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::with_capacity(users * flows_per_user);
    for user in 0..users {
        let src = [10, 0, 200 + (user / 250) as u8, (user % 250 + 2) as u8];
        for _ in 0..flows_per_user {
            packets.push(
                PacketBuilder::tcp()
                    .vlan(gateway::ce_vlan(0))
                    .ipv4_src(src)
                    .ipv4_dst([198, 51, 100, rng.gen_range(1..250)])
                    .tcp_src(rng.gen_range(1024..u16::MAX))
                    .tcp_dst(80)
                    .in_port(0)
                    .build(),
            );
        }
    }
    packets.shuffle(&mut rng);
    packets
}

/// Act two: the fake-user storm against the sharded reactive runtime, with
/// the hardened punt-admission policy shedding it.
fn reactive_storm() {
    let config = GatewayConfig {
        preinstall_users: false,
        ..GatewayConfig::default()
    };
    let victim = gateway::build_traffic(&config, 1_000);
    // A pool of fake identities, each scanning from many flows, cycled
    // hard: every identity is far over the per-source punt rate, so layer 2
    // does the shedding. (Minting a fresh identity per packet instead
    // spreads thin over the bucket table and runs into the aggregate budget
    // — layer 3 — as the storm soak test shows.)
    let storm = fake_user_packets(64, 32, 0xbad);

    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        BackendSpec::eswitch(),
        gateway::build_pipeline(&config),
        ShardedConfig {
            workers: 2,
            controller_workers: 2,
            punt_policy: PuntPolicy::hardened(50, 10_000),
            ..ShardedConfig::default()
        },
        Box::new(gateway::admission_controller(&config)),
    )
    .expect("gateway pipeline compiles");

    // Legitimate users (each needs one reactive admission) interleaved 1:1
    // with the fake-user storm.
    let mut packets = 60_000usize;
    let start = Instant::now();
    for i in 0..packets {
        if i % 2 == 0 {
            dispatcher.dispatch(victim.packet(i));
        } else {
            dispatcher.dispatch(storm[(i / 2) % storm.len()].clone());
        }
    }
    // A storm hot enough to drain the aggregate budget can shed a late
    // victim install too (the gate re-arms, the user's next packet
    // retries). Let the steady feed run until a full victim pass raises no
    // new punt attempt: every user on the fast path.
    let stats = |switch: &ShardedSwitch| switch.reactive_stats().expect("reactive launch");
    loop {
        let before = stats(&switch).attempts();
        for i in 0..victim.active_flows() {
            dispatcher.dispatch(victim.packet(packets + i));
        }
        packets += victim.active_flows();
        dispatcher.flush();
        while switch.stats().packets < dispatcher.dispatched() {
            std::thread::yield_now();
        }
        let s = stats(&switch);
        if s.attempts() == before && s.answered == s.punted {
            break;
        }
        assert!(
            start.elapsed().as_secs() < 60,
            "legitimate users starved by the storm: {s:?}"
        );
    }
    let report = switch.shutdown(dispatcher);
    let rate = packets as f64 / start.elapsed().as_secs_f64();
    let r = report.reactive.expect("reactive launch");

    println!("\nreactive gateway under fake-user storm (sharded runtime, 2 controller workers):");
    println!("  {rate:>12.0} packets/s end to end");
    println!(
        "  punts: {} admitted to the controller, {} suppressed in flight, {} shed per-source, {} shed aggregate, {} ring overflow",
        r.punted, r.suppressed, r.shed_source, r.shed_aggregate, r.overflow
    );
    let drains: Vec<u64> = r.per_worker.iter().map(|w| w.drained).collect();
    println!(
        "  {} NAT flow-mods installed for legitimate users (idempotent re-installs included); per-controller-worker drains {drains:?}",
        r.flow_mods
    );
    // The layered admission's exactly-once accounting, demonstrated live.
    assert_eq!(
        r.admitted,
        r.punted + r.overflow + r.shed_source + r.shed_aggregate
    );
    assert_eq!(r.answered, r.punted);
    // The convergence pass proved every active victim flow reached the fast
    // path; the flow-mod count shows the bulk of the user population was
    // admitted *through* the storm (2 NAT rules per user).
    let users = (config.ces * config.users_per_ce) as u64;
    assert!(
        r.flow_mods >= users,
        "legitimate users starved: {} flow-mods for {users} users",
        r.flow_mods
    );
    assert!(
        r.shed_source + r.shed_aggregate > 0,
        "the storm should have tripped the admission layers: {r:?}"
    );
    println!("  every active victim flow converged through the storm");
}

fn main() {
    let config = GatewayConfig::default();
    let victim = gateway::build_traffic(&config, 1_000);
    let attack = attack_packets(50_000, 0xbad);

    let eswitch = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
    let ovs = OvsDatapath::new(gateway::build_pipeline(&config));

    // Warm both switches with the victim traffic only.
    for i in 0..20_000 {
        eswitch.process(&mut victim.packet(i));
        ovs.process(&mut victim.packet(i));
    }

    measure(
        "ESWITCH",
        |p| {
            eswitch.process(p);
        },
        &victim,
        &attack,
    );
    measure(
        "OVS    ",
        |p| {
            ovs.process(p);
        },
        &victim,
        &attack,
    );

    let (micro, mega, slow) = ovs.stats.hit_fractions();
    println!(
        "OVS hit fractions under attack: microflow {micro:.2}, megaflow {mega:.2}, slow path {slow:.2}"
    );
    println!(
        "OVS megaflows cached: {} (the scan punches one hole per probed flow)",
        ovs.megaflow_count()
    );
    println!("ESWITCH compiled tables are unaffected by the scan: no per-flow state exists.");

    reactive_storm();
}
