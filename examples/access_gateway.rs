//! The telco access-gateway (vPE) use case end to end, in reactive mode:
//! the per-CE tables start empty, unknown users are punted to the admission
//! controller, which allocates a public address and installs the NAT rule
//! pair; subsequent packets of the user take the compiled fast path.
//!
//! Run with: `cargo run --release --example access_gateway`

use eswitch::analysis::CompilerConfig;
use eswitch::runtime::EswitchRuntime;
use openflow::FlowKey;
use pkt::ipv4::Ipv4Addr4;
use workloads::gateway::{self, GatewayConfig};

fn main() {
    let config = GatewayConfig {
        ces: 4,
        users_per_ce: 8,
        routing_prefixes: 2_000,
        seed: 42,
        preinstall_users: false, // reactive admission
    };
    let switch = EswitchRuntime::with_config(
        gateway::build_pipeline(&config),
        CompilerConfig::default(),
        Box::new(gateway::admission_controller(&config)),
    )
    .expect("gateway pipeline compiles");

    println!("compiled templates:");
    for (id, kind) in switch.datapath().template_kinds() {
        println!("  table {id:>3}: {kind:?}");
    }

    // First packets from three users behind two CEs: all punted, NAT rules
    // installed reactively.
    let users = [(0usize, 1usize), (0, 2), (1, 1)];
    for &(ce, user) in &users {
        let mut packet = pkt::builder::PacketBuilder::tcp()
            .vlan(gateway::ce_vlan(ce))
            .ipv4_src(gateway::user_private_ip(ce, user).octets())
            .ipv4_dst([198, 51, 100, 10])
            .tcp_dst(443)
            .in_port(0)
            .build();
        let verdict = switch.process(&mut packet);
        println!(
            "first packet of CE{ce}/user{user}: to_controller = {}",
            verdict.to_controller
        );
    }
    println!(
        "controller handled {} packet-ins; updates: incremental={}, table rebuilds={}, full recompiles={}",
        switch.controller_packet_ins(),
        switch.updates.incremental.updates(),
        switch.updates.table_rebuilds.updates(),
        switch.updates.full_recompiles.updates(),
    );

    // Second packets of the same users: NATted and routed in the fast path.
    for &(ce, user) in &users {
        let mut packet = pkt::builder::PacketBuilder::tcp()
            .vlan(gateway::ce_vlan(ce))
            .ipv4_src(gateway::user_private_ip(ce, user).octets())
            .ipv4_dst([198, 51, 100, 10])
            .tcp_dst(443)
            .in_port(0)
            .build();
        let verdict = switch.process(&mut packet);
        let key = FlowKey::extract(&packet);
        println!(
            "CE{ce}/user{user}: outputs {:?}, source rewritten to {}",
            verdict.outputs,
            Ipv4Addr4::from_u32(key.ipv4_src.unwrap_or_default())
        );
    }

    // And a downstream packet towards one of the users.
    let mut down = pkt::builder::PacketBuilder::tcp()
        .ipv4_src([198, 51, 100, 10])
        .ipv4_dst(gateway::user_public_ip(0, 1).octets())
        .tcp_src(443)
        .in_port(1)
        .build();
    let verdict = switch.process(&mut down);
    let key = FlowKey::extract(&down);
    println!(
        "downstream to user0@CE0: outputs {:?}, destination {} vlan {:?}",
        verdict.outputs,
        Ipv4Addr4::from_u32(key.ipv4_dst.unwrap_or_default()),
        key.vlan_vid
    );
}
