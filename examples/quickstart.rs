//! Quickstart: build an OpenFlow pipeline, compile it with ESWITCH, push a
//! few packets through it, and look at the generated "code".
//!
//! Run with: `cargo run --example quickstart`

use eswitch::runtime::EswitchRuntime;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowMod, Pipeline};
use pkt::builder::PacketBuilder;

fn main() {
    // 1. Describe the forwarding behaviour as a plain OpenFlow pipeline:
    //    a tiny firewall that forwards internal traffic and only admits web
    //    traffic towards the protected server (Fig. 1a of the paper).
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, 1),
        300,
        terminal_actions(vec![Action::Output(0)]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any()
            .with_exact(Field::InPort, 0)
            .with_exact(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([192, 0, 2, 1])),
            )
            .with_exact(Field::TcpDst, 80),
        200,
        terminal_actions(vec![Action::Output(1)]),
    ));
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

    // 2. Compile it. The analysis pass picks a table template, the
    //    specialization pass patches the flow keys in, and the runtime is
    //    ready to forward.
    let switch = EswitchRuntime::compile(pipeline).expect("pipeline compiles");
    println!(
        "compiled templates: {:?}",
        switch.datapath().template_kinds()
    );
    println!(
        "--- generated datapath ---\n{}",
        switch.datapath().disassemble()
    );

    // 3. Forward some packets.
    let mut http = PacketBuilder::tcp()
        .ipv4_dst([192, 0, 2, 1])
        .tcp_dst(80)
        .in_port(0)
        .build();
    let mut ssh = PacketBuilder::tcp()
        .ipv4_dst([192, 0, 2, 1])
        .tcp_dst(22)
        .in_port(0)
        .build();
    println!(
        "HTTP from outside  -> {:?}",
        switch.process(&mut http).outputs
    );
    println!(
        "SSH from outside   -> drop = {}",
        switch.process(&mut ssh).is_drop()
    );

    // 4. Update the pipeline at runtime: admit HTTPS as well. The runtime
    //    absorbs the flow-mod and the datapath keeps serving packets.
    switch
        .flow_mod(&FlowMod::add(
            0,
            FlowMatch::any()
                .with_exact(Field::InPort, 0)
                .with_exact(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([192, 0, 2, 1])),
                )
                .with_exact(Field::TcpDst, 443),
            200,
            terminal_actions(vec![Action::Output(1)]),
        ))
        .expect("flow-mod applies");
    let mut https = PacketBuilder::tcp()
        .ipv4_dst([192, 0, 2, 1])
        .tcp_dst(443)
        .in_port(0)
        .build();
    println!(
        "HTTPS after update -> {:?}",
        switch.process(&mut https).outputs
    );
}
