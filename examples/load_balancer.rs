//! The load-balancer use case end to end: build the single-table pipeline a
//! controller would emit (Fig. 7a), let the ESWITCH decomposition pass
//! promote it to a multi-stage pipeline (Fig. 7b), and compare the compiled
//! datapath against the OVS-style caching datapath on the same traffic.
//!
//! Run with: `cargo run --release --example load_balancer`

use std::time::Instant;

use eswitch::analysis::CompilerConfig;
use eswitch::decompose::decompose_pipeline_with;
use eswitch::runtime::EswitchRuntime;
use openflow::NullController;
use ovsdp::OvsDatapath;
use workloads::load_balancer::{self, LoadBalancerConfig};

fn main() {
    let config = LoadBalancerConfig {
        services: 32,
        seed: 7,
    };
    let pipeline = load_balancer::build_pipeline(&config);
    println!(
        "controller-emitted pipeline: {} table(s), {} entries",
        pipeline.table_count(),
        pipeline.entry_count()
    );

    // What the decomposition pass does to it.
    let compiler = CompilerConfig {
        enable_decomposition: true,
        ..CompilerConfig::default()
    };
    let decomposed = decompose_pipeline_with(&pipeline, &compiler);
    println!(
        "after decomposition: {} tables, {} entries",
        decomposed.stats.output_tables, decomposed.stats.output_entries
    );

    // Compile and compare against the flow-caching baseline.
    let eswitch = EswitchRuntime::with_config(
        load_balancer::build_pipeline(&config),
        compiler,
        Box::new(NullController::new()),
    )
    .expect("compiles");
    println!(
        "compiled templates: {:?}",
        eswitch.datapath().template_kinds()
    );
    let ovs = OvsDatapath::new(load_balancer::build_pipeline(&config));

    let traffic = load_balancer::build_traffic(&config, 10_000);
    let packets = 200_000;
    for (label, process) in [
        (
            "ESWITCH",
            &(|p: &mut pkt::Packet| eswitch.process(p).outputs.len())
                as &dyn Fn(&mut pkt::Packet) -> usize,
        ),
        ("OVS    ", &|p: &mut pkt::Packet| {
            ovs.process(p).outputs.len()
        }),
    ] {
        // Warm up, then measure.
        for i in 0..20_000 {
            process(&mut traffic.packet(i));
        }
        let start = Instant::now();
        let mut forwarded = 0usize;
        for i in 0..packets {
            forwarded += process(&mut traffic.packet(20_000 + i));
        }
        let rate = packets as f64 / start.elapsed().as_secs_f64();
        println!(
            "{label}: {:>10.0} packets/s  ({} of {} packets admitted)",
            rate, forwarded, packets
        );
    }
    let (micro, mega, slow) = ovs.stats.hit_fractions();
    println!(
        "OVS cache hit fractions: microflow {micro:.2}, megaflow {mega:.2}, slow path {slow:.3}"
    );
}
