//! Flow-table decomposition walk-through: the Fig. 5 example, a firewall ACL,
//! and the Appendix's 3SAT reduction showing why minimal decomposition is
//! intractable (and why ESWITCH uses a greedy heuristic).
//!
//! Run with: `cargo run --example decomposition`

use eswitch::analysis::{select_template, CompilerConfig};
use eswitch::decompose::{decompose_pipeline_with, sat};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowTable, Pipeline};
use workloads::acl::{generate_acl_table, AclConfig};

fn fig5_style_table() -> FlowTable {
    let mut t = FlowTable::named(0, "fig5");
    let ips: [u32; 3] = [0x0a000001, 0x0a000002, 0x0a000003];
    let rows: [(Option<u32>, Option<u16>, u32); 6] = [
        (Some(ips[0]), Some(80), 1),
        (Some(ips[1]), Some(80), 2),
        (Some(ips[2]), None, 3),
        (Some(ips[0]), Some(22), 4),
        (Some(ips[1]), Some(22), 5),
        (None, None, 6),
    ];
    for (i, (ip, port, out)) in rows.iter().enumerate() {
        let mut m = FlowMatch::any();
        if let Some(ip) = ip {
            m = m.with_exact(Field::Ipv4Dst, u128::from(*ip));
        }
        if let Some(port) = port {
            m = m.with_exact(Field::TcpDst, u128::from(*port));
        }
        t.insert(FlowEntry::new(
            m,
            (100 - i) as u16,
            terminal_actions(vec![Action::Output(*out)]),
        ));
    }
    t
}

fn show(pipeline: &Pipeline, config: &CompilerConfig, label: &str) {
    let result = decompose_pipeline_with(pipeline, config);
    println!(
        "{label}: {} table(s) / {} entries  ->  {} table(s) / {} entries",
        result.stats.input_tables,
        result.stats.input_entries,
        result.stats.output_tables,
        result.stats.output_entries
    );
    for table in result.pipeline.tables() {
        println!(
            "    table {:>3} ({:<22}) {:>4} entries, template {:?}",
            table.id,
            table.name,
            table.len(),
            select_template(table, config)
        );
    }
}

fn main() {
    let config = CompilerConfig {
        direct_code_limit: 0, // force decomposition even for small examples
        enable_decomposition: true,
        ..CompilerConfig::default()
    };

    // 1. The Fig. 5 example: decomposing along the low-diversity column gives
    //    4 tables, all single-field.
    let mut fig5 = Pipeline::new();
    fig5.add_table(fig5_style_table());
    show(&fig5, &config, "Fig. 5 example  ");

    // 2. A snort-like five-tuple ACL (the §3.2 stress test).
    let mut acl = Pipeline::new();
    acl.add_table(generate_acl_table(&AclConfig::default()));
    show(&acl, &config, "72-rule ACL     ");

    // 3. The Appendix: deciding whether a table decomposes into a *single*
    //    regular table encodes 3SAT, hence the greedy heuristic.
    let satisfiable = sat::appendix_example();
    let unsat = sat::unsatisfiable_example();
    println!(
        "\nAppendix reduction: satisfiable formula -> single-regular-table decomposition possible? {}",
        sat::decomposes_to_single_regular_table(&satisfiable)
    );
    println!(
        "                    unsatisfiable formula -> single-regular-table decomposition possible? {}",
        sat::decomposes_to_single_regular_table(&unsat)
    );
}
