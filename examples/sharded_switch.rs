//! Sharded switch runtime: live flow-mods under multi-worker load.
//!
//! Launches the `shard` runtime with two worker shards over an L2+ACL-style
//! pipeline, streams traffic through the RSS dispatcher, and — while packets
//! keep flowing — applies flow-mods through the control plane. Each update
//! is compiled once centrally and broadcast to the shards as a new epoch via
//! an atomic `Arc` swap: no worker blocks, no packet is dropped, and every
//! packet is processed against exactly one epoch's pipeline.
//!
//! Run with: `cargo run --example sharded_switch`

use eswitch_repro::openflow::flow_match::FlowMatch;
use eswitch_repro::openflow::instruction::terminal_actions;
use eswitch_repro::openflow::{Action, Field, FlowEntry, FlowMod, Pipeline};
use eswitch_repro::pkt::builder::PacketBuilder;
use eswitch_repro::shard::{BackendSpec, ShardedConfig, ShardedSwitch};

fn build_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for port in 0..16u16 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(8000 + port)),
            100,
            terminal_actions(vec![Action::Output(u32::from(port % 4))]),
        ));
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

fn main() {
    println!("== sharded switch: live flow-mods under load ==\n");

    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        let (switch, mut dispatcher) = ShardedSwitch::launch(
            spec,
            build_pipeline(),
            ShardedConfig {
                workers: 2,
                ring_capacity: 512,
                ..ShardedConfig::default()
            },
        )
        .expect("pipeline compiles");
        println!(
            "[{}] launched {} worker shards, epoch {}",
            spec.label(),
            switch.workers(),
            switch.epoch()
        );

        // Phase 1: steady traffic over 512 flows.
        let packet = |i: usize| {
            PacketBuilder::tcp()
                .tcp_dst(8000 + (i % 16) as u16)
                .tcp_src(1024 + (i % 512) as u16)
                .build()
        };
        for i in 0..20_000 {
            dispatcher.dispatch(packet(i));
        }

        // Phase 2: updates race the traffic. Block port 8007, then open a
        // brand-new service on 9000 — packets keep flowing the whole time.
        switch
            .flow_mod(&FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 8007),
                200,
                vec![], // drop
            ))
            .expect("block flow-mod applies");
        for i in 20_000..40_000 {
            dispatcher.dispatch(packet(i));
        }
        switch
            .flow_mod(&FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 9000),
                150,
                terminal_actions(vec![Action::Output(7)]),
            ))
            .expect("open flow-mod applies");
        for i in 40_000..60_000 {
            dispatcher.dispatch(packet(i));
        }

        println!(
            "[{}] control epoch {} after 2 live updates; shard epochs {:?}",
            spec.label(),
            switch.epoch(),
            switch.shard_epochs()
        );

        let report = switch.shutdown(dispatcher);
        println!(
            "[{}] dispatched {} packets, processed {} ({} lost), per shard: {}",
            spec.label(),
            report.dispatched,
            report.processed.packets,
            report.dispatched - report.processed.packets,
            report
                .per_shard
                .iter()
                .enumerate()
                .map(|(i, s)| format!("shard{i}={}", s.packets))
                .collect::<Vec<_>>()
                .join(" "),
        );
        assert_eq!(report.dispatched, report.processed.packets);
        assert_eq!(report.epoch, 2);
        println!();
    }
    println!("every dispatched packet was processed; updates never stalled a worker");
}
