//! A classic L2 learning switch on the sharded runtime's reactive slow path.
//!
//! Worker shards forward on a seeded MAC table; unknown destinations punt to
//! the asynchronous controller channel. The controller learns source MACs
//! from the punts, installs destination rules back through the epoch-swap
//! control plane (incremental §3.4 epochs), and re-injects each triggering
//! packet through the RSS dispatcher so it takes the fresh rule on the fast
//! path. After one punt per destination, every flow runs punt-free.
//!
//! Run with: `cargo run --example learning_switch_sharded`

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eswitch_repro::openflow::controller::FnController;
use eswitch_repro::openflow::flow_match::FlowMatch;
use eswitch_repro::openflow::instruction::terminal_actions;
use eswitch_repro::openflow::{
    Action, ControllerDecision, Field, FlowKey, FlowMod, PacketIn, PacketOut, Pipeline,
    TableMissBehavior,
};
use eswitch_repro::pkt::builder::PacketBuilder;
use eswitch_repro::pkt::{MacAddr, Packet};
use eswitch_repro::shard::{BackendSpec, ShardedConfig, ShardedSwitch};

const HOSTS: u64 = 8;
const MAC_BASE: u64 = 0x0200_0000_aa00;

fn host_mac(i: u64) -> MacAddr {
    MacAddr::from_u64(MAC_BASE + i)
}

fn packet(src: u64, dst: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(host_mac(src))
        .eth_dst(host_mac(dst))
        .in_port(src as u32)
        .build()
}

fn main() {
    println!(
        "== sharded learning switch: reactive installs over the async controller channel ==\n"
    );

    // An empty-but-punting pipeline: every miss goes to the controller.
    let mut pipeline = Pipeline::with_tables(1);
    pipeline.table_mut(0).unwrap().miss = TableMissBehavior::ToController;

    // The learning-switch controller application: learn src → port, install
    // a dst rule once the destination is known, re-inject the trigger.
    let mut learned: HashMap<u64, u32> = HashMap::new();
    let controller = FnController::new(move |pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        learned.insert(key.eth_src, pi.packet.in_port);
        match learned.get(&key.eth_dst) {
            Some(port) => vec![
                ControllerDecision::FlowMod(FlowMod::add(
                    0,
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                    10,
                    terminal_actions(vec![Action::Output(*port)]),
                )),
                ControllerDecision::PacketOut(PacketOut::resubmit(pi.packet)),
            ],
            None => vec![ControllerDecision::PacketOut(PacketOut::new(
                pi.packet,
                vec![Action::Flood],
            ))],
        }
    });

    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        BackendSpec::eswitch(),
        pipeline,
        ShardedConfig {
            workers: 2,
            ring_capacity: 512,
            ..ShardedConfig::default()
        },
        Box::new(controller),
    )
    .expect("pipeline compiles");
    println!(
        "launched {} worker shards + 1 controller thread",
        switch.workers()
    );

    // Phase 1: ping-pong traffic between all host pairs while the punts
    // resolve asynchronously — workers never block on the controller.
    let pairs: Vec<(u64, u64)> = (0..HOSTS)
        .flat_map(|s| (0..HOSTS).filter(move |d| *d != s).map(move |d| (s, d)))
        .collect();
    for _ in 0..400 {
        for &(s, d) in &pairs {
            dispatcher.dispatch(packet(s, d));
        }
    }
    dispatcher.flush();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = switch.reactive_stats().expect("reactive launch");
        if switch.stats().packets == dispatcher.dispatched()
            && stats.answered == stats.punted
            && stats.injected == stats.reinjected
        {
            break;
        }
        assert!(Instant::now() < deadline, "never converged: {stats:?}");
        std::thread::yield_now();
    }
    while switch.shard_epochs().iter().any(|e| *e != switch.epoch()) {
        std::thread::yield_now();
    }
    let converged = switch.reactive_stats().unwrap();
    println!(
        "converged: {} punts raised ({} suppressed as duplicates), {} answered, {} rules installed, {} packet-outs re-injected",
        converged.punted,
        converged.suppressed,
        converged.answered,
        converged.flow_mods,
        converged.reinjected,
    );
    println!(
        "mean punt round-trip {:.1}µs; update classes {:?}",
        converged.rtt_mean_nanos() / 1_000.0,
        switch.update_classes(),
    );

    // Phase 2: every destination is installed — the same traffic now runs
    // entirely on the fast path, with zero further punts.
    for _ in 0..200 {
        for &(s, d) in &pairs {
            dispatcher.dispatch(packet(s, d));
        }
    }
    dispatcher.flush();
    while switch.stats().packets < dispatcher.dispatched() {
        std::thread::yield_now();
    }
    let settled = switch.reactive_stats().unwrap();
    assert_eq!(
        settled.attempts(),
        converged.attempts(),
        "installed flows must not punt again"
    );
    println!(
        "\nphase 2: {} more packets, zero new punts — every flow on the fast path",
        200 * pairs.len()
    );

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.dispatched, report.processed.packets);
    let reactive = report.reactive.unwrap();
    assert_eq!(reactive.answered, reactive.punted);
    assert_eq!(reactive.injected, reactive.reinjected);
    println!(
        "shutdown: {} dispatched == {} processed; every punt answered, every re-injection processed",
        report.dispatched, report.processed.packets
    );
}
