//! Source-analysis lint gate: repo-specific rules that `rustc`/`clippy`
//! cannot express, run in CI as `cargo xtask lint`.
//!
//! Three rules, all pure text analysis over the workspace's `.rs` files:
//!
//! 1. **SAFETY comments** — every `unsafe {` block and `unsafe impl` must
//!    carry a `SAFETY:` comment, either on the same line or in the
//!    contiguous comment block directly above. This overlaps with
//!    `clippy::undocumented_unsafe_blocks` on purpose: the clippy lint only
//!    fires on code clippy actually compiles (one cfg combination at a
//!    time) — this rule sees every cfg branch, including `cfg(loom)`-only
//!    code the default clippy job never type-checks.
//! 2. **Sync-facade integrity** — inside the facade-covered crates
//!    (`netdev`, `shard`, `core`), no source file other than the facade
//!    itself (`crates/netdev/src/sync.rs`) may name `std::sync::atomic` or
//!    `std::cell::UnsafeCell`. Everything goes through `netdev::sync`, so
//!    the loom build exercises the same primitives the production build
//!    runs. `#[cfg(test)]` regions are exempt (tests run under std only).
//! 3. **Fast-path allocation ban** — the declared per-packet fast-path
//!    modules must not use allocation constructors (`Vec::new`, `Box::new`,
//!    `vec![`, `format!`, `.to_vec()`, `String::new`, `.to_string()`).
//!    `#[cfg(test)]` regions are exempt. The allocation-regression test
//!    measures the *composed* hit path at runtime with one workload; this
//!    rule keeps the leaf modules honest at the source level, whatever the
//!    workload.

use std::fmt;
use std::path::Path;
use std::process::ExitCode;

/// Files whose per-packet code paths must stay allocation-free. Paths are
/// workspace-relative with `/` separators.
const FAST_PATH_MODULES: &[&str] = &[
    "crates/netdev/src/ring.rs",
    "crates/netdev/src/port.rs",
    "crates/netdev/src/classify.rs",
    "crates/netdev/src/stats.rs",
    "crates/ovsdp/src/minikey.rs",
    "crates/conntrack/src/table.rs",
    "crates/conntrack/src/wheel.rs",
    "crates/shard/src/telemetry.rs",
];

/// Crates whose source must route all atomics/`UnsafeCell` use through the
/// `netdev::sync` facade.
const FACADE_COVERED: &[&str] = &[
    "crates/netdev/src/",
    "crates/shard/src/",
    "crates/core/src/",
    "crates/conntrack/src/",
];

/// The one file allowed to name the raw primitives: the facade itself.
const FACADE_FILE: &str = "crates/netdev/src/sync.rs";

const BANNED_PRIMITIVES: &[&str] = &["std::sync::atomic", "std::cell::UnsafeCell"];

const BANNED_ALLOCATIONS: &[&str] = &[
    "Vec::new",
    "Box::new",
    "vec!",
    "format!",
    ".to_vec()",
    "String::new",
    ".to_string()",
];

#[derive(Debug, PartialEq)]
struct Violation {
    file: String,
    /// 1-indexed.
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Strips line comments, block comments and string/char literal *contents*
/// so token searches don't match inside them. Stripped characters become
/// spaces; line structure is preserved exactly.
fn censor(src: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string: `r`, zero or more `#`, `"`.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j;
                    } else {
                        out.push(c);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: treat as a literal only if a
                    // closing quote appears within 4 chars (covers 'x',
                    // '\n', '\\', '\''); otherwise it's a lifetime tick.
                    if (1..=4).any(|d| chars.get(i + d) == Some(&'\'')) {
                        st = St::Char;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                _ => out.push(if c == '\n' { '\n' } else { ' ' }),
            },
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes as usize).all(|d| chars.get(i + 1 + d) == Some(&'#')) {
                    for _ in 0..=hashes as usize {
                        out.push(' ');
                    }
                    i += hashes as usize;
                    st = St::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            St::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Per-line mask over censored source: `true` for lines inside a
/// `#[cfg(test)]`-gated item (the attribute line through the close of the
/// item's brace block, or through the first `;` for braceless items).
fn test_region_mask(censored: &str) -> Vec<bool> {
    let lines: Vec<&str> = censored.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && lines[j].contains(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Rule 1: every `unsafe {` / `unsafe impl` carries a `SAFETY:` comment on
/// the same line or in the contiguous comment block directly above.
fn check_safety_comments(file: &str, src: &str) -> Vec<Violation> {
    let censored = censor(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, cen) in censored.lines().enumerate() {
        let words: Vec<&str> = cen.split_whitespace().collect();
        let is_unsafe_site = words
            .windows(2)
            .any(|w| w[0] == "unsafe" && (w[1].starts_with('{') || w[1].starts_with("impl")))
            || words.last() == Some(&"unsafe")
            || cen.contains("unsafe{");
        if !is_unsafe_site {
            continue;
        }
        // Same-line comment (comments are censored out of `cen`, so check
        // the raw line).
        if raw_lines[idx].contains("SAFETY:") {
            continue;
        }
        // Contiguous comment block directly above.
        let mut documented = false;
        let mut k = idx;
        while k > 0 {
            k -= 1;
            let t = raw_lines[k].trim_start();
            if !(t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')) {
                break;
            }
            if t.contains("SAFETY:") {
                documented = true;
                break;
            }
        }
        if !documented {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: "safety-comment",
                message: "`unsafe` without a `SAFETY:` comment on the same line or in \
                          the comment block directly above"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule 2: facade-covered crates must not name the raw sync primitives
/// outside `#[cfg(test)]` regions; only the facade file itself may.
fn check_facade_bypass(file: &str, src: &str) -> Vec<Violation> {
    if file == FACADE_FILE || !FACADE_COVERED.iter().any(|p| file.starts_with(p)) {
        return Vec::new();
    }
    let censored = censor(src);
    let mask = test_region_mask(&censored);
    let mut out = Vec::new();
    for (idx, line) in censored.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for token in BANNED_PRIMITIVES {
            if line.contains(token) {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "facade-bypass",
                    message: format!(
                        "`{token}` named outside the sync facade — go through \
                         `netdev::sync` so the loom model checks this code"
                    ),
                });
            }
        }
    }
    out
}

/// Rule 3: declared fast-path modules must not call allocation
/// constructors outside `#[cfg(test)]` regions.
fn check_fastpath_alloc(file: &str, src: &str) -> Vec<Violation> {
    if !FAST_PATH_MODULES.contains(&file) {
        return Vec::new();
    }
    let censored = censor(src);
    let mask = test_region_mask(&censored);
    let mut out = Vec::new();
    for (idx, line) in censored.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for token in BANNED_ALLOCATIONS {
            if line.contains(token) {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "fastpath-alloc",
                    message: format!(
                        "`{token}` in a declared fast-path module — allocation is \
                         banned on the per-packet path"
                    ),
                });
            }
        }
    }
    out
}

fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let mut v = check_safety_comments(rel_path, src);
    v.extend(check_facade_bypass(rel_path, src));
    v.extend(check_fastpath_alloc(rel_path, src));
    v
}

/// Collects every workspace-owned `.rs` file (crates/, xtask/, vendor/,
/// tests/, benches/), skipping build output.
fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    let mut stack: Vec<std::path::PathBuf> = ["crates", "xtask", "vendor", "tests", "benches"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                match std::fs::read_to_string(&path) {
                    Ok(src) => files.push((rel, src)),
                    Err(e) => eprintln!("xtask lint: skipping unreadable {rel}: {e}"),
                }
            }
        }
    }
    files.sort();
    files
}

pub fn run() -> ExitCode {
    // xtask lives at <root>/xtask; fall back to the cwd for direct runs.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .and_then(|dir| Path::new(&dir).parent().map(Path::to_path_buf))
        .unwrap_or_else(|| Path::new(".").to_path_buf());

    let sources = collect_sources(&root);
    if sources.is_empty() {
        eprintln!("xtask lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut violations = Vec::new();
    for (rel, src) in &sources {
        violations.extend(check_file(rel, src));
    }

    if violations.is_empty() {
        println!(
            "xtask lint: {} files clean (safety-comment, facade-bypass, fastpath-alloc)",
            sources.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    // ---- rule 1: SAFETY comments -------------------------------------

    #[test]
    fn undocumented_unsafe_block_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = check_safety_comments("crates/x/src/lib.rs", src);
        assert_eq!(rules(&v), ["safety-comment"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn undocumented_unsafe_impl_is_flagged() {
        let src = "struct X;\nunsafe impl Send for X {}\n";
        let v = check_safety_comments("crates/x/src/lib.rs", src);
        assert_eq!(rules(&v), ["safety-comment"]);
    }

    #[test]
    fn comment_block_above_documents_the_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees `p` is valid.\n    unsafe { *p }\n}\n";
        assert!(check_safety_comments("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn same_line_block_comment_documents_the_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n    /* SAFETY: p valid */ unsafe { *p }\n}\n";
        assert!(check_safety_comments("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unrelated_comment_above_does_not_count() {
        let src = "fn f(p: *const u8) -> u8 {\n    // reads the byte\n    unsafe { *p }\n}\n";
        assert_eq!(
            rules(&check_safety_comments("crates/x/src/lib.rs", src)),
            ["safety-comment"]
        );
    }

    #[test]
    fn safety_comment_separated_by_code_does_not_count() {
        let src = "// SAFETY: stale, belongs to something else\nfn g() {}\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(
            rules(&check_safety_comments("crates/x/src/lib.rs", src)),
            ["safety-comment"]
        );
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src =
            "fn f() -> &'static str {\n    // unsafe { nope }\n    \"unsafe { also nope }\"\n}\n";
        assert!(check_safety_comments("crates/x/src/lib.rs", src).is_empty());
    }

    // ---- rule 2: facade bypass ---------------------------------------

    #[test]
    fn raw_atomics_in_covered_crate_are_flagged() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        let v = check_facade_bypass("crates/netdev/src/ring.rs", src);
        assert_eq!(rules(&v), ["facade-bypass"]);
    }

    #[test]
    fn raw_unsafecell_in_covered_crate_is_flagged() {
        let src = "struct S { c: std::cell::UnsafeCell<u32> }\n";
        let v = check_facade_bypass("crates/shard/src/runtime.rs", src);
        assert_eq!(rules(&v), ["facade-bypass"]);
    }

    #[test]
    fn facade_file_itself_is_exempt() {
        let src = "pub use std::sync::atomic;\npub use std::cell::UnsafeCell;\n";
        assert!(check_facade_bypass(FACADE_FILE, src).is_empty());
    }

    #[test]
    fn uncovered_crate_is_exempt() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert!(check_facade_bypass("crates/openflow/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicUsize;\n    #[test]\n    fn t() { let _ = AtomicUsize::new(0); }\n}\n";
        assert!(check_facade_bypass("crates/core/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_region_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests {\n}\n\nuse std::sync::atomic::AtomicUsize;\n";
        let v = check_facade_bypass("crates/core/src/runtime.rs", src);
        assert_eq!(rules(&v), ["facade-bypass"]);
        assert_eq!(v[0].line, 5);
    }

    // ---- rule 3: fast-path allocations -------------------------------

    #[test]
    fn vec_new_in_fast_path_module_is_flagged() {
        let src = "pub fn hot() -> Vec<u8> {\n    Vec::new()\n}\n";
        let v = check_fastpath_alloc("crates/netdev/src/ring.rs", src);
        assert_eq!(rules(&v), ["fastpath-alloc"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn box_new_and_format_are_flagged() {
        let src =
            "pub fn hot() {\n    let _b = Box::new(1u32);\n    let _s = format!(\"{}\", 1);\n}\n";
        let v = check_fastpath_alloc("crates/netdev/src/stats.rs", src);
        assert_eq!(rules(&v), ["fastpath-alloc", "fastpath-alloc"]);
    }

    #[test]
    fn to_vec_is_flagged() {
        let src = "pub fn hot(s: &[u8]) -> Vec<u8> { s.to_vec() }\n";
        assert_eq!(
            rules(&check_fastpath_alloc("crates/ovsdp/src/minikey.rs", src)),
            ["fastpath-alloc"]
        );
    }

    #[test]
    fn port_and_classifier_modules_are_covered() {
        for file in ["crates/netdev/src/port.rs", "crates/netdev/src/classify.rs"] {
            let src = "pub fn hot() -> Vec<u8> { Vec::new() }\n";
            assert_eq!(rules(&check_fastpath_alloc(file, src)), ["fastpath-alloc"]);
        }
    }

    #[test]
    fn non_fast_path_module_is_exempt() {
        let src = "pub fn setup() -> Vec<u8> { Vec::new() }\n";
        assert!(check_fastpath_alloc("crates/ovsdp/src/megaflow.rs", src).is_empty());
    }

    #[test]
    fn fast_path_test_region_is_exempt() {
        let src = "pub fn hot() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![1u8]; }\n}\n";
        assert!(check_fastpath_alloc("crates/netdev/src/ring.rs", src).is_empty());
    }

    #[test]
    fn alloc_token_in_comment_or_string_is_ignored() {
        let src = "// avoid Vec::new here\npub fn hot() -> &'static str { \"Box::new\" }\n";
        assert!(check_fastpath_alloc("crates/netdev/src/ring.rs", src).is_empty());
    }

    // ---- plumbing ----------------------------------------------------

    #[test]
    fn censor_preserves_line_count() {
        let src = "fn a() {}\n/* multi\nline */\nfn b() { let s = \"x\ny\"; let _ = s; }\n";
        assert_eq!(censor(src).lines().count(), src.lines().count());
    }

    #[test]
    fn check_file_aggregates_rules() {
        let src = "use std::sync::atomic::AtomicUsize;\nfn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = check_file("crates/netdev/src/ring.rs", src);
        let mut r = rules(&v);
        r.sort_unstable();
        assert_eq!(r, ["facade-bypass", "safety-comment"]);
    }
}
