//! Repo automation entry point. `cargo xtask lint` runs the source-analysis
//! lint pass (see the `lint` module).

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint    source-analysis checks (SAFETY comments, sync facade, fast-path allocations)");
            ExitCode::FAILURE
        }
    }
}
