//! Exhaustive model checking of the punt-admission token buckets.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p eswitch --test
//! loom_admission` (CI's `model` job). The bucket state is one packed
//! `AtomicU64` updated by CAS from every worker shard concurrently; these
//! models explore all interleavings of two racing acquirers and prove the
//! invariants the layered admission pipeline rests on: a token is never
//! granted twice, a refill is never applied twice, and every attempt is
//! decided exactly once (admit XOR shed).

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use eswitch::reactive::{PuntAdmission, PuntAdmit, PuntGate, PuntPolicy, RateLimit, TokenBucket};

/// Nanoseconds for one refill tick of the bucket clock (1 ms).
const TICK: u64 = 1_000_000;

/// Two threads race for the single token in the bucket: exactly one wins.
/// A lost CAS that still granted (or a double-spend of the same packed
/// state) would make both succeed; a wrongly-failed retry loop would make
/// both lose.
#[test]
fn token_bucket_single_token_granted_exactly_once() {
    loom::model(|| {
        let bucket = Arc::new(TokenBucket::new(RateLimit {
            per_sec: 1,
            burst: 1,
        }));
        let peer = Arc::clone(&bucket);
        let t = thread::spawn(move || peer.try_acquire(0));
        let mine = bucket.try_acquire(0);
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "one token must be granted exactly once (mine={mine}, theirs={theirs})"
        );
        assert!(!bucket.try_acquire(0), "the bucket must be empty after");
    });
}

/// Refill is part of the same CAS as the spend: when two threads observe
/// the same elapsed tick, the accrued tokens must be credited once, not
/// once per observer. One tick at 1000/s accrues exactly one token — the
/// two racing acquirers may take at most that one.
#[test]
fn token_bucket_refill_credited_exactly_once() {
    loom::model(|| {
        let bucket = Arc::new(TokenBucket::new(RateLimit {
            per_sec: 1_000,
            burst: 1,
        }));
        assert!(bucket.try_acquire(0), "burst token");
        assert!(!bucket.try_acquire(0), "drained");
        let peer = Arc::clone(&bucket);
        let t = thread::spawn(move || peer.try_acquire(TICK));
        let mine = bucket.try_acquire(TICK);
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "one tick refills one token, grantable once (mine={mine}, theirs={theirs})"
        );
        assert!(!bucket.try_acquire(TICK), "refill must not be re-credited");
    });
}

/// The full layer-2/3 pipeline under a race: with a one-token aggregate
/// budget, two concurrent punts from distinct sources are decided exactly
/// once each — one `Admitted`, one `ShedAggregate`, never two of either.
#[test]
fn admission_admits_or_sheds_exactly_once() {
    loom::model(|| {
        let admission = Arc::new(PuntAdmission::new(&PuntPolicy {
            per_source: None,
            source_buckets: 16,
            aggregate: Some(RateLimit {
                per_sec: 1,
                burst: 1,
            }),
        }));
        let peer = Arc::clone(&admission);
        let t = thread::spawn(move || peer.admit(1, 0));
        let mine = admission.admit(2, 0);
        let theirs = t.join().unwrap();
        let admitted = [mine, theirs]
            .iter()
            .filter(|v| **v == PuntAdmit::Admitted)
            .count();
        let shed = [mine, theirs]
            .iter()
            .filter(|v| **v == PuntAdmit::ShedAggregate)
            .count();
        assert_eq!((admitted, shed), (1, 1), "mine={mine:?}, theirs={theirs:?}");
    });
}

/// Per-source isolation under a race: two sources landing on different
/// buckets never contend for each other's tokens — both are admitted even
/// though each bucket holds a single token. (Source 0 reduces to bucket 0,
/// `u64::MAX` to the top bucket, under the multiply-shift reduction.)
#[test]
fn admission_source_buckets_are_independent() {
    loom::model(|| {
        let admission = Arc::new(PuntAdmission::new(&PuntPolicy {
            per_source: Some(RateLimit {
                per_sec: 1,
                burst: 1,
            }),
            source_buckets: 16,
            aggregate: None,
        }));
        let peer = Arc::clone(&admission);
        let t = thread::spawn(move || peer.admit(u64::MAX, 0));
        let mine = admission.admit(0, 0);
        let theirs = t.join().unwrap();
        assert_eq!(mine, PuntAdmit::Admitted);
        assert_eq!(theirs, PuntAdmit::Admitted);
        // Each source drained its own bucket.
        assert_eq!(admission.admit(0, 0), PuntAdmit::ShedSource);
        assert_eq!(admission.admit(u64::MAX, 0), PuntAdmit::ShedSource);
    });
}

/// Layer 1 under a race: two punts of the *same flow* through the per-flow
/// gate — exactly one packet-in goes up, and after `complete` the flow
/// re-arms.
#[test]
fn punt_gate_admits_one_in_flight_per_flow() {
    loom::model(|| {
        let gate = Arc::new(PuntGate::new(8));
        let peer = Arc::clone(&gate);
        let t = thread::spawn(move || peer.admit(7));
        let mine = gate.admit(7);
        let theirs = t.join().unwrap();
        assert!(mine ^ theirs, "one in-flight punt per flow");
        gate.complete(7);
        assert!(gate.admit(7), "complete must re-arm the flow");
    });
}
