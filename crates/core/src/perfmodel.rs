//! The analytic performance model (§4.4, Fig. 20).
//!
//! "A compiled datapath is just a handful of templates linked into a binary
//! and so we can define elementary performance 'atoms' to characterize each
//! template and track down the template generation process to combine these
//! atoms into composite datapath models."
//!
//! Costs are split into a *fixed* component (packet I/O, parsing, action
//! execution, the arithmetic of each table template) and a *variable*
//! component (the memory accesses each template makes, whose latency depends
//! on which CPU cache level the working set fits into). Evaluating the model
//! under an optimistic cache assumption gives the paper's upper packet-rate
//! bound, under a pessimistic assumption the lower bound (the `model-ub` /
//! `model-lb` curves of Figs. 13 and 16).

use serde::{Deserialize, Serialize};

use crate::analysis::TemplateKind;
use crate::compile::CompiledDatapath;

/// Cycle latencies of the three cache levels (Table 1's Sandy Bridge values
/// by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelCosts {
    /// L1 load-to-use latency in cycles.
    pub l1: f64,
    /// L2 latency in cycles.
    pub l2: f64,
    /// L3 (LLC) latency in cycles.
    pub l3: f64,
    /// CPU clock in Hz, used to convert cycles/packet into packets/second.
    pub clock_hz: f64,
}

impl Default for CacheLevelCosts {
    fn default() -> Self {
        // Table 1: L1 = 4, L2 = 12, L3 = 29 cycles; 2.0 GHz Xeon E5-2620.
        CacheLevelCosts {
            l1: 4.0,
            l2: 12.0,
            l3: 29.0,
            clock_hz: 2.0e9,
        }
    }
}

/// Which cache level the model assumes table data is served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAssumption {
    /// Everything hits the L1 data cache (optimistic; upper bound).
    AllL1,
    /// Table accesses come from L2 (the "~1K active flows" assumption).
    AllL2,
    /// Table accesses come from the LLC (pessimistic; lower bound).
    AllL3,
}

/// Per-packet fixed-cost atoms (cycles). Values follow Fig. 20 and the
/// accompanying static-code analysis in §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostAtoms {
    /// DPDK packet receive I/O.
    pub pkt_in: f64,
    /// DPDK packet transmit I/O.
    pub pkt_out: f64,
    /// Parser template (per layer parsed; Fig. 20 charges 28 for the combined
    /// parser).
    pub parser: f64,
    /// Fixed arithmetic of one hash-template lookup (key construction + hash),
    /// excluding the memory access.
    pub hash_fixed: f64,
    /// Fixed arithmetic of one LPM lookup, excluding its two memory accesses.
    pub lpm_fixed: f64,
    /// Memory accesses per LPM lookup (DIR-24-8 worst case: tbl24 + tbl8).
    pub lpm_accesses: f64,
    /// Cost of evaluating one direct-code entry (compare + branch with the
    /// key inlined in the instruction stream).
    pub direct_per_entry: f64,
    /// Cost of evaluating one linked-list entry (shared matcher call).
    pub linked_per_entry: f64,
    /// Action-set execution.
    pub actions: f64,
}

impl Default for CostAtoms {
    fn default() -> Self {
        CostAtoms {
            pkt_in: 40.0,
            pkt_out: 40.0,
            parser: 28.0,
            hash_fixed: 8.0,
            lpm_fixed: 13.0,
            lpm_accesses: 2.0,
            direct_per_entry: 2.5,
            linked_per_entry: 4.0,
            actions: 25.0,
        }
    }
}

/// One line of the per-stage cost breakdown (the rows of Fig. 20).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Human-readable stage name.
    pub stage: String,
    /// Fixed cycles charged to the stage.
    pub fixed_cycles: f64,
    /// Number of cache accesses whose level depends on the working set.
    pub memory_accesses: f64,
}

/// The composite estimate for a datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceEstimate {
    /// Per-stage breakdown.
    pub stages: Vec<StageCost>,
    /// Total fixed cycles per packet.
    pub fixed_cycles: f64,
    /// Total cache accesses per packet.
    pub memory_accesses: f64,
}

impl PerformanceEstimate {
    /// Cycles per packet under a cache assumption.
    pub fn cycles_per_packet(&self, costs: &CacheLevelCosts, assumption: CacheAssumption) -> f64 {
        let latency = match assumption {
            CacheAssumption::AllL1 => costs.l1,
            CacheAssumption::AllL2 => costs.l2,
            CacheAssumption::AllL3 => costs.l3,
        };
        self.fixed_cycles + self.memory_accesses * latency
    }

    /// Packets per second under a cache assumption.
    pub fn packet_rate(&self, costs: &CacheLevelCosts, assumption: CacheAssumption) -> f64 {
        costs.clock_hz / self.cycles_per_packet(costs, assumption)
    }

    /// The paper's (upper, lower) packet-rate bounds: all-L1 optimistic vs
    /// all-L3 pessimistic.
    pub fn rate_bounds(&self, costs: &CacheLevelCosts) -> (f64, f64) {
        (
            self.packet_rate(costs, CacheAssumption::AllL1),
            self.packet_rate(costs, CacheAssumption::AllL3),
        )
    }

    /// Renders the Fig. 20-style table.
    pub fn render_table(&self) -> String {
        let mut out = String::from("pipeline stage                 | cycles\n");
        out.push_str("-------------------------------+---------------\n");
        for stage in &self.stages {
            let cycles = if stage.memory_accesses > 0.0 {
                format!("{} + {}*Lx", stage.fixed_cycles, stage.memory_accesses)
            } else {
                format!("{}", stage.fixed_cycles)
            };
            out.push_str(&format!("{:<31}| {}\n", stage.stage, cycles));
        }
        out.push_str(&format!(
            "{:<31}| {} + {}*Lx\n",
            "TOTAL", self.fixed_cycles, self.memory_accesses
        ));
        out
    }
}

/// The performance model: cost atoms + cache parameters.
#[derive(Debug, Clone, Default)]
pub struct PerformanceModel {
    /// Per-template cost atoms.
    pub atoms: CostAtoms,
    /// Cache level latencies and clock.
    pub cache: CacheLevelCosts,
}

impl PerformanceModel {
    /// Creates the model with the paper's default atoms and Table 1's cache
    /// parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates the per-packet cost of a compiled datapath along the given
    /// table walk (sequence of table ids a typical packet traverses). Tables
    /// outside the walk contribute nothing — exactly how the paper models the
    /// gateway's user-to-network direction.
    pub fn estimate_walk(&self, datapath: &CompiledDatapath, walk: &[u32]) -> PerformanceEstimate {
        let mut stages = vec![
            StageCost {
                stage: "PKT_IN (rx burst I/O)".to_string(),
                fixed_cycles: self.atoms.pkt_in,
                memory_accesses: 0.0,
            },
            StageCost {
                stage: "parser template".to_string(),
                fixed_cycles: self.atoms.parser,
                memory_accesses: 0.0,
            },
        ];
        for id in walk {
            let Some(slot) = datapath.slot(*id) else {
                continue;
            };
            let table = slot.table.read();
            let (fixed, accesses, label) = match table.kind() {
                TemplateKind::DirectCode => (
                    self.atoms.direct_per_entry * table.len().max(1) as f64,
                    0.0,
                    format!("direct code ({} entries)", table.len()),
                ),
                TemplateKind::CompoundHash => (
                    self.atoms.hash_fixed,
                    1.0,
                    format!("hash template ({} entries)", table.len()),
                ),
                TemplateKind::Lpm => (
                    self.atoms.lpm_fixed,
                    self.atoms.lpm_accesses,
                    format!("LPM template ({} prefixes)", table.len()),
                ),
                TemplateKind::LinkedList => (
                    self.atoms.linked_per_entry * table.len().max(1) as f64,
                    table.len().max(1) as f64,
                    format!("linked list ({} entries)", table.len()),
                ),
            };
            stages.push(StageCost {
                stage: format!("table {id}: {label}"),
                fixed_cycles: fixed,
                memory_accesses: accesses,
            });
        }
        stages.push(StageCost {
            stage: "action templates".to_string(),
            fixed_cycles: self.atoms.actions,
            memory_accesses: 0.0,
        });
        stages.push(StageCost {
            stage: "PKT_OUT (tx burst I/O)".to_string(),
            fixed_cycles: self.atoms.pkt_out,
            memory_accesses: 0.0,
        });

        let fixed_cycles = stages.iter().map(|s| s.fixed_cycles).sum();
        let memory_accesses = stages.iter().map(|s| s.memory_accesses).sum();
        PerformanceEstimate {
            stages,
            fixed_cycles,
            memory_accesses,
        }
    }

    /// Estimates the cost over all tables in pipeline order — adequate for
    /// run-to-completion pipelines where every packet visits every stage.
    pub fn estimate(&self, datapath: &CompiledDatapath) -> PerformanceEstimate {
        let walk: Vec<u32> = datapath.slots().iter().map(|s| s.id).collect();
        self.estimate_walk(datapath, &walk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_default;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry, Pipeline};

    fn l2_pipeline(n: u64) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        for i in 0..n {
            p.table_mut(0).unwrap().insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(i)),
                10,
                terminal_actions(vec![Action::Output(1)]),
            ));
        }
        p
    }

    #[test]
    fn gateway_style_total_matches_fig20_shape() {
        // Two hash stages + one LPM stage: the paper's user-to-network walk.
        // Fixed = 40+28+8+8+13+25+40 = 162 (the paper rounds to 166 with its
        // combined parser), memory accesses = 1+1+2 = 4 ≈ the paper's 3·Lx
        // plus the L3-resident packet load it folds into PKT_IN.
        let mut p = Pipeline::with_tables(3);
        for t in 0..2u32 {
            for i in 0..16u64 {
                p.table_mut(t).unwrap().insert(FlowEntry::new(
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(i)),
                    10,
                    vec![openflow::Instruction::GotoTable(t + 1)],
                ));
            }
        }
        for i in 0..32u32 {
            // Mixed prefix lengths keep this a genuine LPM table (uniform
            // masks would satisfy the stricter hash prerequisite instead).
            let len = if i % 2 == 0 { 16 } else { 24 };
            p.table_mut(2).unwrap().insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, i as u8, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(1)]),
            ));
        }
        let dp = compile_default(&p).unwrap();
        let model = PerformanceModel::new();
        let estimate = model.estimate(&dp);
        assert!(
            (estimate.fixed_cycles - 162.0).abs() < 1e-9,
            "{}",
            estimate.fixed_cycles
        );
        assert!((estimate.memory_accesses - 4.0).abs() < 1e-9);

        // Bounds ordering: L1 assumption gives the highest rate.
        let costs = CacheLevelCosts::default();
        let (ub, lb) = estimate.rate_bounds(&costs);
        assert!(ub > lb);
        let mid = estimate.packet_rate(&costs, CacheAssumption::AllL2);
        assert!(lb < mid && mid < ub);

        // With Table 1 latencies the estimates land in the paper's range
        // (roughly 8–12 Mpps for the gateway walk).
        assert!(ub > 9.0e6 && ub < 13.0e6, "ub = {ub}");
        assert!(lb > 6.0e6 && lb < 9.0e6, "lb = {lb}");

        let rendered = estimate.render_table();
        assert!(rendered.contains("LPM template"));
        assert!(rendered.contains("TOTAL"));
    }

    #[test]
    fn direct_code_cost_scales_with_entries_and_hash_does_not() {
        let model = PerformanceModel::new();
        let small = compile_default(&l2_pipeline(2)).unwrap();
        let larger = compile_default(&l2_pipeline(4)).unwrap();
        let hash = compile_default(&l2_pipeline(100)).unwrap();

        let c_small = model
            .estimate(&small)
            .cycles_per_packet(&model.cache, CacheAssumption::AllL1);
        let c_larger = model
            .estimate(&larger)
            .cycles_per_packet(&model.cache, CacheAssumption::AllL1);
        let c_hash_100 = model
            .estimate(&hash)
            .cycles_per_packet(&model.cache, CacheAssumption::AllL1);
        let c_hash_1000 = model
            .estimate(&compile_default(&l2_pipeline(1000)).unwrap())
            .cycles_per_packet(&model.cache, CacheAssumption::AllL1);

        assert!(
            c_small < c_larger,
            "direct code cost must grow with entries"
        );
        assert!(
            (c_hash_100 - c_hash_1000).abs() < 1e-9,
            "hash cost must be size-independent"
        );
        // The crossover the paper calibrates: at 4 entries direct code is
        // still at least competitive with the hash template.
        assert!(c_larger <= c_hash_100 + model.cache.l1);
    }

    #[test]
    fn walk_restriction_excludes_unvisited_tables() {
        let mut p = l2_pipeline(100);
        // A second table that the measured direction never visits.
        p.add_table(openflow::FlowTable::new(7));
        let dp = compile_default(&p).unwrap();
        let model = PerformanceModel::new();
        let full = model.estimate(&dp);
        let restricted = model.estimate_walk(&dp, &[0]);
        assert!(restricted.fixed_cycles <= full.fixed_cycles);
        assert_eq!(restricted.stages.len(), 5); // rx, parser, table 0, actions, tx
    }
}
