//! Packet parser templates.
//!
//! "ESWITCH separates header parsing at layer boundaries: it includes a
//! separate L2, L3, and L4 parser. The motivation is to save on parsing for
//! layers that do not participate in flow formation." The compiler inspects
//! every field matched anywhere in the pipeline and emits the shallowest
//! parser that covers them all.

use openflow::field::{Field, FieldLayer};
use pkt::parser::{parse, ParseDepth, ParsedHeaders};

/// A specialised parser: parse exactly as deep as the pipeline needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserTemplate {
    depth: ParseDepth,
}

impl ParserTemplate {
    /// Builds the parser template covering every field in `fields`.
    /// An empty field set (a pipeline that matches on nothing but metadata)
    /// still parses L2 so that the Ethernet header is available to actions.
    pub fn for_fields(fields: impl IntoIterator<Item = Field>) -> Self {
        let mut depth = ParseDepth::L2;
        for field in fields {
            let required = match field.layer() {
                FieldLayer::Meta => ParseDepth::L2,
                FieldLayer::L2 => ParseDepth::L2,
                FieldLayer::L3 => ParseDepth::L3,
                FieldLayer::L4 => ParseDepth::L4,
            };
            if required > depth {
                depth = required;
            }
        }
        ParserTemplate { depth }
    }

    /// A parser with an explicit depth (used by tests and by the prototype's
    /// default combined L2–L4 parser mode).
    pub fn with_depth(depth: ParseDepth) -> Self {
        ParserTemplate { depth }
    }

    /// The parse depth this template reaches.
    pub fn depth(&self) -> ParseDepth {
        self.depth
    }

    /// Runs the parser over a frame.
    #[inline]
    pub fn parse(&self, frame: &[u8]) -> ParsedHeaders {
        parse(frame, self.depth)
    }

    /// Renders the pseudo-assembly listing of the composed parser, in the
    /// style of the paper's `PROTOCOL_PARSER` fragment.
    pub fn disassemble(&self) -> String {
        let mut out = String::from("PROTOCOL_PARSER: <set protocol bitmask in r15>\n");
        out.push_str("L2_PARSER:  mov r12, <pointer to L2 header>\n");
        if self.depth >= ParseDepth::L3 {
            out.push_str("L3_PARSER:  mov r13, <pointer to L3 header>\n");
        }
        if self.depth >= ParseDepth::L4 {
            out.push_str("L4_PARSER:  mov r14, <pointer to L4 header>\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn depth_follows_deepest_field() {
        assert_eq!(
            ParserTemplate::for_fields([Field::EthDst, Field::VlanVid]).depth(),
            ParseDepth::L2
        );
        assert_eq!(
            ParserTemplate::for_fields([Field::EthDst, Field::Ipv4Dst]).depth(),
            ParseDepth::L3
        );
        assert_eq!(
            ParserTemplate::for_fields([Field::Ipv4Dst, Field::TcpDst]).depth(),
            ParseDepth::L4
        );
        assert_eq!(ParserTemplate::for_fields([]).depth(), ParseDepth::L2);
        assert_eq!(
            ParserTemplate::for_fields([Field::InPort]).depth(),
            ParseDepth::L2
        );
    }

    #[test]
    fn l2_parser_skips_upper_layers() {
        let p = ParserTemplate::for_fields([Field::EthDst]);
        let pkt = PacketBuilder::tcp().tcp_dst(80).build();
        let headers = p.parse(pkt.data());
        assert!(!headers.has_tcp(), "L2 parser must not touch L4");
        let p4 = ParserTemplate::for_fields([Field::TcpDst]);
        assert!(p4.parse(pkt.data()).has_tcp());
    }

    #[test]
    fn disassembly_lists_composed_layers() {
        let l2 = ParserTemplate::with_depth(ParseDepth::L2).disassemble();
        assert!(l2.contains("L2_PARSER"));
        assert!(!l2.contains("L4_PARSER"));
        let l4 = ParserTemplate::with_depth(ParseDepth::L4).disassemble();
        assert!(l4.contains("L3_PARSER") && l4.contains("L4_PARSER"));
    }
}
