//! The ESWITCH template library (§3.1 of the paper).
//!
//! A *template* is a unit of common OpenFlow packet-processing behaviour that
//! admits a simple, composable, specialised implementation. The paper ships
//! them as pre-compiled object-code fragments into which flow keys are
//! patched at specialization time; here each template is a small Rust
//! structure carrying its patched keys, with a monomorphic `lookup`/`execute`
//! path and a [`disassemble`](table::CompiledTable::disassemble) method that
//! renders the pseudo-assembly listing the paper shows.
//!
//! Four template families exist:
//!
//! * [`parser`] — L2/L3/L4 packet parser templates (incremental: the L4
//!   parser composes the L3 parser composes the L2 parser),
//! * [`matcher`] — one per OpenFlow match field: load the field from the
//!   frame, XOR with the patched key, mask, conditional jump,
//! * [`table`] — the four flow-table templates of Fig. 4: direct code,
//!   compound hash, LPM and linked list,
//! * [`action`] — one per action type; identical action sets are shared
//!   across flows.

pub mod action;
pub mod matcher;
pub mod parser;
pub mod table;

pub use action::{ActionStore, CompiledAction, CompiledActionSet};
pub use matcher::{load_field, required_protocols, CompiledMatcher, Regs};
pub use parser::ParserTemplate;
pub use table::{
    CompiledEntry, CompiledInstrs, CompiledTable, CompoundHashTable, DirectCodeTable,
    LinkedListTable, LpmTable,
};
