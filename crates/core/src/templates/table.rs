//! Flow-table templates: direct code, compound hash, LPM and linked list
//! (Fig. 4 of the paper).
//!
//! Each template holds fully specialised state — the flow keys are "patched
//! into the code" — and exposes a single `lookup` that returns the matched
//! entry's compiled instruction block. Template prerequisites are *checked*
//! by [`crate::analysis`]; the constructors here assume their input satisfies
//! them (they return an error otherwise so the compiler can fall back).

use std::sync::Arc;

use netdev::{Lpm, PerfectHash};
use openflow::field::{Field, FieldValue};
use openflow::pipeline::TableId;
use pkt::ipv4::Ipv4Addr4;
use pkt::parser::{ParsedHeaders, ProtoMask};

use super::action::CompiledActionSet;
use super::matcher::{load_field, required_protocols, CompiledMatcher, Regs};

/// The compiled form of a matched entry's instructions.
///
/// Action sets are held as shared [`Arc`]s produced by the compiler's
/// interning pass, so identical action sets are physically shared across
/// flows exactly as §3.1 prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledInstrs {
    /// Actions applied immediately on match (apply-actions).
    pub apply: Option<Arc<CompiledActionSet>>,
    /// Action set written for execution at pipeline exit (write-actions).
    pub write_set: Option<Arc<CompiledActionSet>>,
    /// True if the entry clears the accumulated action set first.
    pub clear_set: bool,
    /// Metadata register write: `(value, mask)`.
    pub metadata: Option<(u64, u64)>,
    /// Continue processing at this table (linked through the trampoline).
    pub goto: Option<TableId>,
    /// Punt to the controller on match (used for table-miss entries of
    /// reactive pipelines).
    pub to_controller: bool,
}

/// One compiled flow entry of the direct-code / linked-list templates.
#[derive(Debug, Clone)]
pub struct CompiledEntry {
    /// Protocol bits that must be present (the prologue check).
    pub required: ProtoMask,
    /// The specialised matchers, one per matched field.
    pub matchers: Vec<CompiledMatcher>,
    /// What to do on match.
    pub instrs: Arc<CompiledInstrs>,
}

impl CompiledEntry {
    /// Builds an entry from matchers + instructions, deriving the prologue
    /// protocol requirement from the matched fields.
    pub fn new(matchers: Vec<CompiledMatcher>, instrs: Arc<CompiledInstrs>) -> Self {
        let mut required = ProtoMask::NONE;
        for m in &matchers {
            required = required.or(required_protocols(m.field));
        }
        CompiledEntry {
            required,
            matchers,
            instrs,
        }
    }

    /// Runs the prologue + matchers against a packet.
    #[inline]
    pub fn matches(&self, frame: &[u8], headers: &ParsedHeaders, regs: &Regs) -> bool {
        if !headers.mask.contains(self.required) {
            return false;
        }
        self.matchers
            .iter()
            .all(|m| m.matches(frame, headers, regs))
    }
}

/// Errors returned by template constructors when their prerequisite is not
/// met; the compiler reacts by falling back to the next template (Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// The table does not satisfy the template's prerequisite.
    PrerequisiteViolated(&'static str),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::PrerequisiteViolated(what) => {
                write!(f, "template prerequisite violated: {what}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// Direct code template: the classification rules as straight-line code.
///
/// Prerequisite: the table has at most `direct_code_limit` entries (the
/// constant calibrated by the Fig. 9 measurement). Matching is a linear walk
/// over fully specialised entries — for a handful of entries this beats any
/// data structure because keys live in the instruction stream.
#[derive(Debug, Clone, Default)]
pub struct DirectCodeTable {
    entries: Vec<CompiledEntry>,
}

impl DirectCodeTable {
    /// Builds the template from compiled entries (already in priority order).
    pub fn new(entries: Vec<CompiledEntry>) -> Self {
        DirectCodeTable { entries }
    }

    /// The compiled entries in match order.
    pub fn entries(&self) -> &[CompiledEntry] {
        &self.entries
    }

    /// Looks up the first matching entry.
    #[inline]
    pub fn lookup(
        &self,
        frame: &[u8],
        headers: &ParsedHeaders,
        regs: &Regs,
    ) -> Option<&Arc<CompiledInstrs>> {
        self.entries
            .iter()
            .find(|e| e.matches(frame, headers, regs))
            .map(|e| &e.instrs)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the template holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Compound hash template: exact match over a fixed field set via a
/// collision-free hash.
///
/// Prerequisite: every (non-catch-all) entry matches the same fields with the
/// same masks, and the concatenated key fits in 128 bits.
#[derive(Debug, Clone)]
pub struct CompoundHashTable {
    /// The fields participating in the key, with their shared (global) masks.
    fields: Vec<(Field, FieldValue)>,
    /// Protocol bits required before key construction.
    required: ProtoMask,
    hash: PerfectHash<Arc<CompiledInstrs>>,
    /// The optional lowest-priority catch-all entry.
    catch_all: Option<Arc<CompiledInstrs>>,
}

impl CompoundHashTable {
    /// Builds the template.
    ///
    /// `keys` are (per-field values, instruction block) pairs; values must be
    /// listed in the same order as `fields`.
    pub fn new(
        fields: Vec<(Field, FieldValue)>,
        keys: Vec<(Vec<FieldValue>, Arc<CompiledInstrs>)>,
        catch_all: Option<Arc<CompiledInstrs>>,
    ) -> Result<Self, TemplateError> {
        let total_bits: u32 = fields.iter().map(|(f, _)| f.width_bits()).sum();
        if total_bits > 128 {
            return Err(TemplateError::PrerequisiteViolated(
                "compound key exceeds 128 bits",
            ));
        }
        if fields.is_empty() {
            return Err(TemplateError::PrerequisiteViolated(
                "compound hash needs at least one field",
            ));
        }
        let mut required = ProtoMask::NONE;
        for (f, _) in &fields {
            required = required.or(required_protocols(*f));
        }
        let mut packed = Vec::with_capacity(keys.len());
        for (values, instrs) in keys {
            if values.len() != fields.len() {
                return Err(TemplateError::PrerequisiteViolated(
                    "key arity differs from field list",
                ));
            }
            packed.push((Self::pack(&fields, &values), instrs));
        }
        Ok(CompoundHashTable {
            fields,
            required,
            hash: PerfectHash::build(packed),
            catch_all,
        })
    }

    /// Packs per-field values into the compound key by concatenating the
    /// masked values ("the code runs together relevant header fields into a
    /// single key, applies the global mask").
    fn pack(fields: &[(Field, FieldValue)], values: &[FieldValue]) -> u128 {
        let mut key: u128 = 0;
        for ((field, mask), value) in fields.iter().zip(values) {
            key = (key << field.width_bits()) | (value & mask);
        }
        key
    }

    /// Builds the compound key for a packet, or `None` when a required layer
    /// is missing.
    #[inline]
    fn packet_key(&self, frame: &[u8], headers: &ParsedHeaders, regs: &Regs) -> Option<u128> {
        if !headers.mask.contains(self.required) {
            return None;
        }
        let mut key: u128 = 0;
        for (field, mask) in &self.fields {
            let value = load_field(*field, frame, headers, regs)?;
            key = (key << field.width_bits()) | (value & mask);
        }
        Some(key)
    }

    /// Looks up a packet: one hash probe, then the catch-all.
    #[inline]
    pub fn lookup(
        &self,
        frame: &[u8],
        headers: &ParsedHeaders,
        regs: &Regs,
    ) -> Option<&Arc<CompiledInstrs>> {
        if let Some(key) = self.packet_key(frame, headers, regs) {
            if let Some(instrs) = self.hash.get(key) {
                return Some(instrs);
            }
        }
        self.catch_all.as_ref()
    }

    /// Inserts (or replaces) one entry incrementally. `values` must follow
    /// the template's field order.
    pub fn insert(&mut self, values: &[FieldValue], instrs: Arc<CompiledInstrs>) {
        let key = Self::pack(&self.fields, values);
        self.hash.insert(key, instrs);
    }

    /// Removes one entry incrementally. Returns true if it existed.
    pub fn remove(&mut self, values: &[FieldValue]) -> bool {
        let key = Self::pack(&self.fields, values);
        self.hash.remove(key).is_some()
    }

    /// True when an entry with these key values is installed. Used by the
    /// update planner to predict whether a delete is absorbable in place.
    pub fn contains(&self, values: &[FieldValue]) -> bool {
        let key = Self::pack(&self.fields, values);
        self.hash.get(key).is_some()
    }

    /// Rebuilds the underlying collision-free hash (the paper rebuilds the
    /// hash template periodically to minimise collisions).
    pub fn rebuild(&mut self) {
        self.hash.rebuild();
    }

    /// The fields and global masks of the compound key.
    pub fn fields(&self) -> &[(Field, FieldValue)] {
        &self.fields
    }

    /// Number of hashed entries (excluding the catch-all).
    pub fn len(&self) -> usize {
        self.hash.len()
    }

    /// True when the template holds no hashed entries.
    pub fn is_empty(&self) -> bool {
        self.hash.is_empty()
    }

    /// Approximate resident bytes, for the working-set/cache model.
    pub fn memory_footprint(&self) -> usize {
        self.hash.memory_footprint()
    }
}

/// LPM template: longest prefix match on a single IPv4 field, backed by the
/// DIR-24-8 structure (`rte_lpm` in the paper's prototype).
#[derive(Debug)]
pub struct LpmTable {
    field: Field,
    required: ProtoMask,
    lpm: Lpm,
    /// Instruction blocks indexed by the LPM next-hop value.
    targets: Vec<Arc<CompiledInstrs>>,
    /// Entry used when no prefix matches (a /0 rule or table miss fallback).
    catch_all: Option<Arc<CompiledInstrs>>,
}

impl LpmTable {
    /// Builds the template from `(prefix, prefix_len, instrs)` rules.
    pub fn new(
        field: Field,
        rules: Vec<(u32, u8, Arc<CompiledInstrs>)>,
        catch_all: Option<Arc<CompiledInstrs>>,
    ) -> Result<Self, TemplateError> {
        if !matches!(
            field,
            Field::Ipv4Dst | Field::Ipv4Src | Field::ArpSpa | Field::ArpTpa
        ) {
            return Err(TemplateError::PrerequisiteViolated(
                "LPM template requires an IPv4 address field",
            ));
        }
        let mut table = LpmTable {
            field,
            required: required_protocols(field),
            lpm: Lpm::new(),
            targets: Vec::new(),
            catch_all,
        };
        for (prefix, len, instrs) in rules {
            table
                .insert(prefix, len, instrs)
                .map_err(|_| TemplateError::PrerequisiteViolated("invalid prefix rule"))?;
        }
        Ok(table)
    }

    /// Adds one prefix rule incrementally.
    pub fn insert(
        &mut self,
        prefix: u32,
        len: u8,
        instrs: Arc<CompiledInstrs>,
    ) -> Result<(), netdev::LpmError> {
        let hop = match self
            .targets
            .iter()
            .position(|t| Arc::ptr_eq(t, &instrs) || **t == *instrs)
        {
            Some(i) => i as u16,
            None => {
                self.targets.push(Arc::clone(&instrs));
                (self.targets.len() - 1) as u16
            }
        };
        self.lpm.add(Ipv4Addr4::from_u32(prefix), len, hop)
    }

    /// Removes one prefix rule incrementally.
    pub fn remove(&mut self, prefix: u32, len: u8) -> Result<(), netdev::LpmError> {
        self.lpm.delete(Ipv4Addr4::from_u32(prefix), len)
    }

    /// True when exactly this prefix rule is installed. Used by the update
    /// planner to predict whether a delete is absorbable in place.
    pub fn contains(&self, prefix: u32, len: u8) -> bool {
        self.lpm.has_rule(Ipv4Addr4::from_u32(prefix), len)
    }

    /// Looks up a packet: load the address, one DIR-24-8 lookup, then the
    /// catch-all.
    #[inline]
    pub fn lookup(
        &self,
        frame: &[u8],
        headers: &ParsedHeaders,
        regs: &Regs,
    ) -> Option<&Arc<CompiledInstrs>> {
        if headers.mask.contains(self.required) {
            if let Some(addr) = load_field(self.field, frame, headers, regs) {
                if let Some(hop) = self.lpm.lookup(Ipv4Addr4::from_u32(addr as u32)) {
                    return self.targets.get(usize::from(hop));
                }
            }
        }
        self.catch_all.as_ref()
    }

    /// The matched field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.lpm.len()
    }

    /// True when no prefixes are installed.
    pub fn is_empty(&self) -> bool {
        self.lpm.is_empty()
    }

    /// Approximate resident bytes, for the working-set/cache model.
    pub fn memory_footprint(&self) -> usize {
        self.lpm.memory_footprint()
    }

    /// Memory accesses the LPM structure needs for `addr` (1 or 2); feeds the
    /// Fig. 20 cost model.
    pub fn lookup_depth(&self, addr: u32) -> u8 {
        self.lpm.lookup_depth(Ipv4Addr4::from_u32(addr))
    }
}

/// Linked-list template: tuple space search, the last-resort fallback.
///
/// Entries are grouped by the combination of (field, mask) they match on; a
/// shared matcher function per group is called with subsequent entry keys.
/// Priority order across groups is preserved by walking entries in global
/// priority order.
#[derive(Debug, Clone, Default)]
pub struct LinkedListTable {
    entries: Vec<CompiledEntry>,
    /// Number of distinct field/mask combinations (tuples) — reported for
    /// statistics and the cost model.
    tuple_count: usize,
}

impl LinkedListTable {
    /// Builds the template from compiled entries in priority order.
    pub fn new(entries: Vec<CompiledEntry>) -> Self {
        let mut tuples: Vec<Vec<(Field, FieldValue)>> = Vec::new();
        for e in &entries {
            let shape: Vec<(Field, FieldValue)> =
                e.matchers.iter().map(|m| (m.field, m.mask)).collect();
            if !tuples.contains(&shape) {
                tuples.push(shape);
            }
        }
        LinkedListTable {
            tuple_count: tuples.len(),
            entries,
        }
    }

    /// Looks up the first matching entry.
    #[inline]
    pub fn lookup(
        &self,
        frame: &[u8],
        headers: &ParsedHeaders,
        regs: &Regs,
    ) -> Option<&Arc<CompiledInstrs>> {
        self.entries
            .iter()
            .find(|e| e.matches(frame, headers, regs))
            .map(|e| &e.instrs)
    }

    /// Appends an entry (incremental update); the caller is responsible for
    /// inserting at the right priority position.
    pub fn insert_at(&mut self, index: usize, entry: CompiledEntry) {
        self.entries.insert(index.min(self.entries.len()), entry);
    }

    /// The compiled entries in match order.
    pub fn entries(&self) -> &[CompiledEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the template holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct tuples (field/mask combinations).
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }
}

/// A compiled flow table: one of the four templates, plus bookkeeping shared
/// by the compiler and the performance model.
#[derive(Debug)]
pub enum CompiledTable {
    /// Direct machine-code style table.
    DirectCode(DirectCodeTable),
    /// Collision-free compound hash.
    CompoundHash(CompoundHashTable),
    /// DIR-24-8 longest prefix match.
    Lpm(LpmTable),
    /// Tuple space search fallback.
    LinkedList(LinkedListTable),
}

impl CompiledTable {
    /// Looks up a packet in whichever template backs this table.
    #[inline]
    pub fn lookup(
        &self,
        frame: &[u8],
        headers: &ParsedHeaders,
        regs: &Regs,
    ) -> Option<&Arc<CompiledInstrs>> {
        match self {
            CompiledTable::DirectCode(t) => t.lookup(frame, headers, regs),
            CompiledTable::CompoundHash(t) => t.lookup(frame, headers, regs),
            CompiledTable::Lpm(t) => t.lookup(frame, headers, regs),
            CompiledTable::LinkedList(t) => t.lookup(frame, headers, regs),
        }
    }

    /// The template kind, for statistics and the cost model.
    pub fn kind(&self) -> crate::analysis::TemplateKind {
        match self {
            CompiledTable::DirectCode(_) => crate::analysis::TemplateKind::DirectCode,
            CompiledTable::CompoundHash(_) => crate::analysis::TemplateKind::CompoundHash,
            CompiledTable::Lpm(_) => crate::analysis::TemplateKind::Lpm,
            CompiledTable::LinkedList(_) => crate::analysis::TemplateKind::LinkedList,
        }
    }

    /// Number of entries the template holds.
    pub fn len(&self) -> usize {
        match self {
            CompiledTable::DirectCode(t) => t.len(),
            CompiledTable::CompoundHash(t) => t.len(),
            CompiledTable::Lpm(t) => t.len(),
            CompiledTable::LinkedList(t) => t.len(),
        }
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the lookup structure (instruction-stream
    /// resident templates report zero extra data footprint).
    pub fn memory_footprint(&self) -> usize {
        match self {
            CompiledTable::DirectCode(t) => t.len() * std::mem::size_of::<CompiledEntry>(),
            CompiledTable::CompoundHash(t) => t.memory_footprint(),
            CompiledTable::Lpm(t) => t.memory_footprint(),
            CompiledTable::LinkedList(t) => t.len() * std::mem::size_of::<CompiledEntry>(),
        }
    }

    /// Renders a pseudo-assembly listing of the compiled table, in the style
    /// of the paper's direct-code example.
    pub fn disassemble(&self) -> String {
        match self {
            CompiledTable::DirectCode(t) => {
                let mut out = String::new();
                for (i, e) in t.entries().iter().enumerate() {
                    out.push_str(&format!("FLOW_{}:\n", i + 1));
                    out.push_str(&format!(
                        "    mov eax,{:#x} ; protocol bitmask check\n",
                        e.required.0
                    ));
                    for m in &e.matchers {
                        out.push_str(&m.disassemble());
                        out.push('\n');
                    }
                    match &e.instrs.goto {
                        Some(t) => out.push_str(&format!("    jmp TRAMPOLINE_TABLE_{t}\n")),
                        None => out.push_str("    jmp ACTION_SET ; shared action set\n"),
                    }
                }
                out.push_str("TABLE_MISS: jmp MISS_HANDLER\n");
                out
            }
            CompiledTable::CompoundHash(t) => {
                let fields: Vec<String> = t
                    .fields()
                    .iter()
                    .map(|(f, m)| format!("{f:?}/{m:#x}"))
                    .collect();
                format!(
                    "COMPOUND_HASH: key = [{}]\n    perfect_hash_lookup(key)   ; {} entries\n",
                    fields.join(" ++ "),
                    t.len()
                )
            }
            CompiledTable::Lpm(t) => format!(
                "LPM({:?}): dir24_8_lookup(addr)      ; {} prefixes\n",
                t.field(),
                t.len()
            ),
            CompiledTable::LinkedList(t) => format!(
                "LINKED_LIST: tuple space search    ; {} entries in {} tuples\n",
                t.len(),
                t.tuple_count()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;
    use pkt::parser::{parse, ParseDepth};

    fn instrs_output(goto: Option<TableId>) -> Arc<CompiledInstrs> {
        Arc::new(CompiledInstrs {
            goto,
            ..Default::default()
        })
    }

    fn headers_regs(p: &pkt::Packet) -> (ParsedHeaders, Regs) {
        (
            parse(p.data(), ParseDepth::L4),
            Regs {
                in_port: p.in_port,
                ..Default::default()
            },
        )
    }

    #[test]
    fn direct_code_priority_order_and_prologue() {
        let port80 = CompiledEntry::new(
            vec![CompiledMatcher::new(
                Field::TcpDst,
                80,
                Field::TcpDst.full_mask(),
            )],
            instrs_output(Some(1)),
        );
        let catch_all = CompiledEntry::new(vec![], instrs_output(None));
        let table = DirectCodeTable::new(vec![port80, catch_all]);

        let tcp80 = PacketBuilder::tcp().tcp_dst(80).build();
        let (h, r) = headers_regs(&tcp80);
        assert_eq!(table.lookup(tcp80.data(), &h, &r).unwrap().goto, Some(1));

        let udp = PacketBuilder::udp().udp_dst(80).build();
        let (h, r) = headers_regs(&udp);
        // The TCP prologue check fails for the UDP packet: the catch-all wins.
        assert_eq!(table.lookup(udp.data(), &h, &r).unwrap().goto, None);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn compound_hash_exact_match_and_catch_all() {
        let fields = vec![
            (Field::Ipv4Dst, Field::Ipv4Dst.full_mask()),
            (Field::TcpDst, Field::TcpDst.full_mask()),
        ];
        let keys = vec![
            (vec![0xc000_0201u128, 80u128], instrs_output(Some(7))),
            (vec![0xc000_0202u128, 443u128], instrs_output(Some(8))),
        ];
        let table = CompoundHashTable::new(fields, keys, Some(instrs_output(None))).unwrap();
        assert_eq!(table.len(), 2);

        let hit = PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(80)
            .build();
        let (h, r) = headers_regs(&hit);
        assert_eq!(table.lookup(hit.data(), &h, &r).unwrap().goto, Some(7));

        let miss = PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(81)
            .build();
        let (h, r) = headers_regs(&miss);
        assert_eq!(table.lookup(miss.data(), &h, &r).unwrap().goto, None);

        // Key arity mismatch is rejected.
        assert!(CompoundHashTable::new(
            vec![(Field::TcpDst, Field::TcpDst.full_mask())],
            vec![(vec![1, 2], instrs_output(None))],
            None
        )
        .is_err());
    }

    #[test]
    fn compound_hash_incremental_insert_and_remove() {
        let fields = vec![(Field::EthDst, Field::EthDst.full_mask())];
        let mut table = CompoundHashTable::new(fields, vec![], None).unwrap();
        table.insert(&[0x0200_0000_0001], instrs_output(Some(3)));
        table.insert(&[0x0200_0000_0002], instrs_output(Some(4)));
        assert_eq!(table.len(), 2);

        let p = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 2]).build();
        let (h, r) = headers_regs(&p);
        assert_eq!(table.lookup(p.data(), &h, &r).unwrap().goto, Some(4));

        assert!(table.remove(&[0x0200_0000_0002]));
        assert!(!table.remove(&[0x0200_0000_0002]));
        assert!(table.lookup(p.data(), &h, &r).is_none());
        table.rebuild();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn compound_hash_rejects_oversized_keys() {
        let fields = vec![
            (Field::Ipv6Src, Field::Ipv6Src.full_mask()),
            (Field::TcpDst, Field::TcpDst.full_mask()),
        ];
        assert!(matches!(
            CompoundHashTable::new(fields, vec![], None),
            Err(TemplateError::PrerequisiteViolated(_))
        ));
    }

    #[test]
    fn lpm_longest_prefix_and_fallback() {
        let a = instrs_output(Some(1));
        let b = instrs_output(Some(2));
        let table = LpmTable::new(
            Field::Ipv4Dst,
            vec![
                (u32::from_be_bytes([10, 0, 0, 0]), 8, a),
                (u32::from_be_bytes([10, 1, 0, 0]), 16, b),
            ],
            Some(instrs_output(None)),
        )
        .unwrap();
        assert_eq!(table.len(), 2);

        let specific = PacketBuilder::udp().ipv4_dst([10, 1, 2, 3]).build();
        let (h, r) = headers_regs(&specific);
        assert_eq!(table.lookup(specific.data(), &h, &r).unwrap().goto, Some(2));

        let broad = PacketBuilder::udp().ipv4_dst([10, 9, 9, 9]).build();
        let (h, r) = headers_regs(&broad);
        assert_eq!(table.lookup(broad.data(), &h, &r).unwrap().goto, Some(1));

        let miss = PacketBuilder::udp().ipv4_dst([192, 0, 2, 1]).build();
        let (h, r) = headers_regs(&miss);
        assert_eq!(table.lookup(miss.data(), &h, &r).unwrap().goto, None);

        // Non-IP packets fall back to the catch-all.
        let arp = PacketBuilder::arp_request(
            pkt::MacAddr::new([2, 0, 0, 0, 0, 1]),
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(10, 0, 0, 2),
        );
        let (h, r) = headers_regs(&arp);
        assert_eq!(table.lookup(arp.data(), &h, &r).unwrap().goto, None);

        assert!(LpmTable::new(Field::TcpDst, vec![], None).is_err());
    }

    #[test]
    fn lpm_shares_action_blocks_across_prefixes() {
        let shared = instrs_output(Some(9));
        let mut table = LpmTable::new(Field::Ipv4Dst, vec![], None).unwrap();
        for i in 0..50u32 {
            table
                .insert(
                    u32::from_be_bytes([10, i as u8, 0, 0]),
                    16,
                    Arc::clone(&shared),
                )
                .unwrap();
        }
        // All 50 prefixes reference the same compiled instruction block.
        assert_eq!(table.targets.len(), 1);
        assert_eq!(table.len(), 50);
    }

    #[test]
    fn linked_list_tuple_grouping() {
        let e1 = CompiledEntry::new(
            vec![CompiledMatcher::new(Field::TcpDst, 80, 0xffff)],
            instrs_output(Some(1)),
        );
        let e2 = CompiledEntry::new(
            vec![CompiledMatcher::new(Field::TcpDst, 443, 0xffff)],
            instrs_output(Some(2)),
        );
        let e3 = CompiledEntry::new(
            vec![CompiledMatcher::new(Field::Ipv4Dst, 0x0a000000, 0xff000000)],
            instrs_output(Some(3)),
        );
        let table = LinkedListTable::new(vec![e1, e2, e3]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.tuple_count(), 2);

        let p = PacketBuilder::tcp()
            .tcp_dst(443)
            .ipv4_dst([10, 0, 0, 1])
            .build();
        let (h, r) = headers_regs(&p);
        // Priority order: the port rule appears before the IP rule.
        assert_eq!(table.lookup(p.data(), &h, &r).unwrap().goto, Some(2));
    }

    #[test]
    fn compiled_table_dispatch_and_disassembly() {
        let direct = CompiledTable::DirectCode(DirectCodeTable::new(vec![CompiledEntry::new(
            vec![CompiledMatcher::new(Field::TcpDst, 80, 0xffff)],
            instrs_output(None),
        )]));
        assert_eq!(direct.kind(), crate::analysis::TemplateKind::DirectCode);
        assert_eq!(direct.len(), 1);
        let listing = direct.disassemble();
        assert!(listing.contains("FLOW_1"));
        assert!(listing.contains("TCP_DST_MATCHER(0x50)"));

        let hash = CompiledTable::CompoundHash(
            CompoundHashTable::new(
                vec![(Field::EthDst, Field::EthDst.full_mask())],
                vec![(vec![1], instrs_output(None))],
                None,
            )
            .unwrap(),
        );
        assert!(hash.disassemble().contains("COMPOUND_HASH"));
        assert!(hash.memory_footprint() > 0);

        let lpm = CompiledTable::Lpm(LpmTable::new(Field::Ipv4Dst, vec![], None).unwrap());
        assert!(lpm.disassemble().contains("LPM"));
        assert!(lpm.is_empty());

        let ll = CompiledTable::LinkedList(LinkedListTable::new(vec![]));
        assert!(ll.disassemble().contains("LINKED_LIST"));
    }
}
