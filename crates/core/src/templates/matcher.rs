//! Matcher templates: one per OpenFlow match field.
//!
//! A matcher template is the paper's
//! `mov eax,[r13+0x10]; xor eax,ADDR; and eax,MASK; jne next` fragment: load
//! the field straight from the frame at the offset the parser template
//! recorded, compare against the key that was *patched into the code* at
//! specialization time, and fall through to the next flow entry on mismatch.
//! The crucial difference from the flow-cache architecture is that only the
//! fields the installed rules actually match on are ever loaded.

use openflow::field::{Field, FieldValue};
use pkt::parser::{ParsedHeaders, ProtoMask};

/// Per-packet register state that is not part of the frame: the ingress port
/// and the pipeline metadata register (the paper keeps these in CPU
/// registers, hence the name).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Regs {
    /// Ingress port of the packet.
    pub in_port: u32,
    /// OpenFlow metadata register, written by `WriteMetadata`.
    pub metadata: u64,
    /// Tunnel id metadata.
    pub tunnel_id: u64,
}

/// Protocol-presence bits a match on `field` requires, used to build the
/// per-entry prologue check (`mov eax,IP|TCP; or eax,r15d; cmp eax,r15d`).
pub fn required_protocols(field: Field) -> ProtoMask {
    match field {
        Field::InPort | Field::InPhyPort | Field::Metadata | Field::TunnelId => ProtoMask::NONE,
        Field::EthDst | Field::EthSrc | Field::EthType => ProtoMask::ETH,
        Field::VlanVid | Field::VlanPcp => ProtoMask::VLAN,
        Field::IpDscp | Field::IpEcn | Field::IpProto | Field::Ipv4Src | Field::Ipv4Dst => {
            ProtoMask::IPV4
        }
        Field::Ipv6Src
        | Field::Ipv6Dst
        | Field::Ipv6Flabel
        | Field::Ipv6Exthdr
        | Field::Ipv6NdTarget
        | Field::Ipv6NdSll
        | Field::Ipv6NdTll => ProtoMask::IPV6,
        Field::ArpOp | Field::ArpSpa | Field::ArpTpa | Field::ArpSha | Field::ArpTha => {
            ProtoMask::ARP
        }
        Field::TcpSrc | Field::TcpDst => ProtoMask::TCP,
        Field::UdpSrc | Field::UdpDst => ProtoMask::UDP,
        Field::SctpSrc | Field::SctpDst => ProtoMask::NONE,
        Field::Icmpv4Type | Field::Icmpv4Code => ProtoMask::ICMP,
        Field::Icmpv6Type | Field::Icmpv6Code => ProtoMask::IPV6,
        Field::MplsLabel | Field::MplsTc | Field::MplsBos | Field::PbbIsid => ProtoMask::ETH,
    }
}

/// Loads the raw value of `field` from the frame (or the register file),
/// using the offsets recorded by the parser template. Returns `None` when the
/// field's protocol layer is absent — the caller's prologue check normally
/// prevents that, but table templates also use this for key construction.
#[inline]
pub fn load_field(
    field: Field,
    frame: &[u8],
    headers: &ParsedHeaders,
    regs: &Regs,
) -> Option<FieldValue> {
    let l2 = usize::from(headers.l2_offset);
    let l3 = usize::from(headers.l3_offset);
    let l4 = usize::from(headers.l4_offset);
    match field {
        Field::InPort | Field::InPhyPort => Some(FieldValue::from(regs.in_port)),
        Field::Metadata => Some(FieldValue::from(regs.metadata)),
        Field::TunnelId => Some(FieldValue::from(regs.tunnel_id)),
        Field::EthDst => read_bytes(frame, l2, 6),
        Field::EthSrc => read_bytes(frame, l2 + 6, 6),
        Field::EthType => Some(FieldValue::from(headers.ethertype)),
        Field::VlanVid => headers
            .mask
            .contains(ProtoMask::VLAN)
            .then_some(FieldValue::from(headers.vlan_vid)),
        Field::VlanPcp => headers
            .mask
            .contains(ProtoMask::VLAN)
            .then_some(FieldValue::from(headers.vlan_pcp)),
        Field::IpDscp => headers
            .has_ipv4()
            .then(|| frame.get(l3 + 1).map(|b| FieldValue::from(b >> 2)))?,
        Field::IpEcn => headers
            .has_ipv4()
            .then(|| frame.get(l3 + 1).map(|b| FieldValue::from(b & 3)))?,
        Field::IpProto => (headers.has_ipv4() || headers.mask.contains(ProtoMask::IPV6))
            .then_some(FieldValue::from(headers.ip_proto)),
        Field::Ipv4Src => headers.has_ipv4().then(|| read_bytes(frame, l3 + 12, 4))?,
        Field::Ipv4Dst => headers.has_ipv4().then(|| read_bytes(frame, l3 + 16, 4))?,
        Field::Ipv6Src => headers
            .mask
            .contains(ProtoMask::IPV6)
            .then(|| read_bytes(frame, l3 + 8, 16))?,
        Field::Ipv6Dst => headers
            .mask
            .contains(ProtoMask::IPV6)
            .then(|| read_bytes(frame, l3 + 24, 16))?,
        Field::TcpSrc => headers.has_tcp().then(|| read_bytes(frame, l4, 2))?,
        Field::TcpDst => headers.has_tcp().then(|| read_bytes(frame, l4 + 2, 2))?,
        Field::UdpSrc => headers.has_udp().then(|| read_bytes(frame, l4, 2))?,
        Field::UdpDst => headers.has_udp().then(|| read_bytes(frame, l4 + 2, 2))?,
        Field::Icmpv4Type => headers
            .mask
            .contains(ProtoMask::ICMP)
            .then(|| read_bytes(frame, l4, 1))?,
        Field::Icmpv4Code => headers
            .mask
            .contains(ProtoMask::ICMP)
            .then(|| read_bytes(frame, l4 + 1, 1))?,
        Field::ArpOp => headers
            .mask
            .contains(ProtoMask::ARP)
            .then(|| read_bytes(frame, l3 + 6, 2))?,
        Field::ArpSha => headers
            .mask
            .contains(ProtoMask::ARP)
            .then(|| read_bytes(frame, l3 + 8, 6))?,
        Field::ArpSpa => headers
            .mask
            .contains(ProtoMask::ARP)
            .then(|| read_bytes(frame, l3 + 14, 4))?,
        Field::ArpTha => headers
            .mask
            .contains(ProtoMask::ARP)
            .then(|| read_bytes(frame, l3 + 18, 6))?,
        Field::ArpTpa => headers
            .mask
            .contains(ProtoMask::ARP)
            .then(|| read_bytes(frame, l3 + 24, 4))?,
        // Fields the prototype does not model in the frame.
        Field::MplsLabel
        | Field::MplsTc
        | Field::MplsBos
        | Field::PbbIsid
        | Field::Ipv6Flabel
        | Field::Ipv6NdTarget
        | Field::Ipv6NdSll
        | Field::Ipv6NdTll
        | Field::Ipv6Exthdr
        | Field::SctpSrc
        | Field::SctpDst
        | Field::Icmpv6Type
        | Field::Icmpv6Code => None,
    }
}

/// Reads `len` big-endian bytes at `offset` into the low bits of a value.
#[inline]
fn read_bytes(frame: &[u8], offset: usize, len: usize) -> Option<FieldValue> {
    let bytes = frame.get(offset..offset + len)?;
    let mut v: FieldValue = 0;
    for b in bytes {
        v = (v << 8) | FieldValue::from(*b);
    }
    Some(v)
}

/// A specialised matcher: the field to load plus the key and mask that were
/// patched in at template-specialization time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledMatcher {
    /// Field the matcher loads.
    pub field: Field,
    /// Patched key (pre-masked).
    pub key: FieldValue,
    /// Patched mask.
    pub mask: FieldValue,
}

impl CompiledMatcher {
    /// Specialises a matcher template with a key and mask.
    pub fn new(field: Field, key: FieldValue, mask: FieldValue) -> Self {
        CompiledMatcher {
            field,
            key: key & mask,
            mask,
        }
    }

    /// Runs the matcher against a packet.
    #[inline]
    pub fn matches(&self, frame: &[u8], headers: &ParsedHeaders, regs: &Regs) -> bool {
        match load_field(self.field, frame, headers, regs) {
            Some(value) => value & self.mask == self.key,
            None => false,
        }
    }

    /// Renders the matcher in the paper's macro notation, e.g.
    /// `IP_DST_ADDR_MATCHER(0xc0000201, 0xffffff00)`.
    pub fn disassemble(&self) -> String {
        let name = format!("{:?}", self.field)
            .chars()
            .flat_map(|c| {
                if c.is_uppercase() {
                    vec!['_', c]
                } else {
                    vec![c.to_ascii_uppercase()]
                }
            })
            .collect::<String>()
            .trim_start_matches('_')
            .to_string();
        if self.mask == self.field.full_mask() {
            format!("    {name}_MATCHER({:#x})", self.key)
        } else {
            format!("    {name}_MATCHER({:#x}, {:#x})", self.key, self.mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;
    use pkt::parser::{parse, ParseDepth};

    fn packet_headers_regs(pkt: &pkt::Packet) -> (ParsedHeaders, Regs) {
        let headers = parse(pkt.data(), ParseDepth::L4);
        let regs = Regs {
            in_port: pkt.in_port,
            ..Default::default()
        };
        (headers, regs)
    }

    #[test]
    fn load_field_agrees_with_flow_key_extraction() {
        let pkt = PacketBuilder::tcp()
            .eth_src([2, 0, 0, 0, 0, 7])
            .ipv4_src([10, 1, 2, 3])
            .ipv4_dst([192, 0, 2, 9])
            .tcp_src(4000)
            .tcp_dst(443)
            .in_port(5)
            .build();
        let key = openflow::FlowKey::extract(&pkt);
        let (headers, regs) = packet_headers_regs(&pkt);
        for field in [
            Field::InPort,
            Field::EthDst,
            Field::EthSrc,
            Field::EthType,
            Field::IpProto,
            Field::Ipv4Src,
            Field::Ipv4Dst,
            Field::TcpSrc,
            Field::TcpDst,
        ] {
            assert_eq!(
                load_field(field, pkt.data(), &headers, &regs),
                key.get(field),
                "field {field:?}"
            );
        }
        // Fields absent from a TCP packet.
        assert_eq!(load_field(Field::UdpDst, pkt.data(), &headers, &regs), None);
        assert_eq!(
            load_field(Field::VlanVid, pkt.data(), &headers, &regs),
            None
        );
        assert_eq!(load_field(Field::ArpOp, pkt.data(), &headers, &regs), None);
    }

    #[test]
    fn vlan_and_arp_loads() {
        let tagged = PacketBuilder::udp().vlan(42).udp_dst(53).build();
        let (headers, regs) = packet_headers_regs(&tagged);
        assert_eq!(
            load_field(Field::VlanVid, tagged.data(), &headers, &regs),
            Some(42)
        );
        assert_eq!(
            load_field(Field::UdpDst, tagged.data(), &headers, &regs),
            Some(53)
        );

        let arp = PacketBuilder::arp_request(
            pkt::MacAddr::new([2, 0, 0, 0, 0, 1]),
            pkt::Ipv4Addr4::new(10, 0, 0, 1),
            pkt::Ipv4Addr4::new(10, 0, 0, 2),
        );
        let headers = parse(arp.data(), ParseDepth::L3);
        let regs = Regs::default();
        assert_eq!(
            load_field(Field::ArpOp, arp.data(), &headers, &regs),
            Some(1)
        );
        assert_eq!(
            load_field(Field::ArpTpa, arp.data(), &headers, &regs),
            Some(FieldValue::from(pkt::Ipv4Addr4::new(10, 0, 0, 2).to_u32()))
        );
    }

    #[test]
    fn matcher_exact_and_masked() {
        let pkt = PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 77])
            .tcp_dst(80)
            .build();
        let (headers, regs) = packet_headers_regs(&pkt);

        let exact = CompiledMatcher::new(Field::TcpDst, 80, Field::TcpDst.full_mask());
        assert!(exact.matches(pkt.data(), &headers, &regs));
        let wrong = CompiledMatcher::new(Field::TcpDst, 81, Field::TcpDst.full_mask());
        assert!(!wrong.matches(pkt.data(), &headers, &regs));

        let prefix = CompiledMatcher::new(Field::Ipv4Dst, 0xc000_0200, 0xffff_ff00);
        assert!(prefix.matches(pkt.data(), &headers, &regs));
        let other_net = CompiledMatcher::new(Field::Ipv4Dst, 0xc000_0300, 0xffff_ff00);
        assert!(!other_net.matches(pkt.data(), &headers, &regs));

        // Matching a UDP field on a TCP packet fails rather than panics.
        let udp = CompiledMatcher::new(Field::UdpDst, 80, Field::UdpDst.full_mask());
        assert!(!udp.matches(pkt.data(), &headers, &regs));
    }

    #[test]
    fn required_protocol_masks() {
        assert_eq!(required_protocols(Field::TcpDst), ProtoMask::TCP);
        assert_eq!(required_protocols(Field::Ipv4Dst), ProtoMask::IPV4);
        assert_eq!(required_protocols(Field::InPort), ProtoMask::NONE);
        assert_eq!(required_protocols(Field::VlanVid), ProtoMask::VLAN);
    }

    #[test]
    fn disassembly_shows_patched_keys() {
        let m = CompiledMatcher::new(Field::Ipv4Dst, 0xc0000201, 0xffffff00);
        let text = m.disassemble();
        assert!(text.contains("IPV4_DST_MATCHER"), "{text}");
        assert!(text.contains("0xc0000200"));
        assert!(text.contains("0xffffff00"));
    }
}
