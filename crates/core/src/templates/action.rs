//! Action templates and shared action sets.
//!
//! "Every action type is a separate action template and action templates are
//! collapsed into composite action sets. Identical action sets are shared
//! across flows." (§3.1). The compiler interns every distinct action set in
//! an [`ActionStore`]; compiled flow entries reference sets by index, so a
//! 1K-entry MAC table whose entries all "output on port 3" carries a single
//! shared action-set object.

use openflow::action::OutputKind;
use openflow::ct::{ConnCtx, CtVerb, NoCt};
use openflow::{Action, Field, FieldValue, Verdict};
use pkt::checksum;
use pkt::ethernet::ETHERNET_HEADER_LEN;
use pkt::parser::{parse, ParseDepth, ParsedHeaders};
use pkt::vlan::VLAN_TAG_LEN;
use pkt::Packet;

/// A specialised action: the per-type template with its parameters patched
/// in. Compared to [`openflow::Action`] the set-field variants are already
/// split per target field, mirroring the per-type action templates of the
/// paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CompiledAction {
    /// Transmit on the given port.
    Output(u32),
    /// Flood on every port but the ingress one.
    Flood,
    /// Punt to the controller.
    ToController,
    /// Explicit drop (terminates the action set).
    Drop,
    /// Rewrite the destination MAC.
    SetEthDst([u8; 6]),
    /// Rewrite the source MAC.
    SetEthSrc([u8; 6]),
    /// Rewrite the VLAN VID of an already-tagged packet.
    SetVlanVid(u16),
    /// Rewrite the IPv4 DSCP code point (refreshes the header checksum).
    SetIpDscp(u8),
    /// Rewrite the IPv4 source address (refreshes the header checksum).
    SetIpv4Src(u32),
    /// Rewrite the IPv4 destination address (refreshes the header checksum).
    SetIpv4Dst(u32),
    /// Rewrite the TCP/UDP source port.
    SetL4Src(u16),
    /// Rewrite the TCP/UDP destination port.
    SetL4Dst(u16),
    /// Decrement the IPv4 TTL.
    DecNwTtl,
    /// Push an 802.1Q tag with the given TPID.
    PushVlan(u16),
    /// Pop the outermost 802.1Q tag.
    PopVlan,
    /// Connection-tracking verb, executed against the per-shard engine the
    /// caller threads through [`CompiledActionSet::execute_ct`]. Compiled
    /// programs keep the verb — connection state is live data, so the action
    /// re-executes per packet rather than specialising away.
    Ct(CtVerb),
    /// Actions the templates model as no-ops (queues, groups, unsupported
    /// set-fields); kept so compiled pipelines stay structurally faithful.
    Nop,
}

impl CompiledAction {
    /// Specialises one OpenFlow action into its template.
    pub fn from_action(action: &Action) -> Self {
        match action {
            Action::Output(p) => CompiledAction::Output(*p),
            Action::Flood => CompiledAction::Flood,
            Action::ToController => CompiledAction::ToController,
            Action::Drop => CompiledAction::Drop,
            Action::DecNwTtl => CompiledAction::DecNwTtl,
            Action::PushVlan(tpid) => CompiledAction::PushVlan(*tpid),
            Action::PopVlan => CompiledAction::PopVlan,
            Action::Ct(verb) => CompiledAction::Ct(*verb),
            Action::SetQueue(_) | Action::Group(_) => CompiledAction::Nop,
            Action::SetField(field, value) => Self::from_set_field(*field, *value),
        }
    }

    fn from_set_field(field: Field, value: FieldValue) -> Self {
        match field {
            Field::EthDst => CompiledAction::SetEthDst(mac_bytes(value)),
            Field::EthSrc => CompiledAction::SetEthSrc(mac_bytes(value)),
            Field::VlanVid => CompiledAction::SetVlanVid(value as u16 & 0x0fff),
            Field::IpDscp => CompiledAction::SetIpDscp(value as u8 & 0x3f),
            Field::Ipv4Src => CompiledAction::SetIpv4Src(value as u32),
            Field::Ipv4Dst => CompiledAction::SetIpv4Dst(value as u32),
            Field::TcpSrc | Field::UdpSrc => CompiledAction::SetL4Src(value as u16),
            Field::TcpDst | Field::UdpDst => CompiledAction::SetL4Dst(value as u16),
            _ => CompiledAction::Nop,
        }
    }

    /// Executes the action. Returns `true` when the frame layout changed and
    /// the header offsets must be re-derived.
    #[inline]
    fn execute(&self, packet: &mut Packet, headers: &ParsedHeaders, verdict: &mut Verdict) -> bool {
        let l3 = usize::from(headers.l3_offset);
        let l4 = usize::from(headers.l4_offset);
        match self {
            CompiledAction::Output(p) => {
                verdict.outputs.push(*p);
                false
            }
            CompiledAction::Flood => {
                verdict.flood = true;
                false
            }
            CompiledAction::ToController => {
                verdict.to_controller = true;
                verdict.punt_reason = openflow::PacketInReason::Action;
                false
            }
            // Ct is executed at the set level (it needs the engine and can
            // halt the pipeline); as a bare action it is a no-op.
            CompiledAction::Drop | CompiledAction::Nop | CompiledAction::Ct(_) => false,
            CompiledAction::SetEthDst(mac) => {
                packet.data_mut()[0..6].copy_from_slice(mac);
                false
            }
            CompiledAction::SetEthSrc(mac) => {
                packet.data_mut()[6..12].copy_from_slice(mac);
                false
            }
            CompiledAction::SetVlanVid(vid) => {
                if headers.has_vlan() {
                    let off = ETHERNET_HEADER_LEN;
                    let frame = packet.data_mut();
                    let pcp_dei = frame[off] & 0xf0;
                    frame[off] = pcp_dei | ((vid >> 8) as u8 & 0x0f);
                    frame[off + 1] = *vid as u8;
                }
                false
            }
            CompiledAction::SetIpDscp(dscp) => {
                if headers.has_ipv4() {
                    let frame = packet.data_mut();
                    frame[l3 + 1] = (frame[l3 + 1] & 0x03) | (dscp << 2);
                    refresh_ipv4_checksum(frame, l3);
                }
                false
            }
            CompiledAction::SetIpv4Src(addr) => {
                if headers.has_ipv4() {
                    let frame = packet.data_mut();
                    frame[l3 + 12..l3 + 16].copy_from_slice(&addr.to_be_bytes());
                    refresh_ipv4_checksum(frame, l3);
                }
                false
            }
            CompiledAction::SetIpv4Dst(addr) => {
                if headers.has_ipv4() {
                    let frame = packet.data_mut();
                    frame[l3 + 16..l3 + 20].copy_from_slice(&addr.to_be_bytes());
                    refresh_ipv4_checksum(frame, l3);
                }
                false
            }
            CompiledAction::SetL4Src(port) => {
                if headers.has_tcp() || headers.has_udp() {
                    packet.data_mut()[l4..l4 + 2].copy_from_slice(&port.to_be_bytes());
                }
                false
            }
            CompiledAction::SetL4Dst(port) => {
                if headers.has_tcp() || headers.has_udp() {
                    packet.data_mut()[l4 + 2..l4 + 4].copy_from_slice(&port.to_be_bytes());
                }
                false
            }
            CompiledAction::DecNwTtl => {
                if headers.has_ipv4() {
                    let frame = packet.data_mut();
                    let ttl = frame[l3 + 8];
                    frame[l3 + 8] = ttl.saturating_sub(1);
                    refresh_ipv4_checksum(frame, l3);
                }
                false
            }
            CompiledAction::PushVlan(tpid) => {
                let inner_type = [packet.data()[12], packet.data()[13]];
                packet.data_mut()[12..14].copy_from_slice(&tpid.to_be_bytes());
                packet.insert(ETHERNET_HEADER_LEN, &[0, 0, inner_type[0], inner_type[1]]);
                true
            }
            CompiledAction::PopVlan => {
                if headers.has_vlan() {
                    let inner = [packet.data()[16], packet.data()[17]];
                    packet.data_mut()[12..14].copy_from_slice(&inner);
                    packet.remove(ETHERNET_HEADER_LEN, VLAN_TAG_LEN);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Renders the action in the style of the paper's listings.
    pub fn disassemble(&self) -> String {
        match self {
            CompiledAction::Output(p) => format!("OUTPUT({p})"),
            CompiledAction::Flood => "FLOOD".to_string(),
            CompiledAction::ToController => "CONTROLLER".to_string(),
            CompiledAction::Drop => "DROP".to_string(),
            CompiledAction::SetEthDst(m) => format!("SET_ETH_DST({m:02x?})"),
            CompiledAction::SetEthSrc(m) => format!("SET_ETH_SRC({m:02x?})"),
            CompiledAction::SetVlanVid(v) => format!("SET_VLAN_VID({v})"),
            CompiledAction::SetIpDscp(d) => format!("SET_IP_DSCP({d})"),
            CompiledAction::SetIpv4Src(a) => format!("SET_IPV4_SRC({:#x})", a),
            CompiledAction::SetIpv4Dst(a) => format!("SET_IPV4_DST({:#x})", a),
            CompiledAction::SetL4Src(p) => format!("SET_L4_SRC({p})"),
            CompiledAction::SetL4Dst(p) => format!("SET_L4_DST({p})"),
            CompiledAction::DecNwTtl => "DEC_NW_TTL".to_string(),
            CompiledAction::PushVlan(t) => format!("PUSH_VLAN({t:#x})"),
            CompiledAction::PopVlan => "POP_VLAN".to_string(),
            CompiledAction::Ct(v) => format!("CT({v:?})"),
            CompiledAction::Nop => "NOP".to_string(),
        }
    }
}

fn mac_bytes(value: FieldValue) -> [u8; 6] {
    let v = value as u64;
    let mut out = [0u8; 6];
    out.copy_from_slice(&v.to_be_bytes()[2..8]);
    out
}

fn refresh_ipv4_checksum(frame: &mut [u8], l3: usize) {
    let ihl = usize::from(frame[l3] & 0x0f) * 4;
    frame[l3 + 10] = 0;
    frame[l3 + 11] = 0;
    let csum = checksum::ones_complement(&frame[l3..l3 + ihl]);
    frame[l3 + 10..l3 + 12].copy_from_slice(&csum.to_be_bytes());
}

/// A composite, shared action set: the ordered list of compiled actions a
/// flow entry executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CompiledActionSet {
    actions: Vec<CompiledAction>,
}

impl CompiledActionSet {
    /// Specialises a list of OpenFlow actions.
    pub fn from_actions(actions: &[Action]) -> Self {
        CompiledActionSet {
            actions: actions.iter().map(CompiledAction::from_action).collect(),
        }
    }

    /// The compiled actions, in execution order.
    pub fn actions(&self) -> &[CompiledAction] {
        &self.actions
    }

    /// True when the set contains no actions (a drop).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Executes the whole set against a packet, merging forwarding decisions
    /// into `verdict`. Re-parses the frame if an action changed its layout.
    /// Ct verbs execute against the no-op tracker (Commit passes, stateful
    /// verbs halt) — stateful pipelines use [`CompiledActionSet::execute_ct`].
    pub fn execute(&self, packet: &mut Packet, headers: &ParsedHeaders, verdict: &mut Verdict) {
        self.execute_ct(packet, headers, verdict, &mut NoCt);
    }

    /// Like [`CompiledActionSet::execute`] but with a live connection
    /// tracker. Returns `true` when a ct verb halted the pipeline (stateful
    /// deny): the caller must discard the verdict's forwarding decisions and
    /// stop processing the packet.
    pub fn execute_ct(
        &self,
        packet: &mut Packet,
        headers: &ParsedHeaders,
        verdict: &mut Verdict,
        ct: &mut dyn ConnCtx,
    ) -> bool {
        let mut current = *headers;
        for action in &self.actions {
            if let CompiledAction::Ct(verb) = action {
                let outcome = openflow::ct::execute_ct(ct, verb, packet, &current);
                if outcome.halted() {
                    return true;
                }
                for &(field, value) in outcome.rewrites() {
                    CompiledAction::from_set_field(field, FieldValue::from(value))
                        .execute(packet, &current, verdict);
                }
                continue;
            }
            if action.execute(packet, &current, verdict) {
                current = parse(packet.data(), ParseDepth::L4);
            }
        }
        false
    }

    /// Executes only the packet-modifying actions of the set, skipping the
    /// output-like ones. Used when several write-action sets accumulate along
    /// a multi-stage pipeline and only the last forwarding decision may take
    /// effect (OpenFlow action-set semantics: one output per set, last write
    /// wins).
    pub fn execute_modifiers(&self, packet: &mut Packet, headers: &ParsedHeaders) {
        let mut current = *headers;
        let mut scratch = Verdict::default();
        for action in &self.actions {
            if matches!(
                action,
                CompiledAction::Output(_)
                    | CompiledAction::Flood
                    | CompiledAction::ToController
                    | CompiledAction::Drop
                    // Ct in a write-action set is a no-op everywhere (the
                    // reference ActionSet ignores it too).
                    | CompiledAction::Ct(_)
            ) {
                continue;
            }
            if action.execute(packet, &current, &mut scratch) {
                current = parse(packet.data(), ParseDepth::L4);
            }
        }
    }

    /// The last output-like action of the set, if any.
    pub fn output_action(&self) -> Option<&CompiledAction> {
        self.actions.iter().rev().find(|a| {
            matches!(
                a,
                CompiledAction::Output(_)
                    | CompiledAction::Flood
                    | CompiledAction::ToController
                    | CompiledAction::Drop
            )
        })
    }

    /// Renders the action set.
    pub fn disassemble(&self) -> String {
        if self.actions.is_empty() {
            return "    DROP".to_string();
        }
        self.actions
            .iter()
            .map(|a| format!("    {}", a.disassemble()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Converts a cached [`OutputKind`]-style decision into verdict bits; used by
/// tests comparing against the reference datapath.
pub fn merge_output(verdict: &mut Verdict, out: OutputKind) {
    match out {
        OutputKind::Port(p) => verdict.outputs.push(p),
        OutputKind::Flood => verdict.flood = true,
        OutputKind::Controller => {
            verdict.to_controller = true;
            verdict.punt_reason = openflow::PacketInReason::Action;
        }
        OutputKind::Drop => {}
    }
}

/// Interning store for shared action sets.
#[derive(Debug, Default, Clone)]
pub struct ActionStore {
    sets: Vec<std::sync::Arc<CompiledActionSet>>,
}

impl ActionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ActionStore::default()
    }

    /// Interns an action list, returning the shared compiled set. Identical
    /// lists map to the same `Arc`, so flows with the same behaviour share
    /// one physical action-set object.
    pub fn intern(&mut self, actions: &[Action]) -> std::sync::Arc<CompiledActionSet> {
        let compiled = CompiledActionSet::from_actions(actions);
        if let Some(existing) = self.sets.iter().find(|s| ***s == compiled) {
            return std::sync::Arc::clone(existing);
        }
        let shared = std::sync::Arc::new(compiled);
        self.sets.push(std::sync::Arc::clone(&shared));
        shared
    }

    /// Number of distinct action sets interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no sets have been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;
    use pkt::ipv4::Ipv4Header;

    fn run(actions: &[Action], packet: &mut Packet) -> Verdict {
        let headers = parse(packet.data(), ParseDepth::L4);
        let set = CompiledActionSet::from_actions(actions);
        let mut verdict = Verdict::default();
        set.execute(packet, &headers, &mut verdict);
        verdict
    }

    #[test]
    fn output_and_flood_merge_into_verdict() {
        let mut p = PacketBuilder::tcp().build();
        let v = run(&[Action::Output(3), Action::Flood], &mut p);
        assert_eq!(v.outputs, vec![3]);
        assert!(v.flood);
    }

    #[test]
    fn nat_rewrite_matches_reference_action() {
        // The compiled SetIpv4Src must produce the same frame as the
        // reference openflow action implementation.
        let mut compiled_pkt = PacketBuilder::tcp().ipv4_src([10, 0, 0, 1]).build();
        let mut reference_pkt = compiled_pkt.clone();

        run(
            &[Action::SetField(Field::Ipv4Src, 0xcb00_7101)],
            &mut compiled_pkt,
        );

        let headers = parse(reference_pkt.data(), ParseDepth::L4);
        let mut key = openflow::FlowKey::extract(&reference_pkt);
        Action::SetField(Field::Ipv4Src, 0xcb00_7101).apply(&mut reference_pkt, &headers, &mut key);

        assert_eq!(compiled_pkt.data(), reference_pkt.data());
        assert!(Ipv4Header::verify_checksum(&compiled_pkt.data()[14..]));
    }

    #[test]
    fn ttl_decrement_and_checksum() {
        let mut p = PacketBuilder::udp().ttl(7).build();
        run(&[Action::DecNwTtl], &mut p);
        let headers = parse(p.data(), ParseDepth::L3);
        let l3 = usize::from(headers.l3_offset);
        assert_eq!(p.data()[l3 + 8], 6);
        assert!(Ipv4Header::verify_checksum(&p.data()[l3..]));
    }

    #[test]
    fn push_set_pop_vlan_roundtrip() {
        let mut p = PacketBuilder::tcp().tcp_dst(80).build();
        let original_len = p.len();
        run(
            &[
                Action::PushVlan(0x8100),
                Action::SetField(Field::VlanVid, 9),
            ],
            &mut p,
        );
        let key = openflow::FlowKey::extract(&p);
        assert_eq!(key.vlan_vid, Some(9));
        assert_eq!(p.len(), original_len + 4);

        run(&[Action::PopVlan], &mut p);
        let key = openflow::FlowKey::extract(&p);
        assert_eq!(key.vlan_vid, None);
        assert_eq!(key.tcp_dst, Some(80));
        assert_eq!(p.len(), original_len);
    }

    #[test]
    fn l4_port_rewrite() {
        let mut p = PacketBuilder::udp().udp_dst(53).build();
        run(&[Action::SetField(Field::UdpDst, 5353)], &mut p);
        assert_eq!(openflow::FlowKey::extract(&p).udp_dst, Some(5353));
    }

    #[test]
    fn store_shares_identical_sets() {
        let mut store = ActionStore::new();
        let a = store.intern(&[Action::Output(1)]);
        let b = store.intern(&[Action::Output(2)]);
        let c = store.intern(&[Action::Output(1)]);
        assert!(std::sync::Arc::ptr_eq(&a, &c));
        assert!(!std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 2);
        assert_eq!(a.actions(), &[CompiledAction::Output(1)]);
    }

    #[test]
    fn modifier_only_execution_and_output_extraction() {
        let set = CompiledActionSet::from_actions(&[
            Action::SetField(Field::Ipv4Dst, 0x0a00_0001),
            Action::Output(3),
            Action::Output(5),
        ]);
        assert_eq!(set.output_action(), Some(&CompiledAction::Output(5)));

        let mut p = PacketBuilder::tcp().build();
        let headers = parse(p.data(), ParseDepth::L4);
        set.execute_modifiers(&mut p, &headers);
        // The rewrite happened, but no forwarding decision was taken.
        assert_eq!(openflow::FlowKey::extract(&p).ipv4_dst, Some(0x0a00_0001));
    }

    #[test]
    fn disassembly_mentions_patched_parameters() {
        let set = CompiledActionSet::from_actions(&[
            Action::SetField(Field::Ipv4Src, 0x0a000001),
            Action::Output(7),
        ]);
        let text = set.disassemble();
        assert!(text.contains("SET_IPV4_SRC(0xa000001)"));
        assert!(text.contains("OUTPUT(7)"));
        assert_eq!(CompiledActionSet::default().disassemble(), "    DROP");
    }
}
