//! The ESWITCH runtime: compiled fast path + flow-mod handling with
//! per-table, mostly non-destructive updates (§3.4 of the paper).
//!
//! Updates are handled at three escalating granularities:
//!
//! 1. **Incremental** — templates that support in-place updates (compound
//!    hash, LPM) absorb a single-entry add/delete without rebuilding;
//! 2. **Per-table rebuild** — the affected table is recompiled side by side
//!    and swapped into its trampoline slot atomically while other tables keep
//!    serving packets (also covers template fallback when a prerequisite
//!    breaks);
//! 3. **Full recompile** — only when the pipeline's *structure* changes
//!    (a table appears or disappears).
//!
//! Either way the update is transactional: the flow-mod is applied to the
//! declarative pipeline first, and the compiled state is derived from it, so
//! a failed compilation leaves the previous datapath running untouched.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use netdev::Counters;
use openflow::action::apply_action_list;
use openflow::flow_mod::{apply_flow_mod, FlowModCommand, FlowModEffect, FlowModError};
use openflow::{
    Controller, ControllerDecision, Field, FieldValue, FlowKey, FlowMod, NullController, PacketIn,
    PacketInReason, Pipeline, Verdict,
};
use pkt::Packet;

use crate::analysis::CompilerConfig;
use crate::compile::{compile, compile_table, CompileError, CompiledDatapath};
use crate::templates::action::ActionStore;
use crate::templates::table::CompiledTable;

/// Statistics about how updates were absorbed; the Fig. 17/18 harnesses read
/// these to attribute update cost.
#[derive(Debug, Default)]
pub struct UpdateStats {
    /// Flow-mods absorbed by an in-place template update.
    pub incremental: Counters,
    /// Flow-mods absorbed by rebuilding a single table.
    pub table_rebuilds: Counters,
    /// Flow-mods that forced a full datapath recompilation.
    pub full_recompiles: Counters,
}

/// The ESWITCH switch runtime.
pub struct EswitchRuntime {
    pipeline: RwLock<Pipeline>,
    datapath: RwLock<Arc<CompiledDatapath>>,
    config: CompilerConfig,
    controller: Mutex<Box<dyn Controller>>,
    /// Update accounting.
    pub updates: UpdateStats,
}

impl EswitchRuntime {
    /// Compiles `pipeline` with the default configuration and a drop-all
    /// controller.
    pub fn compile(pipeline: Pipeline) -> Result<Self, CompileError> {
        Self::with_config(
            pipeline,
            CompilerConfig::default(),
            Box::new(NullController::new()),
        )
    }

    /// Compiles `pipeline` with an explicit configuration and controller.
    pub fn with_config(
        mut pipeline: Pipeline,
        config: CompilerConfig,
        controller: Box<dyn Controller>,
    ) -> Result<Self, CompileError> {
        if config.enable_decomposition {
            pipeline = crate::decompose::decompose_pipeline(&pipeline).pipeline;
        }
        let datapath = compile(&pipeline, &config)?;
        Ok(EswitchRuntime {
            pipeline: RwLock::new(pipeline),
            datapath: RwLock::new(Arc::new(datapath)),
            config,
            controller: Mutex::new(controller),
            updates: UpdateStats::default(),
        })
    }

    /// The compiler configuration in effect.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// A snapshot handle to the current compiled datapath (cheap Arc clone).
    pub fn datapath(&self) -> Arc<CompiledDatapath> {
        Arc::clone(&self.datapath.read())
    }

    /// Read access to the declarative pipeline.
    pub fn with_pipeline<R>(&self, f: impl FnOnce(&Pipeline) -> R) -> R {
        f(&self.pipeline.read())
    }

    /// Processes one packet through the compiled fast path. Packets punted to
    /// the controller are handed over synchronously, and any flow-mods the
    /// controller answers with are applied before returning (reactive
    /// provisioning, as the access-gateway use case requires).
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        let datapath = self.datapath();
        let verdict = datapath.process(packet);
        if verdict.to_controller {
            self.handle_packet_in(packet.clone());
        }
        verdict
    }

    /// Processes a batch of packets through one datapath snapshot, appending
    /// one verdict per packet to `verdicts` (which is cleared first).
    ///
    /// The compiled-datapath handle is resolved once per batch (one
    /// `RwLock` read + `Arc` clone instead of one per packet); an update
    /// racing the batch lands in the *next* batch, which is exactly the
    /// trampoline-swap semantics of §3.4. Controller punts are collected and
    /// handed over after the burst so reactive flow-mods cannot stall the
    /// remaining packets of the burst mid-flight.
    pub fn process_batch_into(&self, packets: &mut [Packet], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        verdicts.reserve(packets.len());
        let datapath = self.datapath();
        let mut punted_any = false;
        for p in packets.iter_mut() {
            let verdict = datapath.process(p);
            punted_any |= verdict.to_controller;
            verdicts.push(verdict);
        }
        if punted_any {
            for (p, v) in packets.iter().zip(verdicts.iter()) {
                if v.to_controller {
                    self.handle_packet_in(p.clone());
                }
            }
        }
    }

    /// Processes a batch of packets, returning per-packet verdicts.
    pub fn process_batch(&self, packets: &mut [Packet]) -> Vec<Verdict> {
        let mut verdicts = Vec::new();
        self.process_batch_into(packets, &mut verdicts);
        verdicts
    }

    /// Applies a flow-mod, updating the compiled datapath at the finest
    /// granularity that preserves correctness.
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, FlowModError> {
        // 1. Update the declarative pipeline (the source of truth).
        let effect = {
            let mut pipeline = self.pipeline.write();
            apply_flow_mod(&mut pipeline, fm)?
        };

        // 2. Try to absorb the change incrementally.
        if self.try_incremental(fm, &effect) {
            self.updates.incremental.record(0);
            return Ok(effect);
        }

        // 3. Per-table rebuild when only existing tables changed and the
        //    change does not require a deeper packet parser than the one the
        //    datapath was compiled with (matching a new, deeper field after a
        //    shallow-parse compile needs the full recompile path).
        let datapath = self.datapath();
        let all_tables_known = effect
            .tables_touched
            .iter()
            .all(|id| datapath.slot(*id).is_some());
        let parser_still_sufficient = {
            let pipeline = self.pipeline.read();
            let needed = crate::templates::parser::ParserTemplate::for_fields(
                effect
                    .tables_touched
                    .iter()
                    .filter_map(|id| pipeline.table(*id))
                    .flat_map(|t| t.entries())
                    .flat_map(|e| {
                        e.flow_match
                            .fields()
                            .iter()
                            .map(|mf| mf.field)
                            .chain(crate::compile::instruction_fields(e))
                    }),
            );
            needed.depth() <= datapath.parser().depth()
        };
        if all_tables_known && parser_still_sufficient && !effect.tables_touched.is_empty() {
            let pipeline = self.pipeline.read();
            for id in &effect.tables_touched {
                let table = pipeline.table(*id).expect("touched table exists");
                // The paper keeps a shared template library; re-interning per
                // rebuild only affects sharing across tables, not correctness.
                let mut store = ActionStore::new();
                let rebuilt = compile_table(table, &self.config, &mut store);
                let slot = datapath.slot(*id).expect("checked above");
                *slot.table.write() = rebuilt;
            }
            self.updates.table_rebuilds.record(0);
            return Ok(effect);
        }

        // 4. Structural change: full recompilation, swapped in atomically.
        let recompiled = {
            let pipeline = self.pipeline.read();
            compile(&pipeline, &self.config)
        };
        match recompiled {
            Ok(dp) => {
                *self.datapath.write() = Arc::new(dp);
                self.updates.full_recompiles.record(0);
                Ok(effect)
            }
            Err(_) => {
                // Compilation failure: roll the declarative change back so the
                // running datapath and the pipeline stay consistent
                // (transactional updates, §3.4).
                Err(FlowModError::TableRequired)
            }
        }
    }

    /// Attempts an in-place template update for a single-table Add/Delete.
    fn try_incremental(&self, fm: &FlowMod, effect: &FlowModEffect) -> bool {
        if effect.tables_touched.len() != 1 {
            return false;
        }
        let table_id = effect.tables_touched[0];
        let datapath = self.datapath();
        let Some(slot) = datapath.slot(table_id) else {
            return false;
        };
        if matches!(fm.command, FlowModCommand::Add) {
            // An added entry may need a deeper parser than the datapath was
            // compiled with — not only through its match fields (the template
            // shape checks below pin those) but through action-written fields:
            // a compiled SetField(IpDscp)/DecNwTtl silently no-ops when the
            // parser never located the IP header. Escalate instead.
            let entry = openflow::FlowEntry::new(
                fm.flow_match.clone(),
                fm.priority,
                fm.instructions.clone(),
            );
            let needed = crate::templates::parser::ParserTemplate::for_fields(
                entry
                    .flow_match
                    .fields()
                    .iter()
                    .map(|mf| mf.field)
                    .chain(crate::compile::instruction_fields(&entry)),
            );
            if needed.depth() > datapath.parser().depth() {
                return false;
            }
        }
        let mut table = slot.table.write();
        match (&mut *table, fm.command) {
            (CompiledTable::CompoundHash(hash), FlowModCommand::Add) => {
                // The new entry must have exactly the template's field shape.
                let Some(values) = hash_key_values(hash.fields(), fm) else {
                    return false;
                };
                let mut store = ActionStore::new();
                let entry = openflow::FlowEntry::new(
                    fm.flow_match.clone(),
                    fm.priority,
                    fm.instructions.clone(),
                );
                let instrs = compile_entry_instrs(&entry, &mut store);
                hash.insert(&values, instrs);
                true
            }
            (CompiledTable::CompoundHash(hash), FlowModCommand::DeleteStrict) => {
                match hash_key_values(hash.fields(), fm) {
                    Some(values) => hash.remove(&values),
                    None => false,
                }
            }
            (CompiledTable::Lpm(lpm), FlowModCommand::Add) => {
                let Some((prefix, len)) = lpm_rule(lpm.field(), fm) else {
                    return false;
                };
                let mut store = ActionStore::new();
                let entry = openflow::FlowEntry::new(
                    fm.flow_match.clone(),
                    fm.priority,
                    fm.instructions.clone(),
                );
                let instrs = compile_entry_instrs(&entry, &mut store);
                lpm.insert(prefix, len, instrs).is_ok()
            }
            (CompiledTable::Lpm(lpm), FlowModCommand::DeleteStrict) => {
                match lpm_rule(lpm.field(), fm) {
                    Some((prefix, len)) => lpm.remove(prefix, len).is_ok(),
                    None => false,
                }
            }
            _ => false,
        }
    }

    fn handle_packet_in(&self, packet: Packet) {
        let decisions = {
            let mut controller = self.controller.lock();
            controller.packet_in(PacketIn {
                packet,
                reason: PacketInReason::NoMatch,
                table_id: 0,
            })
        };
        for decision in decisions {
            match decision {
                ControllerDecision::FlowMod(fm) => {
                    let _ = self.flow_mod(&fm);
                }
                ControllerDecision::PacketOut(mut po) => {
                    let mut key = FlowKey::extract(&po.packet);
                    let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                }
                ControllerDecision::Drop => {}
            }
        }
    }

    /// Number of packet-ins the controller has handled.
    pub fn controller_packet_ins(&self) -> u64 {
        self.controller.lock().packet_in_count()
    }
}

/// Extracts the per-field key values of a flow-mod whose match has exactly
/// the compound-hash template's shape.
fn hash_key_values(shape: &[(Field, FieldValue)], fm: &FlowMod) -> Option<Vec<FieldValue>> {
    let fields = fm.flow_match.fields();
    if fields.len() != shape.len() {
        return None;
    }
    let mut values = Vec::with_capacity(shape.len());
    for (mf, (field, mask)) in fields.iter().zip(shape) {
        if mf.field != *field || mf.mask != *mask {
            return None;
        }
        values.push(mf.value);
    }
    Some(values)
}

/// Extracts the (prefix, length) of a flow-mod targeting an LPM table.
fn lpm_rule(field: Field, fm: &FlowMod) -> Option<(u32, u8)> {
    let fields = fm.flow_match.fields();
    if fields.len() != 1 || fields[0].field != field {
        return None;
    }
    let len = fields[0].prefix_len()? as u8;
    Some((fields[0].value as u32, len))
}

/// Compiles the instruction block of a standalone entry (used by the
/// incremental update paths).
fn compile_entry_instrs(
    entry: &openflow::FlowEntry,
    store: &mut ActionStore,
) -> Arc<crate::templates::table::CompiledInstrs> {
    // Reuse the compiler's logic through a single-entry direct-code build.
    let mut table = openflow::FlowTable::new(u32::MAX);
    table.insert(entry.clone());
    let compiled = compile_table(
        &table,
        &CompilerConfig {
            direct_code_limit: usize::MAX,
            ..CompilerConfig::default()
        },
        store,
    );
    match compiled {
        CompiledTable::DirectCode(t) => Arc::clone(&t.entries()[0].instrs),
        _ => unreachable!("single-entry table always compiles to direct code"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TemplateKind;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, FlowEntry};
    use pkt::builder::PacketBuilder;

    fn l2_pipeline(n: u64) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..n {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn mac_packet(i: u64) -> Packet {
        PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0000 + i).octets())
            .build()
    }

    #[test]
    fn incremental_hash_add_and_delete() {
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        assert_eq!(
            switch.datapath().template_kinds(),
            vec![(0, TemplateKind::CompoundHash)]
        );

        // Unknown MAC drops (catch-all).
        assert!(switch.process(&mut mac_packet(500)).is_drop());

        // Add it incrementally.
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 500)),
            10,
            terminal_actions(vec![Action::Output(3)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.packets(), 1);
        assert_eq!(switch.updates.table_rebuilds.packets(), 0);
        assert_eq!(switch.process(&mut mac_packet(500)).outputs, vec![3]);

        // Strict delete, also incremental.
        let del = FlowMod::delete_strict(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 500)),
            10,
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.incremental.packets(), 2);
        assert!(switch.process(&mut mac_packet(500)).is_drop());
    }

    #[test]
    fn non_strict_delete_rebuilds_table() {
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0001u64)),
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.table_rebuilds.packets(), 1);
        assert!(switch.process(&mut mac_packet(1)).is_drop());
        assert_eq!(switch.process(&mut mac_packet(2)).outputs, vec![2]);
    }

    #[test]
    fn prerequisite_violation_falls_back_to_another_template() {
        // Adding a port-matching entry to a MAC hash table breaks the global
        // mask prerequisite: the table is rebuilt with a fallback template
        // but keeps answering correctly. Because the new entry also deepens
        // the required parser (L2 -> L4), this particular change escalates to
        // a full recompile rather than a per-table swap.
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            50,
            terminal_actions(vec![Action::Output(9)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.full_recompiles.packets(), 1);
        let kinds = switch.datapath().template_kinds();
        assert_eq!(kinds[0].1, TemplateKind::LinkedList);

        let mut http = PacketBuilder::tcp().tcp_dst(80).build();
        assert_eq!(switch.process(&mut http).outputs, vec![9]);
        assert_eq!(switch.process(&mut mac_packet(2)).outputs, vec![2]);

        // A same-shape MAC delete afterwards is still handled per-table.
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0003u64)),
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.table_rebuilds.packets(), 1);
        assert!(switch.process(&mut mac_packet(3)).is_drop());
    }

    #[test]
    fn flow_mod_with_deeper_action_field_escalates_past_incremental() {
        // Regression: a flow-mod whose *match* fits the compiled template
        // shape but whose *actions* write a deeper header (SetField(IpDscp)
        // on an L2-compiled datapath) used to be absorbed incrementally,
        // leaving the L2-only parser in place — the compiled set-field then
        // silently no-opped while the declarative pipeline rewrote packets.
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        assert_eq!(
            switch.datapath().parser().depth(),
            pkt::parser::ParseDepth::L2
        );

        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 700)),
            10,
            terminal_actions(vec![Action::SetField(Field::IpDscp, 10), Action::Output(3)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.packets(), 0);
        assert_eq!(switch.updates.full_recompiles.packets(), 1);
        assert!(switch.datapath().parser().depth() >= pkt::parser::ParseDepth::L3);

        // The compiled fast path must now actually rewrite the packet,
        // agreeing with the reference interpreter.
        let mut compiled = mac_packet(700);
        let verdict = switch.process(&mut compiled);
        assert_eq!(verdict.outputs, vec![3]);
        let mut reference = mac_packet(700);
        switch.with_pipeline(|p| p.process(&mut reference));
        assert_eq!(compiled.data(), reference.data());
        // TOS byte = DSCP << 2 right after the 14-byte Ethernet header.
        assert_eq!(compiled.data()[15], 10 << 2);
    }

    #[test]
    fn structural_change_forces_full_recompile() {
        let switch = EswitchRuntime::compile(l2_pipeline(8)).unwrap();
        // Install an entry into a table that did not exist at compile time.
        let fm = FlowMod::add(
            5,
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(1)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.full_recompiles.packets(), 1);
        assert!(switch.datapath().slot(5).is_some());
    }

    #[test]
    fn lpm_incremental_updates() {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..16u32 {
            // Mixed prefix lengths keep the table a genuine LPM table (a
            // uniform-mask table would legitimately prefer the hash template).
            let len = if i % 2 == 0 { 16 } else { 24 };
            t.insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, i as u8, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(i % 3)]),
            ));
        }
        let switch = EswitchRuntime::compile(p).unwrap();
        assert_eq!(
            switch.datapath().template_kinds(),
            vec![(0, TemplateKind::Lpm)]
        );

        let mut pkt = PacketBuilder::udp().ipv4_dst([172, 16, 0, 1]).build();
        assert!(switch.process(&mut pkt).is_drop());

        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([172, 16, 0, 0])),
                12,
            ),
            12,
            terminal_actions(vec![Action::Output(7)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.packets(), 1);
        let mut pkt = PacketBuilder::udp().ipv4_dst([172, 16, 0, 1]).build();
        assert_eq!(switch.process(&mut pkt).outputs, vec![7]);
    }

    #[test]
    fn packets_flow_during_updates_from_another_thread() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let switch = Arc::new(EswitchRuntime::compile(l2_pipeline(64)).unwrap());
        let stop = Arc::new(AtomicBool::new(false));

        let updater = {
            let switch = Arc::clone(&switch);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 1000u64;
                while !stop.load(Ordering::Relaxed) {
                    let fm = FlowMod::add(
                        0,
                        FlowMatch::any()
                            .with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                        10,
                        terminal_actions(vec![Action::Output(1)]),
                    );
                    switch.flow_mod(&fm).unwrap();
                    i += 1;
                }
                i - 1000
            })
        };

        // Meanwhile, known flows keep being forwarded correctly.
        for _ in 0..2000 {
            let verdict = switch.process(&mut mac_packet(5));
            assert_eq!(verdict.outputs, vec![1]); // 5 % 4 == 1
        }
        stop.store(true, Ordering::Relaxed);
        let updates = updater.join().unwrap();
        assert!(updates > 0, "updater made no progress");
    }

    #[test]
    fn reactive_controller_populates_tables() {
        // A miss-to-controller pipeline where the controller installs MAC
        // rules reactively; the second packet takes the compiled fast path.
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        let controller = openflow::controller::FnController::new(|pi: PacketIn| {
            let key = FlowKey::extract(&pi.packet);
            vec![ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output(2)]),
            ))]
        });
        let switch =
            EswitchRuntime::with_config(p, CompilerConfig::default(), Box::new(controller))
                .unwrap();

        let mut first = mac_packet(42);
        assert!(switch.process(&mut first).to_controller);
        let mut second = mac_packet(42);
        let verdict = switch.process(&mut second);
        assert_eq!(verdict.outputs, vec![2]);
        assert!(!verdict.to_controller);
        assert_eq!(switch.controller_packet_ins(), 1);
    }
}
