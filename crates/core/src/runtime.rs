//! The ESWITCH runtime: compiled fast path + flow-mod handling with
//! per-table, mostly non-destructive updates (§3.4 of the paper).
//!
//! Updates are handled at three escalating granularities:
//!
//! 1. **Incremental** — templates that support in-place updates (compound
//!    hash, LPM) absorb a single-entry add/delete without rebuilding;
//! 2. **Per-table rebuild** — the affected table is recompiled side by side
//!    and swapped into its trampoline slot atomically while other tables keep
//!    serving packets (also covers template fallback when a prerequisite
//!    breaks);
//! 3. **Full recompile** — only when the pipeline's *structure* changes
//!    (a table appears or disappears).
//!
//! Either way the update is transactional: the flow-mod is applied to the
//! declarative pipeline first, and the compiled state is derived from it, so
//! a failed compilation leaves the previous datapath running untouched.

use std::sync::Arc;

use netdev::sync::atomic::{AtomicBool, Ordering};
use parking_lot::{Mutex, RwLock};

use openflow::action::apply_action_list;
use openflow::flow_mod::{apply_flow_mod_undoable, FlowModEffect, FlowModError};
use openflow::instruction::{instructions_can_punt, pipeline_can_punt};
use openflow::{
    Controller, ControllerDecision, FlowKey, FlowMod, NullController, PacketIn, PacketInReason,
    Pipeline, Verdict,
};
use pkt::Packet;

use crate::analysis::CompilerConfig;
use crate::compile::{compile, CompileError, CompiledDatapath};
use crate::reactive::{punt_signature, IngressSnapshot, PuntGate};
use crate::update::{Absorbed, UpdateClass, UpdateCounter, UpdatePlanner};

/// Statistics about how updates were absorbed; the Fig. 17/18 harnesses read
/// these to attribute update cost. Counted in updates and flow entries
/// touched — meaningful units, unlike the traffic counters' packets/bytes.
#[derive(Debug, Default)]
pub struct UpdateStats {
    /// Flow-mods absorbed by an in-place template update.
    pub incremental: UpdateCounter,
    /// Flow-mods absorbed by rebuilding only the touched tables.
    pub table_rebuilds: UpdateCounter,
    /// Flow-mods that forced a full datapath recompilation.
    pub full_recompiles: UpdateCounter,
}

impl UpdateStats {
    /// Records one absorbed flow-mod at the given ladder tier.
    pub fn record(&self, class: UpdateClass, entries: u64) {
        match class {
            UpdateClass::Incremental => self.incremental.record(entries),
            UpdateClass::PerTable => self.table_rebuilds.record(entries),
            UpdateClass::Full => self.full_recompiles.record(entries),
        }
    }
}

/// The ESWITCH switch runtime.
pub struct EswitchRuntime {
    pipeline: RwLock<Pipeline>,
    datapath: RwLock<Arc<CompiledDatapath>>,
    config: CompilerConfig,
    controller: Mutex<Box<dyn Controller>>,
    /// True when some path through the pipeline can punt to the controller.
    /// Monotone OR (a deleted punt path leaves it conservatively set): gates
    /// the per-burst ingress-frame snapshot, so purely proactive pipelines
    /// pay nothing for packet-in fidelity.
    may_punt: AtomicBool,
    /// Punt deduplication: one in-flight packet-in per flow (shared logic
    /// with the sharded runtime's async controller channel).
    gate: PuntGate,
    /// Reused ingress-frame snapshot for the batched path; `try_lock` +
    /// local fallback, so concurrent batchers degrade to allocating
    /// instead of serialising on each other.
    ingress_scratch: Mutex<IngressSnapshot>,
    /// Update accounting.
    pub updates: UpdateStats,
}

impl EswitchRuntime {
    /// Compiles `pipeline` with the default configuration and a drop-all
    /// controller.
    pub fn compile(pipeline: Pipeline) -> Result<Self, CompileError> {
        Self::with_config(
            pipeline,
            CompilerConfig::default(),
            Box::new(NullController::new()),
        )
    }

    /// Compiles `pipeline` with an explicit configuration and controller.
    pub fn with_config(
        mut pipeline: Pipeline,
        config: CompilerConfig,
        controller: Box<dyn Controller>,
    ) -> Result<Self, CompileError> {
        if config.enable_decomposition {
            pipeline = crate::decompose::decompose_pipeline(&pipeline).pipeline;
        }
        let datapath = compile(&pipeline, &config)?;
        let may_punt = pipeline_can_punt(&pipeline);
        Ok(EswitchRuntime {
            pipeline: RwLock::new(pipeline),
            datapath: RwLock::new(Arc::new(datapath)),
            config,
            controller: Mutex::new(controller),
            may_punt: AtomicBool::new(may_punt),
            gate: PuntGate::default(),
            ingress_scratch: Mutex::new(IngressSnapshot::default()),
            updates: UpdateStats::default(),
        })
    }

    /// The compiler configuration in effect.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// A snapshot handle to the current compiled datapath (cheap Arc clone).
    pub fn datapath(&self) -> Arc<CompiledDatapath> {
        Arc::clone(&self.datapath.read())
    }

    /// Read access to the declarative pipeline.
    pub fn with_pipeline<R>(&self, f: impl FnOnce(&Pipeline) -> R) -> R {
        f(&self.pipeline.read())
    }

    /// Processes one packet through the compiled fast path. Packets punted to
    /// the controller are handed over synchronously, and any flow-mods the
    /// controller answers with are applied before returning (reactive
    /// provisioning, as the access-gateway use case requires). The packet-in
    /// carries the *ingress* frame — apply-actions executed before the punt
    /// rewrite the forwarded packet, never the controller's copy.
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        self.process_ct(packet, &mut openflow::ct::NoCt)
    }

    /// Like [`EswitchRuntime::process`] but with a live connection tracker
    /// for stateful (ct-action) pipelines. The tracker is the caller's —
    /// shard-local by construction — so the runtime itself stays free of
    /// connection state.
    pub fn process_ct(&self, packet: &mut Packet, ct: &mut dyn openflow::ct::ConnCtx) -> Verdict {
        let datapath = self.datapath();
        let ingress = self
            .may_punt
            .load(Ordering::Relaxed)
            .then(|| packet.clone());
        let verdict = datapath.process_ct(packet, ct);
        if verdict.to_controller {
            // `may_punt` is a monotone over-approximation of the compiled
            // state, so a punting verdict implies the snapshot exists; fall
            // back to the processed frame defensively rather than panic.
            let original = ingress.unwrap_or_else(|| packet.clone());
            let flow = punt_signature(&FlowKey::extract(&original));
            if self.gate.admit(flow) {
                self.handle_packet_in(original, verdict.punt_reason);
                self.gate.complete(flow);
            }
        }
        verdict
    }

    /// Processes a batch of packets through one datapath snapshot, appending
    /// one verdict per packet to `verdicts` (which is cleared first).
    ///
    /// The compiled-datapath handle is resolved once per batch (one
    /// `RwLock` read + `Arc` clone instead of one per packet); an update
    /// racing the batch lands in the *next* batch, which is exactly the
    /// trampoline-swap semantics of §3.4. Controller punts are collected and
    /// handed over after the burst so reactive flow-mods cannot stall the
    /// remaining packets of the burst mid-flight; each deferred packet-in
    /// carries that packet's ingress frame and punt reason, unaffected by
    /// anything processing did to the burst (its own rewrites included)
    /// after the frames were snapshotted.
    pub fn process_batch_into(&self, packets: &mut [Packet], verdicts: &mut Vec<Verdict>) {
        self.process_batch_into_ct(packets, verdicts, &mut openflow::ct::NoCt);
    }

    /// Batched processing with a live connection tracker (see
    /// [`EswitchRuntime::process_ct`]).
    pub fn process_batch_into_ct(
        &self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn openflow::ct::ConnCtx,
    ) {
        verdicts.clear();
        verdicts.reserve(packets.len());
        let datapath = self.datapath();
        // Snapshot the ingress frames up front when the pipeline can punt at
        // all: the deferred packet-ins must not observe mutations processing
        // makes to the burst. The snapshot buffers are reused across bursts
        // (a memcpy per packet, no steady-state allocation) and proactive
        // pipelines skip the copy entirely.
        let may_punt = self.may_punt.load(Ordering::Relaxed);
        let mut scratch_guard = if may_punt {
            self.ingress_scratch.try_lock()
        } else {
            None
        };
        let mut scratch_local: Option<IngressSnapshot> = None;
        if may_punt {
            let snapshot = match scratch_guard.as_deref_mut() {
                Some(shared) => shared,
                None => scratch_local.insert(IngressSnapshot::default()),
            };
            snapshot.capture(packets);
        }
        let mut punted_any = false;
        for p in packets.iter_mut() {
            let verdict = datapath.process_ct(p, ct);
            punted_any |= verdict.to_controller;
            verdicts.push(verdict);
        }
        if punted_any {
            // One packet-in per flow per burst: the gate stays closed for
            // the whole deferred punt group (the burst's "install in
            // flight" window), so a burst full of one missing flow raises
            // a single packet-in — shared dedup policy with the sharded
            // runtime's async channel. A suppressed packet whose only
            // disposition was the controller is simply not duplicated up —
            // the upcall-queue behaviour of a real switch.
            let snapshot: Option<&IngressSnapshot> =
                scratch_guard.as_deref().or(scratch_local.as_ref());
            let mut handled: Vec<u64> = Vec::new();
            for (i, v) in verdicts.iter().enumerate() {
                if v.to_controller {
                    // `may_punt` is monotone over the compiled state, so a
                    // punting verdict implies the snapshot exists; fall back
                    // to the processed frame defensively rather than panic.
                    let original = match snapshot {
                        Some(s) => s.packet(i),
                        None => packets[i].clone(),
                    };
                    let flow = punt_signature(&FlowKey::extract(&original));
                    if self.gate.admit(flow) {
                        handled.push(flow);
                        self.handle_packet_in(original, v.punt_reason);
                    }
                }
            }
            for flow in handled {
                self.gate.complete(flow);
            }
        }
    }

    /// Processes a batch of packets, returning per-packet verdicts.
    pub fn process_batch(&self, packets: &mut [Packet]) -> Vec<Verdict> {
        let mut verdicts = Vec::new();
        self.process_batch_into(packets, &mut verdicts);
        verdicts
    }

    /// Applies a flow-mod, updating the compiled datapath at the finest
    /// granularity that preserves correctness. The §3.4 ladder decision
    /// itself lives in the shared [`UpdatePlanner`]; this runtime merely
    /// executes the plan in place (trampoline semantics).
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, FlowModError> {
        // The pipeline write lock is held across apply + plan + execute (and
        // a possible undo), so concurrent flow-mods serialise: one caller's
        // rollback can never clobber another caller's acknowledged change.
        // Packet processing never takes this lock — it reads `datapath` only.
        let mut pipeline = self.pipeline.write();

        // 1. Update the declarative pipeline (the source of truth), keeping
        //    the undo log so a failed compilation can roll it back without
        //    having cloned anything up front. The punt-capability bit grows
        //    monotonically with it (a rolled-back punt path only leaves the
        //    bit conservatively set).
        let (effect, undo) = apply_flow_mod_undoable(&mut pipeline, fm)?;
        if instructions_can_punt(&fm.instructions) {
            self.may_punt.store(true, Ordering::Relaxed);
        }
        let entries = effect.entries_touched();
        if entries == 0 {
            // The flow-mod matched nothing (e.g. a non-strict delete with no
            // overlapping entries): the pipeline is unchanged, so the
            // compiled datapath is still exact — nothing to do.
            return Ok(effect);
        }

        // 2. Plan the cheapest absorbing tier; incremental edits land in
        //    the live datapath inside `absorb`, per-table rebuilds swap
        //    through the trampolines here.
        let datapath = self.datapath();
        let planner = UpdatePlanner::new(&self.config);
        match planner.absorb(&pipeline, &datapath, fm, &effect) {
            Absorbed::Incremental => {
                self.updates.record(UpdateClass::Incremental, entries);
                Ok(effect)
            }
            Absorbed::PerTable(rebuilt) => {
                self.swap_rebuilt_tables(&datapath, rebuilt);
                self.updates.record(UpdateClass::PerTable, entries);
                Ok(effect)
            }
            // 3. Structural change: full recompilation, swapped in
            //    atomically.
            Absorbed::Full => match compile(&pipeline, &self.config) {
                Ok(dp) => {
                    *self.datapath.write() = Arc::new(dp);
                    self.updates.record(UpdateClass::Full, entries);
                    Ok(effect)
                }
                Err(_) => {
                    // Compilation failure: roll the declarative change back
                    // so the running datapath and the pipeline stay
                    // consistent (transactional updates, §3.4).
                    undo.undo(&mut pipeline);
                    Err(FlowModError::TableRequired)
                }
            },
        }
    }

    /// Swaps freshly rebuilt tables into their trampoline slots while other
    /// tables keep serving packets.
    fn swap_rebuilt_tables(
        &self,
        datapath: &CompiledDatapath,
        rebuilt: Vec<(
            openflow::pipeline::TableId,
            crate::templates::table::CompiledTable,
        )>,
    ) {
        for (id, table) in rebuilt {
            let slot = datapath.slot(id).expect("planner checked the slot exists");
            *slot.table.write() = table;
        }
    }

    /// Raises one packet-in and applies the controller's decisions. Punt
    /// deduplication happens at the call sites, which own the in-flight
    /// window (per packet for `process`, per burst for the batch path).
    fn handle_packet_in(&self, packet: Packet, reason: PacketInReason) {
        let decisions = {
            let mut controller = self.controller.lock();
            controller.packet_in(PacketIn::new(packet, reason, 0))
        };
        for decision in decisions {
            match decision {
                ControllerDecision::FlowMod(fm) => {
                    let _ = self.flow_mod(&fm);
                }
                ControllerDecision::PacketOut(mut po) => {
                    if po.resubmit {
                        // OFPP_TABLE resubmit: one pass through the current
                        // datapath so the packet takes any rule the
                        // controller just installed. A punt from the
                        // re-injected packet is deliberately *not* recursed
                        // on — the next genuine miss re-punts.
                        let _ = self.datapath().process(&mut po.packet);
                    } else {
                        let mut key = FlowKey::extract(&po.packet);
                        let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                    }
                }
                ControllerDecision::Drop => {}
            }
        }
    }

    /// Number of packet-ins the controller has handled.
    pub fn controller_packet_ins(&self) -> u64 {
        self.controller.lock().packet_in_count()
    }

    /// The punt-deduplication gate (admitted/suppressed accounting).
    pub fn punt_gate(&self) -> &PuntGate {
        &self.gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TemplateKind;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry};
    use pkt::builder::PacketBuilder;

    fn l2_pipeline(n: u64) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..n {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn mac_packet(i: u64) -> Packet {
        PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0000 + i).octets())
            .build()
    }

    #[test]
    fn incremental_hash_add_and_delete() {
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        assert_eq!(
            switch.datapath().template_kinds(),
            vec![(0, TemplateKind::CompoundHash)]
        );

        // Unknown MAC drops (catch-all).
        assert!(switch.process(&mut mac_packet(500)).is_drop());

        // Add it incrementally.
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 500)),
            10,
            terminal_actions(vec![Action::Output(3)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.updates(), 1);
        assert_eq!(switch.updates.table_rebuilds.updates(), 0);
        assert_eq!(switch.process(&mut mac_packet(500)).outputs, vec![3]);

        // Strict delete, also incremental.
        let del = FlowMod::delete_strict(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 500)),
            10,
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.incremental.updates(), 2);
        assert!(switch.process(&mut mac_packet(500)).is_drop());
    }

    #[test]
    fn non_strict_delete_rebuilds_table() {
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0001u64)),
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.table_rebuilds.updates(), 1);
        assert!(switch.process(&mut mac_packet(1)).is_drop());
        assert_eq!(switch.process(&mut mac_packet(2)).outputs, vec![2]);
    }

    #[test]
    fn prerequisite_violation_falls_back_to_another_template() {
        // Adding a port-matching entry to a MAC hash table breaks the global
        // mask prerequisite: the table is rebuilt with a fallback template
        // but keeps answering correctly. Because the new entry also deepens
        // the required parser (L2 -> L4), this particular change escalates to
        // a full recompile rather than a per-table swap.
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            50,
            terminal_actions(vec![Action::Output(9)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.full_recompiles.updates(), 1);
        let kinds = switch.datapath().template_kinds();
        assert_eq!(kinds[0].1, TemplateKind::LinkedList);

        let mut http = PacketBuilder::tcp().tcp_dst(80).build();
        assert_eq!(switch.process(&mut http).outputs, vec![9]);
        assert_eq!(switch.process(&mut mac_packet(2)).outputs, vec![2]);

        // A same-shape MAC delete afterwards is still handled per-table.
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0003u64)),
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.table_rebuilds.updates(), 1);
        assert!(switch.process(&mut mac_packet(3)).is_drop());
    }

    #[test]
    fn flow_mod_with_deeper_action_field_escalates_past_incremental() {
        // Regression: a flow-mod whose *match* fits the compiled template
        // shape but whose *actions* write a deeper header (SetField(IpDscp)
        // on an L2-compiled datapath) used to be absorbed incrementally,
        // leaving the L2-only parser in place — the compiled set-field then
        // silently no-opped while the declarative pipeline rewrote packets.
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        assert_eq!(
            switch.datapath().parser().depth(),
            pkt::parser::ParseDepth::L2
        );

        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000u64 + 700)),
            10,
            terminal_actions(vec![Action::SetField(Field::IpDscp, 10), Action::Output(3)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.updates(), 0);
        assert_eq!(switch.updates.full_recompiles.updates(), 1);
        assert!(switch.datapath().parser().depth() >= pkt::parser::ParseDepth::L3);

        // The compiled fast path must now actually rewrite the packet,
        // agreeing with the reference interpreter.
        let mut compiled = mac_packet(700);
        let verdict = switch.process(&mut compiled);
        assert_eq!(verdict.outputs, vec![3]);
        let mut reference = mac_packet(700);
        switch.with_pipeline(|p| p.process(&mut reference));
        assert_eq!(compiled.data(), reference.data());
        // TOS byte = DSCP << 2 right after the 14-byte Ethernet header.
        assert_eq!(compiled.data()[15], 10 << 2);
    }

    #[test]
    fn structural_change_forces_full_recompile() {
        let switch = EswitchRuntime::compile(l2_pipeline(8)).unwrap();
        // Install an entry into a table that did not exist at compile time.
        let fm = FlowMod::add(
            5,
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(1)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.full_recompiles.updates(), 1);
        assert!(switch.datapath().slot(5).is_some());
    }

    #[test]
    fn failed_recompilation_rolls_the_pipeline_back() {
        // A structural flow-mod whose entry jumps to a nonexistent table
        // forces the full-recompile tier, which must fail — and the
        // declarative pipeline must be restored so the running datapath and
        // the pipeline stay consistent (§3.4's transactional updates).
        let switch = EswitchRuntime::compile(l2_pipeline(8)).unwrap();
        let fm = FlowMod::add(
            5,
            FlowMatch::any(),
            1,
            vec![openflow::Instruction::GotoTable(99)],
        );
        assert!(switch.flow_mod(&fm).is_err());
        assert_eq!(switch.updates.full_recompiles.updates(), 0);
        switch.with_pipeline(|p| {
            assert!(p.table(5).is_none(), "failed flow-mod left table 5 behind");
            assert!(p.validate().is_ok());
        });
        // The switch keeps forwarding with the old datapath.
        assert_eq!(switch.process(&mut mac_packet(2)).outputs, vec![2]);
    }

    #[test]
    fn update_counters_report_entries_touched() {
        let switch = EswitchRuntime::compile(l2_pipeline(32)).unwrap();
        // A wildcard delete removing two entries counts one per-table update
        // touching two entries.
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0001u64)),
        );
        switch.flow_mod(&del).unwrap();
        assert_eq!(switch.updates.table_rebuilds.updates(), 1);
        assert_eq!(switch.updates.table_rebuilds.entries(), 1);

        let add = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0900u64)),
            10,
            terminal_actions(vec![Action::Output(1)]),
        );
        switch.flow_mod(&add).unwrap();
        assert_eq!(switch.updates.incremental.updates(), 1);
        assert_eq!(switch.updates.incremental.entries(), 1);
    }

    #[test]
    fn lpm_incremental_updates() {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..16u32 {
            // Mixed prefix lengths keep the table a genuine LPM table (a
            // uniform-mask table would legitimately prefer the hash template).
            let len = if i % 2 == 0 { 16 } else { 24 };
            t.insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, i as u8, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(i % 3)]),
            ));
        }
        let switch = EswitchRuntime::compile(p).unwrap();
        assert_eq!(
            switch.datapath().template_kinds(),
            vec![(0, TemplateKind::Lpm)]
        );

        let mut pkt = PacketBuilder::udp().ipv4_dst([172, 16, 0, 1]).build();
        assert!(switch.process(&mut pkt).is_drop());

        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([172, 16, 0, 0])),
                12,
            ),
            12,
            terminal_actions(vec![Action::Output(7)]),
        );
        switch.flow_mod(&fm).unwrap();
        assert_eq!(switch.updates.incremental.updates(), 1);
        let mut pkt = PacketBuilder::udp().ipv4_dst([172, 16, 0, 1]).build();
        assert_eq!(switch.process(&mut pkt).outputs, vec![7]);
    }

    #[test]
    fn packets_flow_during_updates_from_another_thread() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let switch = Arc::new(EswitchRuntime::compile(l2_pipeline(64)).unwrap());
        let stop = Arc::new(AtomicBool::new(false));

        let updater = {
            let switch = Arc::clone(&switch);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 1000u64;
                while !stop.load(Ordering::Relaxed) {
                    let fm = FlowMod::add(
                        0,
                        FlowMatch::any()
                            .with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                        10,
                        terminal_actions(vec![Action::Output(1)]),
                    );
                    switch.flow_mod(&fm).unwrap();
                    i += 1;
                }
                i - 1000
            })
        };

        // Meanwhile, known flows keep being forwarded correctly.
        for _ in 0..2000 {
            let verdict = switch.process(&mut mac_packet(5));
            assert_eq!(verdict.outputs, vec![1]); // 5 % 4 == 1
        }
        stop.store(true, Ordering::Relaxed);
        let updates = updater.join().unwrap();
        assert!(updates > 0, "updater made no progress");
    }

    #[test]
    fn deferred_batch_punts_carry_ingress_frame_and_reason() {
        // Regression: the batched runtime defers punts to burst end, after
        // processing has rewritten the burst's frames in place. The deferred
        // PacketIn must carry each punted packet's *ingress* bytes and its
        // faithful reason — here packet 0 is rewritten (SetField) and then
        // punted by an explicit ToController action, while packet 1 punts
        // via a plain table miss later in the same burst.
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            10,
            terminal_actions(vec![
                Action::SetField(Field::IpDscp, 42),
                Action::ToController,
            ]),
        ));
        let seen: Arc<parking_lot::Mutex<Vec<PacketIn>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let controller = openflow::controller::FnController::new(move |pi: PacketIn| {
            sink.lock().push(pi);
            vec![ControllerDecision::Drop]
        });
        let switch =
            EswitchRuntime::with_config(p, CompilerConfig::default(), Box::new(controller))
                .unwrap();

        let mut batch = vec![
            PacketBuilder::tcp().tcp_dst(80).build(),
            PacketBuilder::udp().udp_dst(53).build(),
        ];
        let ingress: Vec<Packet> = batch.clone();
        let verdicts = switch.process_batch(&mut batch);
        assert!(verdicts[0].to_controller && verdicts[1].to_controller);

        // The forwarded packet 0 was rewritten in place (TOS byte = DSCP<<2
        // right behind the 14-byte Ethernet header)...
        assert_eq!(batch[0].data()[15], 42 << 2);
        assert_ne!(batch[0].data(), ingress[0].data());

        // ...but both deferred packet-ins carry the ingress frames and the
        // faithful reasons.
        let events = seen.lock();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].packet.data(), ingress[0].data());
        assert_eq!(events[0].reason, PacketInReason::Action);
        assert_eq!(events[1].packet.data(), ingress[1].data());
        assert_eq!(events[1].reason, PacketInReason::NoMatch);
    }

    #[test]
    fn duplicate_punts_of_one_flow_are_suppressed_within_a_burst() {
        // Three packets of the same missing flow plus one of another flow in
        // one burst: the punt gate admits one packet-in per flow while the
        // install is in flight and counts the rest as suppressed.
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        let switch = EswitchRuntime::with_config(
            p,
            CompilerConfig::default(),
            Box::new(NullController::new()),
        )
        .unwrap();

        let mut batch = vec![mac_packet(1), mac_packet(1), mac_packet(1), mac_packet(2)];
        switch.process_batch(&mut batch);
        assert_eq!(switch.controller_packet_ins(), 2, "one packet-in per flow");
        assert_eq!(switch.punt_gate().admitted(), 2);
        assert_eq!(switch.punt_gate().suppressed(), 2);
        // The installs (here: drops) completed, so the flows re-arm: the
        // next miss punts again.
        let mut again = vec![mac_packet(1)];
        switch.process_batch(&mut again);
        assert_eq!(switch.controller_packet_ins(), 3);
    }

    #[test]
    fn reactive_controller_populates_tables() {
        // A miss-to-controller pipeline where the controller installs MAC
        // rules reactively; the second packet takes the compiled fast path.
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        let controller = openflow::controller::FnController::new(|pi: PacketIn| {
            let key = FlowKey::extract(&pi.packet);
            vec![ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output(2)]),
            ))]
        });
        let switch =
            EswitchRuntime::with_config(p, CompilerConfig::default(), Box::new(controller))
                .unwrap();

        let mut first = mac_packet(42);
        assert!(switch.process(&mut first).to_controller);
        let mut second = mac_packet(42);
        let verdict = switch.process(&mut second);
        assert_eq!(verdict.outputs, vec![2]);
        assert!(!verdict.to_controller);
        assert_eq!(switch.controller_packet_ins(), 1);
    }
}
