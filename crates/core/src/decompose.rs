//! Flow table decomposition (§3.2, Figs. 5–6, and the Appendix).
//!
//! Complex single-table pipelines that would only fit the slow linked-list
//! template are rewritten into an equivalent multi-stage pipeline whose
//! tables each match on a single field — and therefore fit the exact-match
//! (compound hash) template. The rewrite follows the greedy heuristic of
//! Fig. 6: pick the column of minimal key diversity, split the table along
//! it (wildcard rows are replicated into every sub-table in priority order),
//! and recurse. Finding the *minimum* number of regular tables is coNP-hard
//! (Appendix Theorem 1, reproduced in [`sat`]), which is why a heuristic is
//! the right tool.

pub mod sat;

use std::collections::BTreeSet;

use openflow::field::{Field, FieldValue};
use openflow::flow_match::FlowMatch;
use openflow::instruction::Instruction;
use openflow::pipeline::TableId;
use openflow::{FlowEntry, FlowTable, Pipeline};

/// Statistics of one decomposition run, used by the §3.2 ACL experiment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Tables in the input pipeline.
    pub input_tables: usize,
    /// Flow entries in the input pipeline.
    pub input_entries: usize,
    /// Tables in the decomposed pipeline.
    pub output_tables: usize,
    /// Flow entries in the decomposed pipeline.
    pub output_entries: usize,
    /// Tables that were already template-friendly and returned intact.
    pub untouched_tables: usize,
}

/// Result of decomposing a pipeline.
#[derive(Debug, Clone)]
pub struct DecomposedPipeline {
    /// The rewritten pipeline.
    pub pipeline: Pipeline,
    /// Decomposition statistics.
    pub stats: DecomposeStats,
}

/// A table is *regular* (in the Appendix's sense, generalised to our template
/// library) when it already fits one of the fast templates: at most a handful
/// of entries, a uniform exact-match shape, or single-field prefix rules.
fn is_template_friendly(table: &FlowTable, config: &crate::analysis::CompilerConfig) -> bool {
    crate::analysis::select_template(table, config) != crate::analysis::TemplateKind::LinkedList
}

/// Decomposes a single flow table into a chain of single-field exact-match
/// tables, returning the new tables. `next_id` supplies fresh table ids; the
/// first returned table keeps the original table's id so that incoming
/// `goto_table` references stay valid.
///
/// Entries whose instructions are preserved verbatim on the leaf tables;
/// intermediate tables link stages with `goto_table`.
pub fn decompose_table(table: &FlowTable, next_id: &mut TableId) -> Vec<FlowTable> {
    let entries: Vec<FlowEntry> = table.entries().to_vec();
    let mut out = Vec::new();
    decompose_rec(table.id, table, entries, next_id, &mut out);
    out
}

/// Recursive step: DECOMPOSE(τ) of Fig. 6.
fn decompose_rec(
    id: TableId,
    original: &FlowTable,
    entries: Vec<FlowEntry>,
    next_id: &mut TableId,
    out: &mut Vec<FlowTable>,
) {
    // 1. Distinct keys per column (field), over the fields actually used.
    //    Only columns whose every present match is exact are splittable — the
    //    simplified exposition of Fig. 6 disallows arbitrary masks, and a
    //    masked column cannot be dispatched on with exact-match goto entries.
    let used_fields: BTreeSet<Field> = entries
        .iter()
        .flat_map(|e| e.flow_match.fields().iter().map(|mf| mf.field))
        .collect();
    let fields: BTreeSet<Field> = used_fields
        .into_iter()
        .filter(|f| {
            entries
                .iter()
                .filter_map(|e| e.flow_match.field(*f))
                .all(|mf| mf.is_exact())
        })
        .collect();

    // Base case: the remaining matches span at most one splittable field, or
    // nothing can be split (masked columns only) — emit the table as a leaf.
    let remaining_fields: BTreeSet<Field> = entries
        .iter()
        .flat_map(|e| e.flow_match.fields().iter().map(|mf| mf.field))
        .collect();
    if remaining_fields.len() <= 1 || fields.is_empty() {
        let mut table = FlowTable::named(id, format!("{}-leaf", original.name));
        table.miss = original.miss;
        table.set_entries(entries);
        out.push(table);
        return;
    }

    // 2. Column of minimal diversity.
    let (best_field, keys) = fields
        .iter()
        .map(|f| {
            let keys: BTreeSet<Option<FieldValue>> = entries
                .iter()
                .map(|e| e.flow_match.field(*f).map(|mf| mf.value))
                .filter(Option::is_some)
                .collect();
            (*f, keys)
        })
        .min_by_key(|(_, keys)| keys.len())
        .expect("at least two fields");

    // 3. One sub-table per distinct key of the chosen column.
    let mut subtables: Vec<(FieldValue, Vec<FlowEntry>)> =
        keys.iter().flatten().map(|k| (*k, Vec::new())).collect();
    // A separate sub-table for rows that wildcard the chosen column entirely.
    let mut wildcard_rows: Vec<FlowEntry> = Vec::new();

    // 4. Distribute rows: exact rows go to their key's sub-table, wildcard
    //    rows go to every sub-table (and to the wildcard sub-table), both
    //    with the chosen column stripped.
    for entry in &entries {
        let stripped = strip_field(entry, best_field);
        match entry.flow_match.field(best_field) {
            Some(mf) => {
                let slot = subtables
                    .iter_mut()
                    .find(|(k, _)| *k == mf.value)
                    .expect("key collected above");
                slot.1.push(stripped);
            }
            None => {
                for (_, rows) in subtables.iter_mut() {
                    rows.push(stripped.clone());
                }
                wildcard_rows.push(stripped);
            }
        }
    }

    // 5. The table for `id` now matches only on `best_field`, dispatching to
    //    the sub-tables.
    let mut dispatch = FlowTable::named(id, format!("{}-{:?}", original.name, best_field));
    dispatch.miss = original.miss;
    let mut pending: Vec<(TableId, Vec<FlowEntry>)> = Vec::new();
    for (key, rows) in subtables {
        let sub_id = *next_id;
        *next_id += 1;
        dispatch.insert(FlowEntry::new(
            FlowMatch::any().with_exact(best_field, key),
            10,
            vec![Instruction::GotoTable(sub_id)],
        ));
        pending.push((sub_id, rows));
    }
    if !wildcard_rows.is_empty() {
        let sub_id = *next_id;
        *next_id += 1;
        dispatch.insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            vec![Instruction::GotoTable(sub_id)],
        ));
        pending.push((sub_id, wildcard_rows));
    }
    out.push(dispatch);

    // 6. Recurse into every sub-table.
    for (sub_id, rows) in pending {
        decompose_rec(sub_id, original, rows, next_id, out);
    }
}

/// Returns a copy of `entry` with the match on `field` removed.
fn strip_field(entry: &FlowEntry, field: Field) -> FlowEntry {
    let mut flow_match = entry.flow_match.clone();
    flow_match.remove_field(field);
    FlowEntry::new(flow_match, entry.priority, entry.instructions.clone()).with_cookie(entry.cookie)
}

/// Decomposes every template-unfriendly table of a pipeline, leaving friendly
/// tables untouched ("in essentially all cases our decomposer simply returned
/// its input intact" for production pipelines).
pub fn decompose_pipeline(pipeline: &Pipeline) -> DecomposedPipeline {
    decompose_pipeline_with(pipeline, &crate::analysis::CompilerConfig::default())
}

/// Like [`decompose_pipeline`] but with an explicit compiler configuration
/// (the direct-code limit decides which tables count as already friendly).
pub fn decompose_pipeline_with(
    pipeline: &Pipeline,
    config: &crate::analysis::CompilerConfig,
) -> DecomposedPipeline {
    let mut stats = DecomposeStats {
        input_tables: pipeline.table_count(),
        input_entries: pipeline.entry_count(),
        ..Default::default()
    };
    // Fresh ids start above every existing id so goto references stay unique.
    let mut next_id: TableId = pipeline.tables().iter().map(|t| t.id).max().unwrap_or(0) + 1;
    let mut out = Pipeline::new();
    for table in pipeline.tables() {
        if is_template_friendly(table, config) {
            stats.untouched_tables += 1;
            out.add_table(table.clone());
            continue;
        }
        for new_table in decompose_table(table, &mut next_id) {
            out.add_table(new_table);
        }
    }
    stats.output_tables = out.table_count();
    stats.output_entries = out.entry_count();
    DecomposedPipeline {
        pipeline: out,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::CompilerConfig;
    use openflow::instruction::terminal_actions;
    use openflow::Action;
    use pkt::builder::PacketBuilder;
    use pkt::Packet;

    /// The Fig. 5a example table: three fields, where decomposing along the
    /// tcp_dst column (diversity 2) is optimal.
    fn fig5_table() -> FlowTable {
        let mut t = FlowTable::new(0);
        let ips = [0x0a000001u32, 0x0a000002, 0x0a000003];
        // Rows: (ip_dst, tcp_dst, action port). The third row wildcards the
        // port, so the table fits no single-stage fast template and must be
        // decomposed (as in Fig. 5a).
        let rows: [(Option<u32>, Option<u16>, u32); 6] = [
            (Some(ips[0]), Some(80), 1),
            (Some(ips[1]), Some(80), 2),
            (Some(ips[2]), None, 3),
            (Some(ips[0]), Some(22), 4),
            (Some(ips[1]), Some(22), 5),
            (None, None, 6),
        ];
        for (i, (ip, port, out)) in rows.iter().enumerate() {
            let mut m = FlowMatch::any();
            if let Some(ip) = ip {
                m = m.with_exact(Field::Ipv4Dst, u128::from(*ip));
            }
            if let Some(port) = port {
                m = m.with_exact(Field::TcpDst, u128::from(*port));
            }
            t.insert(FlowEntry::new(
                m,
                (100 - i) as u16,
                terminal_actions(vec![Action::Output(*out)]),
            ));
        }
        t
    }

    fn semantically_equivalent(a: &Pipeline, b: &Pipeline, packets: &[Packet]) {
        for (i, p) in packets.iter().enumerate() {
            let mut x = p.clone();
            let mut y = p.clone();
            assert_eq!(
                a.process(&mut x).decision(),
                b.process(&mut y).decision(),
                "packet {i} diverged"
            );
        }
    }

    fn fig5_packets() -> Vec<Packet> {
        let mut packets = Vec::new();
        for ip_last in 1..=4u8 {
            for port in [80u16, 22, 443] {
                packets.push(
                    PacketBuilder::tcp()
                        .ipv4_dst([10, 0, 0, ip_last])
                        .tcp_dst(port)
                        .build(),
                );
            }
        }
        packets.push(PacketBuilder::udp().ipv4_dst([10, 0, 0, 1]).build());
        packets
    }

    #[test]
    fn fig5_decomposition_is_minimal_and_equivalent() {
        let table = fig5_table();
        let mut original = Pipeline::new();
        original.add_table(table.clone());

        let mut next_id = 1;
        let tables = decompose_table(&table, &mut next_id);
        // The optimal decomposition of Fig. 5c: the tcp_dst dispatch table
        // plus one table per distinct port key and one for the wildcard row —
        // 4 tables, not the 9 the ip_dst-first order would give.
        assert_eq!(tables.len(), 4);

        let mut decomposed = Pipeline::new();
        for t in tables {
            decomposed.add_table(t);
        }
        decomposed.validate().unwrap();
        semantically_equivalent(&original, &decomposed, &fig5_packets());

        // Every resulting table is single-field (regular), hence fits the
        // exact-match template family.
        for t in decomposed.tables() {
            let fields: BTreeSet<Field> = t
                .entries()
                .iter()
                .flat_map(|e| e.flow_match.fields().iter().map(|mf| mf.field))
                .collect();
            assert!(fields.len() <= 1, "table {} not regular", t.id);
        }
    }

    #[test]
    fn friendly_pipelines_returned_intact() {
        // A pure L2 MAC table is already optimal: decomposition must not
        // touch it (the paper's observation about production pipelines).
        let mut p = Pipeline::with_tables(1);
        for i in 0..50u64 {
            p.table_mut(0).unwrap().insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(i)),
                10,
                terminal_actions(vec![Action::Output(1)]),
            ));
        }
        let result = decompose_pipeline(&p);
        assert_eq!(result.stats.untouched_tables, 1);
        assert_eq!(result.stats.output_tables, 1);
        assert_eq!(result.stats.input_entries, result.stats.output_entries);
    }

    #[test]
    fn firewall_single_table_promoted_to_multistage() {
        // The Fig. 1a firewall: with a direct-code limit of 0 (forcing the
        // issue for this small example) the single heterogeneous table is
        // decomposed into single-field stages and stays equivalent.
        let mut t = FlowTable::new(0);
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::InPort, 1),
            300,
            terminal_actions(vec![Action::Output(0)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::InPort, 0)
                .with_exact(Field::Ipv4Dst, u128::from(0xc0000201u32))
                .with_exact(Field::TcpDst, 80),
            200,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let mut original = Pipeline::new();
        original.add_table(t);

        let config = CompilerConfig {
            direct_code_limit: 0,
            ..CompilerConfig::default()
        };
        let result = decompose_pipeline_with(&original, &config);
        assert!(result.stats.output_tables > 1);
        result.pipeline.validate().unwrap();

        let packets = vec![
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(80)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(22)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 7])
                .tcp_dst(80)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(80)
                .in_port(1)
                .build(),
            PacketBuilder::udp().in_port(1).build(),
        ];
        semantically_equivalent(&original, &result.pipeline, &packets);
    }

    #[test]
    fn wildcard_rows_replicated_into_every_subtable() {
        // A wildcard row must keep applying no matter which key the packet
        // carries in the decomposed column.
        let mut t = FlowTable::new(0);
        t.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::TcpDst, 80)
                .with_exact(Field::Ipv4Dst, u128::from(0x0a000001u32)),
            100,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::Ipv4Dst, u128::from(0x0a000002u32)),
            90,
            terminal_actions(vec![Action::Output(2)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 22),
            80,
            terminal_actions(vec![Action::Output(3)]),
        ));
        let mut original = Pipeline::new();
        original.add_table(t.clone());

        let mut next_id = 1;
        let mut decomposed = Pipeline::new();
        for table in decompose_table(&t, &mut next_id) {
            decomposed.add_table(table);
        }
        decomposed.validate().unwrap();

        let packets = vec![
            PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, 1])
                .tcp_dst(80)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, 2])
                .tcp_dst(80)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, 2])
                .tcp_dst(22)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, 3])
                .tcp_dst(22)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([10, 0, 0, 3])
                .tcp_dst(443)
                .build(),
        ];
        semantically_equivalent(&original, &decomposed, &packets);
    }

    #[test]
    fn decomposed_pipeline_compiles_to_fast_templates() {
        // End to end: decompose then compile; no linked-list tables remain
        // for a table made of exact matches.
        let table = fig5_table();
        let mut original = Pipeline::new();
        original.add_table(table);
        let config = CompilerConfig {
            direct_code_limit: 0,
            ..CompilerConfig::default()
        };
        let result = decompose_pipeline_with(&original, &config);
        let dp = crate::compile::compile(&result.pipeline, &config).unwrap();
        for (id, kind) in dp.template_kinds() {
            assert_ne!(
                kind,
                crate::analysis::TemplateKind::LinkedList,
                "table {id} still linked-list"
            );
        }
        // The compiled decomposed pipeline agrees with the original too.
        for packet in fig5_packets() {
            let mut a = packet.clone();
            let mut b = packet.clone();
            assert_eq!(
                dp.process(&mut a).decision(),
                original.process(&mut b).decision()
            );
        }
    }

    #[test]
    fn stats_reflect_growth() {
        let table = fig5_table();
        let mut p = Pipeline::new();
        p.add_table(table);
        let config = CompilerConfig {
            direct_code_limit: 0,
            ..CompilerConfig::default()
        };
        let result = decompose_pipeline_with(&p, &config);
        assert_eq!(result.stats.input_tables, 1);
        assert_eq!(result.stats.input_entries, 6);
        assert_eq!(result.stats.output_tables, 4);
        assert!(result.stats.output_entries >= result.stats.input_entries);
        assert_eq!(result.stats.untouched_tables, 0);
    }
}
