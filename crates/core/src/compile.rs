//! Template specialization & linking: turning a declarative [`Pipeline`] into
//! a [`CompiledDatapath`].
//!
//! This is §3.3 of the paper. The compiler walks every flow table, selects a
//! template ([`crate::analysis`]), patches the flow keys into matcher/table
//! templates, interns action sets so identical ones are shared, and links
//! `goto_table` references through per-table *trampolines* — here a
//! `parking_lot::RwLock` slot per table — so that a single table can later be
//! rebuilt side-by-side and swapped in atomically while packets keep flowing.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use netdev::Counters;
use openflow::instruction::Instruction;
use openflow::pipeline::TableId;
use openflow::table::TableMissBehavior;
use openflow::{Action, Field, FieldValue, FlowEntry, FlowTable, Pipeline, PipelineError, Verdict};
use pkt::Packet;

use crate::analysis::{
    compound_hash_shape, lpm_shape, select_template, CompilerConfig, TemplateKind,
};
use crate::templates::action::{ActionStore, CompiledAction, CompiledActionSet};
use crate::templates::matcher::{CompiledMatcher, Regs};
use crate::templates::parser::ParserTemplate;
use crate::templates::table::{
    CompiledEntry, CompiledInstrs, CompiledTable, CompoundHashTable, DirectCodeTable,
    LinkedListTable, LpmTable,
};

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The pipeline itself is malformed (dangling or backward goto).
    InvalidPipeline(PipelineError),
    /// A table satisfied no template at all (cannot happen in practice since
    /// the linked list accepts everything; kept for API completeness).
    NoTemplate(TableId),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidPipeline(e) => write!(f, "invalid pipeline: {e}"),
            CompileError::NoTemplate(t) => write!(f, "no template applies to table {t}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<PipelineError> for CompileError {
    fn from(e: PipelineError) -> Self {
        CompileError::InvalidPipeline(e)
    }
}

/// One compiled table behind its trampoline slot.
pub struct TableSlot {
    /// OpenFlow table id.
    pub id: TableId,
    /// Miss behaviour of the table.
    pub miss: TableMissBehavior,
    /// The compiled template. The `RwLock` is the trampoline: rebuilding a
    /// table writes a fresh template into the slot in one atomic step.
    pub table: RwLock<CompiledTable>,
    /// Packets looked up in this table.
    pub lookups: Counters,
}

/// Statistics of a compiled datapath.
#[derive(Debug, Default)]
pub struct DatapathStats {
    /// Packets processed.
    pub processed: Counters,
    /// Packets punted to the controller.
    pub punted: Counters,
}

/// A fully compiled, executable datapath.
///
/// Per-table programs are individually `Arc`-shared: an epoch-publishing
/// control plane can derive a successor datapath via
/// [`CompiledDatapath::with_rebuilt_tables`] that *structurally shares* every
/// untouched table — only the rebuilt tables get fresh slots, everything else
/// is a pointer copy (§3.4's per-table update granularity, extended across
/// epochs).
pub struct CompiledDatapath {
    parser: ParserTemplate,
    slots: Vec<Arc<TableSlot>>,
    index_of: HashMap<TableId, usize>,
    config: CompilerConfig,
    /// Runtime statistics.
    pub stats: DatapathStats,
}

impl CompiledDatapath {
    /// The parser template the compiler selected.
    pub fn parser(&self) -> &ParserTemplate {
        &self.parser
    }

    /// The compiled tables in pipeline order, each behind its shared slot.
    pub fn slots(&self) -> &[Arc<TableSlot>] {
        &self.slots
    }

    /// Derives a new datapath in which the listed tables are replaced by
    /// freshly rebuilt templates while every other table slot is shared
    /// (`Arc` pointer copy) with `self`. Slots for unknown table ids are
    /// ignored — the caller guarantees rebuilt tables exist (the planner only
    /// produces per-table plans for tables the datapath already has).
    pub fn with_rebuilt_tables(
        &self,
        rebuilt: impl IntoIterator<Item = (TableId, CompiledTable)>,
    ) -> CompiledDatapath {
        let mut slots: Vec<Arc<TableSlot>> = self.slots.iter().map(Arc::clone).collect();
        for (id, table) in rebuilt {
            if let Some(&i) = self.index_of.get(&id) {
                slots[i] = Arc::new(TableSlot {
                    id,
                    miss: self.slots[i].miss,
                    table: RwLock::new(table),
                    lookups: Counters::new(),
                });
            }
        }
        CompiledDatapath {
            parser: self.parser,
            slots,
            index_of: self.index_of.clone(),
            config: self.config,
            stats: DatapathStats::default(),
        }
    }

    /// The compiler configuration used.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Looks up the slot backing an OpenFlow table id.
    pub fn slot(&self, id: TableId) -> Option<&TableSlot> {
        self.index_of.get(&id).map(|i| &*self.slots[*i])
    }

    /// Template kinds per table, for statistics dumps and tests.
    pub fn template_kinds(&self) -> Vec<(TableId, TemplateKind)> {
        self.slots
            .iter()
            .map(|s| (s.id, s.table.read().kind()))
            .collect()
    }

    /// Total data-structure footprint of all compiled tables, feeding the
    /// working-set estimate of the cache model.
    pub fn memory_footprint(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.table.read().memory_footprint())
            .sum()
    }

    /// Renders the whole compiled datapath as a pseudo-assembly listing.
    pub fn disassemble(&self) -> String {
        let mut out = self.parser.disassemble();
        for slot in &self.slots {
            out.push_str(&format!(
                "\n; ===== table {} ({:?}) =====\n",
                slot.id,
                slot.table.read().kind()
            ));
            out.push_str(&slot.table.read().disassemble());
        }
        out
    }

    /// Processes one packet through the compiled fast path. Ct verbs run
    /// against the no-op tracker; stateful pipelines use
    /// [`CompiledDatapath::process_ct`].
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        self.process_ct(packet, &mut openflow::ct::NoCt)
    }

    /// Processes one packet with a live connection tracker. The datapath is
    /// shared read-only across shards; each caller threads its own
    /// shard-local engine, so the compiled program stays immutable while
    /// connection state stays unshared.
    pub fn process_ct(&self, packet: &mut Packet, ct: &mut dyn openflow::ct::ConnCtx) -> Verdict {
        self.stats.processed.record(packet.len());
        let mut verdict = Verdict::default();
        let mut regs = Regs {
            in_port: packet.in_port,
            ..Default::default()
        };
        let mut headers = self.parser.parse(packet.data());
        let mut write_sets: Vec<Arc<CompiledActionSet>> = Vec::new();

        let Some(mut index) = self.index_of.get(&0).copied() else {
            return verdict;
        };
        loop {
            let slot = &self.slots[index];
            slot.lookups.record(0);
            verdict.tables_visited += 1;
            let table = slot.table.read();
            let hit = table.lookup(packet.data(), &headers, &regs).cloned();
            drop(table);
            match hit {
                Some(instrs) => {
                    if instrs.clear_set {
                        write_sets.clear();
                    }
                    if let Some(apply) = &instrs.apply {
                        let layout_sensitive = apply.actions().iter().any(|a| {
                            matches!(a, CompiledAction::PushVlan(_) | CompiledAction::PopVlan)
                        });
                        if apply.execute_ct(packet, &headers, &mut verdict, ct) {
                            // Stateful deny: drop, discarding any forwarding
                            // decisions merged so far; keep the accounting.
                            return Verdict {
                                tables_visited: verdict.tables_visited,
                                entries_examined: verdict.entries_examined,
                                ..Verdict::default()
                            };
                        }
                        if layout_sensitive {
                            headers = self.parser.parse(packet.data());
                        }
                    }
                    if let Some(set) = &instrs.write_set {
                        write_sets.push(Arc::clone(set));
                    }
                    if let Some((value, mask)) = instrs.metadata {
                        regs.metadata = (regs.metadata & !mask) | (value & mask);
                    }
                    if instrs.to_controller {
                        verdict.to_controller = true;
                        verdict.punt_reason = openflow::PacketInReason::Action;
                    }
                    match instrs.goto.and_then(|t| self.index_of.get(&t)).copied() {
                        Some(next) => index = next,
                        None => break,
                    }
                }
                None => match slot.miss {
                    TableMissBehavior::Drop => break,
                    TableMissBehavior::ToController => {
                        verdict.to_controller = true;
                        break;
                    }
                    TableMissBehavior::Continue => {
                        if index + 1 < self.slots.len() {
                            index += 1;
                        } else {
                            break;
                        }
                    }
                },
            }
        }

        // Execute the accumulated write-action sets: modifiers in order, then
        // the last forwarding decision (OpenFlow action-set semantics).
        if !write_sets.is_empty() {
            for set in &write_sets {
                set.execute_modifiers(packet, &headers);
            }
            if let Some(out) = write_sets.iter().rev().find_map(|s| s.output_action()) {
                match out {
                    CompiledAction::Output(p) => verdict.outputs.push(*p),
                    CompiledAction::Flood => verdict.flood = true,
                    CompiledAction::ToController => {
                        verdict.to_controller = true;
                        verdict.punt_reason = openflow::PacketInReason::Action;
                    }
                    _ => {}
                }
            }
        }
        if verdict.to_controller {
            self.stats.punted.record(packet.len());
        }
        verdict
    }
}

/// Compiles an entry's instructions into a [`CompiledInstrs`] block, interning
/// action sets in `store`.
fn compile_instructions(entry: &FlowEntry, store: &mut ActionStore) -> Arc<CompiledInstrs> {
    let mut instrs = CompiledInstrs::default();
    let mut apply: Vec<Action> = Vec::new();
    let mut write: Vec<Action> = Vec::new();
    for instruction in &entry.instructions {
        match instruction {
            Instruction::ApplyActions(actions) => apply.extend(actions.iter().cloned()),
            Instruction::WriteActions(actions) => write.extend(actions.iter().cloned()),
            Instruction::ClearActions => instrs.clear_set = true,
            Instruction::WriteMetadata { value, mask } => instrs.metadata = Some((*value, *mask)),
            Instruction::GotoTable(t) => instrs.goto = Some(*t),
            Instruction::Meter(_) => {}
        }
    }
    if apply.iter().any(|a| matches!(a, Action::ToController)) {
        instrs.to_controller = true;
    }
    if !apply.is_empty() {
        instrs.apply = Some(store.intern(&apply));
    }
    if !write.is_empty() {
        instrs.write_set = Some(store.intern(&write));
    }
    Arc::new(instrs)
}

/// Builds a [`CompiledEntry`] from a flow entry (direct-code / linked-list
/// path): one specialised matcher per matched field.
fn compile_entry(entry: &FlowEntry, store: &mut ActionStore) -> CompiledEntry {
    let matchers = entry
        .flow_match
        .fields()
        .iter()
        .map(|mf| CompiledMatcher::new(mf.field, mf.value, mf.mask))
        .collect();
    CompiledEntry::new(matchers, compile_instructions(entry, store))
}

/// Compiles a single flow table into the best applicable template.
pub fn compile_table(
    table: &FlowTable,
    config: &CompilerConfig,
    store: &mut ActionStore,
) -> CompiledTable {
    match select_template(table, config) {
        TemplateKind::DirectCode => CompiledTable::DirectCode(DirectCodeTable::new(
            table
                .entries()
                .iter()
                .map(|e| compile_entry(e, store))
                .collect(),
        )),
        TemplateKind::CompoundHash => {
            let shape = compound_hash_shape(table).expect("selected template checked prerequisite");
            match build_hash(table, &shape, store) {
                Ok(t) => CompiledTable::CompoundHash(t),
                Err(_) => CompiledTable::LinkedList(LinkedListTable::new(
                    table
                        .entries()
                        .iter()
                        .map(|e| compile_entry(e, store))
                        .collect(),
                )),
            }
        }
        TemplateKind::Lpm => {
            let field = lpm_shape(table).expect("selected template checked prerequisite");
            match build_lpm(table, field, store) {
                Ok(t) => CompiledTable::Lpm(t),
                Err(_) => CompiledTable::LinkedList(LinkedListTable::new(
                    table
                        .entries()
                        .iter()
                        .map(|e| compile_entry(e, store))
                        .collect(),
                )),
            }
        }
        TemplateKind::LinkedList => CompiledTable::LinkedList(LinkedListTable::new(
            table
                .entries()
                .iter()
                .map(|e| compile_entry(e, store))
                .collect(),
        )),
    }
}

fn build_hash(
    table: &FlowTable,
    shape: &[(Field, FieldValue)],
    store: &mut ActionStore,
) -> Result<CompoundHashTable, crate::templates::table::TemplateError> {
    let (body, catch_all) = crate::analysis::split_catch_all(table);
    // Entries arrive in pipeline match order (descending priority); the
    // template has one slot per key, so on duplicate key values the first —
    // highest-priority — entry must own the slot, exactly as the pipeline's
    // first-match rule resolves the overlap.
    let mut seen: HashSet<Vec<FieldValue>> = HashSet::new();
    let keys = body
        .iter()
        .filter_map(|entry| {
            let values: Vec<FieldValue> = shape
                .iter()
                .map(|(field, _)| {
                    entry
                        .flow_match
                        .field(*field)
                        .map(|mf| mf.value)
                        .unwrap_or_default()
                })
                .collect();
            seen.insert(values.clone())
                .then(|| (values, compile_instructions(entry, store)))
        })
        .collect();
    CompoundHashTable::new(
        shape.to_vec(),
        keys,
        catch_all.map(|e| compile_instructions(e, store)),
    )
}

fn build_lpm(
    table: &FlowTable,
    field: Field,
    store: &mut ActionStore,
) -> Result<LpmTable, crate::templates::table::TemplateError> {
    let (body, catch_all) = crate::analysis::split_catch_all(table);
    // Same first-wins rule as `build_hash`: the highest-priority entry of a
    // duplicated prefix owns the LPM rule.
    let mut seen: HashSet<(u32, u8)> = HashSet::new();
    let rules = body
        .iter()
        .filter_map(|entry| {
            let mf = entry.flow_match.fields()[0];
            let len = mf.prefix_len().expect("lpm shape checked") as u8;
            seen.insert((mf.value as u32, len))
                .then(|| (mf.value as u32, len, compile_instructions(entry, store)))
        })
        .collect();
    LpmTable::new(
        field,
        rules,
        catch_all.map(|e| compile_instructions(e, store)),
    )
}

/// The header field an action needs parsed to execute, if any. Match fields
/// alone do not determine parser depth: a pipeline that matches only on L2
/// fields but rewrites DSCP (or decrements the TTL) still needs the IP header
/// located, or the compiled action would silently no-op.
fn action_touched_field(action: &Action) -> Option<Field> {
    match action {
        Action::SetField(field, _) => Some(*field),
        Action::DecNwTtl => Some(Field::Ipv4Src),
        // Ct extracts the 5-tuple (and TCP flags), so the parser must reach
        // L4 even if the pipeline matches nothing past L2.
        Action::Ct(_) => Some(Field::TcpSrc),
        _ => None,
    }
}

/// Every field an entry's instructions read or write through the parser.
pub(crate) fn instruction_fields(entry: &FlowEntry) -> impl Iterator<Item = Field> + '_ {
    entry
        .instructions
        .iter()
        .flat_map(|instruction| match instruction {
            Instruction::ApplyActions(actions) | Instruction::WriteActions(actions) => {
                actions.as_slice()
            }
            _ => &[],
        })
        .filter_map(action_touched_field)
}

/// Compiles a whole pipeline.
pub fn compile(
    pipeline: &Pipeline,
    config: &CompilerConfig,
) -> Result<CompiledDatapath, CompileError> {
    pipeline.validate()?;
    let mut store = ActionStore::new();

    // Parser template: as deep as the deepest field matched *or touched by an
    // action* anywhere in the pipeline, unless the prototype-style override
    // forces a combined parser.
    let parser = match config.parser_depth_override {
        Some(depth) => ParserTemplate::with_depth(depth),
        None => {
            ParserTemplate::for_fields(pipeline.tables().iter().flat_map(|t| t.entries()).flat_map(
                |e| {
                    e.flow_match
                        .fields()
                        .iter()
                        .map(|mf| mf.field)
                        .chain(instruction_fields(e))
                },
            ))
        }
    };

    let mut slots = Vec::with_capacity(pipeline.table_count());
    let mut index_of = HashMap::new();
    for table in pipeline.tables() {
        let compiled = compile_table(table, config, &mut store);
        index_of.insert(table.id, slots.len());
        slots.push(Arc::new(TableSlot {
            id: table.id,
            miss: table.miss,
            table: RwLock::new(compiled),
            lookups: Counters::new(),
        }));
    }

    Ok(CompiledDatapath {
        parser,
        slots,
        index_of,
        config: *config,
        stats: DatapathStats::default(),
    })
}

/// Convenience wrapper: compile with the default configuration.
pub fn compile_default(pipeline: &Pipeline) -> Result<CompiledDatapath, CompileError> {
    compile(pipeline, &CompilerConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::{actions_then_goto, terminal_actions};
    use pkt::builder::PacketBuilder;
    use pkt::parser::ParseDepth;
    use rand::prelude::*;

    /// Compares the compiled datapath against the reference interpreter on a
    /// set of packets — the master semantic-equivalence check.
    fn assert_equivalent(pipeline: &Pipeline, packets: &[Packet]) {
        let dp = compile_default(pipeline).unwrap();
        for (i, packet) in packets.iter().enumerate() {
            let mut a = packet.clone();
            let mut b = packet.clone();
            let compiled = dp.process(&mut a);
            let reference = pipeline.process(&mut b);
            assert_eq!(
                compiled.decision(),
                reference.decision(),
                "packet {i} diverged"
            );
            assert_eq!(a.data(), b.data(), "packet {i} rewritten differently");
        }
    }

    fn l2_pipeline(n: u64) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..n {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    #[test]
    fn l2_table_compiles_to_hash_and_matches_reference() {
        let pipeline = l2_pipeline(64);
        let dp = compile_default(&pipeline).unwrap();
        assert_eq!(dp.template_kinds(), vec![(0, TemplateKind::CompoundHash)]);
        assert_eq!(dp.parser().depth(), ParseDepth::L2);

        let mut rng = StdRng::seed_from_u64(1);
        let packets: Vec<Packet> = (0..200)
            .map(|_| {
                let mac = 0x0200_0000_0000u64 + rng.gen_range(0u64..80);
                PacketBuilder::udp()
                    .eth_dst(pkt::MacAddr::from_u64(mac).octets())
                    .build()
            })
            .collect();
        assert_equivalent(&pipeline, &packets);
    }

    #[test]
    fn small_table_compiles_direct_and_matches_reference() {
        let pipeline = l2_pipeline(3);
        let dp = compile_default(&pipeline).unwrap();
        assert_eq!(dp.template_kinds(), vec![(0, TemplateKind::DirectCode)]);
        let packets: Vec<Packet> = (0..8)
            .map(|i| {
                PacketBuilder::udp()
                    .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0000 + i).octets())
                    .build()
            })
            .collect();
        assert_equivalent(&pipeline, &packets);
    }

    fn l3_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        let prefixes = [
            ([10u8, 0, 0, 0], 8u32, 1u32),
            ([10, 1, 0, 0], 16, 2),
            ([10, 1, 2, 0], 24, 3),
            ([192, 0, 2, 0], 24, 4),
            ([198, 51, 100, 0], 24, 5),
            ([203, 0, 113, 0], 24, 6),
        ];
        for (addr, len, port) in prefixes {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes(addr)),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::DecNwTtl, Action::Output(port)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    #[test]
    fn l3_table_compiles_to_lpm_and_matches_reference() {
        let pipeline = l3_pipeline();
        let dp = compile_default(&pipeline).unwrap();
        assert_eq!(dp.template_kinds(), vec![(0, TemplateKind::Lpm)]);
        assert_eq!(dp.parser().depth(), ParseDepth::L3);

        let packets: Vec<Packet> = [
            [10u8, 0, 5, 5],
            [10, 1, 5, 5],
            [10, 1, 2, 5],
            [192, 0, 2, 200],
            [8, 8, 8, 8],
            [203, 0, 113, 1],
        ]
        .iter()
        .map(|dst| PacketBuilder::udp().ipv4_dst(*dst).build())
        .collect();
        assert_equivalent(&pipeline, &packets);
    }

    /// The two-stage firewall of Fig. 1b.
    fn firewall_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(2);
        {
            let t0 = p.table_mut(0).unwrap();
            t0.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::InPort, 1),
                300,
                terminal_actions(vec![Action::Output(0)]),
            ));
            t0.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::InPort, 0),
                200,
                vec![Instruction::GotoTable(1)],
            ));
        }
        {
            let t1 = p.table_mut(1).unwrap();
            t1.insert(FlowEntry::new(
                FlowMatch::any()
                    .with_exact(Field::Ipv4Dst, u128::from(0xc0000201u32))
                    .with_exact(Field::TcpDst, 80),
                100,
                terminal_actions(vec![Action::Output(1)]),
            ));
            t1.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        }
        p
    }

    #[test]
    fn multi_stage_firewall_equivalence_and_goto_linking() {
        let pipeline = firewall_pipeline();
        let dp = compile_default(&pipeline).unwrap();
        assert_eq!(dp.template_kinds().len(), 2);

        let packets: Vec<Packet> = vec![
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(80)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(22)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 9])
                .tcp_dst(80)
                .in_port(0)
                .build(),
            PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, 1])
                .tcp_dst(80)
                .in_port(1)
                .build(),
            PacketBuilder::udp().in_port(1).build(),
        ];
        assert_equivalent(&pipeline, &packets);

        // The compiled fast path visits both tables for admitted web traffic.
        let mut web = PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(80)
            .in_port(0)
            .build();
        assert_eq!(dp.process(&mut web).tables_visited, 2);
    }

    #[test]
    fn nat_rewrite_pipeline_equivalence() {
        // Table 0 rewrites the source address (NAT) and forwards to an LPM
        // table matching the *destination*, as the gateway use case does.
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::Ipv4Src, u128::from(0x0a000001u32)),
            10,
            actions_then_goto(vec![Action::SetField(Field::Ipv4Src, 0xcb007101)], 1),
        ));
        p.table_mut(0)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let t1 = p.table_mut(1).unwrap();
        t1.insert(FlowEntry::new(
            FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(0xc6336400u32), 24),
            20,
            terminal_actions(vec![Action::Output(7)]),
        ));
        t1.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        let packets = vec![
            PacketBuilder::udp()
                .ipv4_src([10, 0, 0, 1])
                .ipv4_dst([198, 51, 100, 9])
                .build(),
            PacketBuilder::udp()
                .ipv4_src([10, 0, 0, 2])
                .ipv4_dst([198, 51, 100, 9])
                .build(),
            PacketBuilder::udp()
                .ipv4_src([10, 0, 0, 1])
                .ipv4_dst([8, 8, 8, 8])
                .build(),
        ];
        assert_equivalent(&p, &packets);
    }

    #[test]
    fn parser_depth_covers_action_rewrites_not_just_matches() {
        // Regression: a pipeline matching only L2 fields but rewriting DSCP
        // (an L3 header byte) used to compile an L2-only parser, so the
        // compiled set-field silently no-opped while the reference
        // interpreter rewrote the packet.
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0001u64)),
            10,
            actions_then_goto(vec![Action::SetField(Field::IpDscp, 10)], 1),
        ));
        p.table_mut(0)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let t1 = p.table_mut(1).unwrap();
        t1.insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(2)]),
        ));

        let dp = compile_default(&p).unwrap();
        assert!(dp.parser().depth() >= ParseDepth::L3);

        let packets = vec![
            PacketBuilder::udp()
                .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0001).octets())
                .build(),
            PacketBuilder::udp()
                .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0009).octets())
                .build(),
        ];
        assert_equivalent(&p, &packets);
    }

    #[test]
    fn write_actions_last_output_wins() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::WriteActions(vec![Action::Output(3)]),
                Instruction::GotoTable(1),
            ],
        ));
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            10,
            vec![Instruction::WriteActions(vec![Action::Output(5)])],
        ));
        p.table_mut(1)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        let dp = compile_default(&p).unwrap();
        let mut http = PacketBuilder::tcp().tcp_dst(80).build();
        assert_eq!(dp.process(&mut http).outputs, vec![5]);
        let mut other = PacketBuilder::tcp().tcp_dst(22).build();
        assert_eq!(dp.process(&mut other).outputs, vec![3]);
    }

    #[test]
    fn metadata_and_clear_actions() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::WriteActions(vec![Action::Output(3)]),
                Instruction::WriteMetadata {
                    value: 0x7,
                    mask: 0xf,
                },
                Instruction::GotoTable(1),
            ],
        ));
        let t1 = p.table_mut(1).unwrap();
        t1.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::Metadata, 0x7),
            10,
            vec![
                Instruction::ClearActions,
                Instruction::ApplyActions(vec![Action::Output(9)]),
            ],
        ));
        t1.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        let dp = compile_default(&p).unwrap();
        let mut pkt = PacketBuilder::udp().build();
        let verdict = dp.process(&mut pkt);
        assert_eq!(verdict.outputs, vec![9]);
    }

    #[test]
    fn miss_behaviours() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().miss = TableMissBehavior::Continue;
        p.table_mut(1).unwrap().miss = TableMissBehavior::ToController;
        let dp = compile_default(&p).unwrap();
        let mut pkt = PacketBuilder::udp().build();
        let verdict = dp.process(&mut pkt);
        assert!(verdict.to_controller);
        assert_eq!(dp.stats.punted.packets(), 1);

        let empty = Pipeline::new();
        let dp = compile_default(&empty).unwrap();
        let mut pkt = PacketBuilder::udp().build();
        assert!(dp.process(&mut pkt).is_drop());
    }

    #[test]
    fn action_sets_are_shared_across_flows() {
        // 64 MAC entries all forwarding to the same 4 ports: at most 5
        // distinct compiled action sets (4 outputs + none for the catch-all).
        let pipeline = l2_pipeline(64);
        let mut store = ActionStore::new();
        let table = pipeline.table(0).unwrap();
        let _ = compile_table(table, &CompilerConfig::default(), &mut store);
        assert!(store.len() <= 4, "action sets not shared: {}", store.len());
    }

    #[test]
    fn invalid_pipeline_rejected() {
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            vec![Instruction::GotoTable(9)],
        ));
        assert!(matches!(
            compile_default(&p),
            Err(CompileError::InvalidPipeline(_))
        ));
    }

    #[test]
    fn disassembly_covers_all_tables() {
        let dp = compile_default(&firewall_pipeline()).unwrap();
        let listing = dp.disassemble();
        assert!(listing.contains("table 0"));
        assert!(listing.contains("table 1"));
        assert!(listing.contains("L2_PARSER"));
        assert!(dp.memory_footprint() > 0);
    }

    #[test]
    fn vlan_pop_pipeline_equivalence() {
        // Match on the VLAN tag, pop it, forward — the gateway's downstream
        // direction in miniature.
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::VlanVid, 7),
            10,
            terminal_actions(vec![Action::PopVlan, Action::Output(2)]),
        ));
        p.table_mut(0)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let packets = vec![
            PacketBuilder::udp().vlan(7).build(),
            PacketBuilder::udp().vlan(8).build(),
            PacketBuilder::udp().build(),
        ];
        assert_equivalent(&p, &packets);
    }
}
