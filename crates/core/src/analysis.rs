//! Flow-table analysis: recognise which table template a flow table fits.
//!
//! "ESWITCH always attempts to compile into the most efficient table template
//! available; whenever it detects that the prerequisite no longer applies it
//! gradually falls back to the next most efficient representation" (§3.2,
//! Fig. 4). The fallback chain is
//! direct code → compound hash → LPM → linked list.

use openflow::field::{Field, FieldValue};
use openflow::flow_match::MatchField;
use openflow::{FlowEntry, FlowTable};
use pkt::parser::ParseDepth;

/// The four table templates of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemplateKind {
    /// Straight-line specialised code; universal but only efficient for a
    /// handful of entries.
    DirectCode,
    /// Exact match over a global mask via a collision-free hash.
    CompoundHash,
    /// Longest prefix match on a single address field.
    Lpm,
    /// Tuple space search — the last-resort fallback.
    LinkedList,
}

impl TemplateKind {
    /// The fallback of this template when its prerequisite breaks (Fig. 4).
    pub fn fallback(self) -> Option<TemplateKind> {
        match self {
            TemplateKind::DirectCode => Some(TemplateKind::CompoundHash),
            TemplateKind::CompoundHash => Some(TemplateKind::Lpm),
            TemplateKind::Lpm => Some(TemplateKind::LinkedList),
            TemplateKind::LinkedList => None,
        }
    }
}

/// Compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompilerConfig {
    /// Maximum number of entries a table may have to be compiled with the
    /// direct-code template. The paper calibrates this constant to 4 via the
    /// Fig. 9 measurement.
    pub direct_code_limit: usize,
    /// Run the table-decomposition pass before compilation, promoting
    /// linked-list tables to multi-stage hash pipelines (§3.2). Off by
    /// default, as for "well-behaved" control programs decomposition returns
    /// its input intact.
    pub enable_decomposition: bool,
    /// Force a particular parser depth instead of deriving it from the
    /// matched fields (the paper's prototype "defaults to a combined L2–L4
    /// packet parser"; `None` derives the minimal depth).
    pub parser_depth_override: Option<ParseDepth>,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            direct_code_limit: 4,
            enable_decomposition: false,
            parser_depth_override: None,
        }
    }
}

/// Splits a table into its body entries and an optional final catch-all
/// (an entry with an empty match at the lowest priority). Both the compound
/// hash and the LPM templates allow "a potential final catch-all rule".
pub fn split_catch_all(table: &FlowTable) -> (Vec<&FlowEntry>, Option<&FlowEntry>) {
    let entries = table.entries();
    match entries.split_last() {
        Some((last, body)) if last.flow_match.is_empty() => (body.iter().collect(), Some(last)),
        _ => (entries.iter().collect(), None),
    }
}

/// Checks the compound-hash prerequisite: every body entry matches exactly
/// the same set of fields, each field with exactly the same mask in every
/// entry, and the concatenated key fits 128 bits. Returns the global
/// field/mask list on success.
pub fn compound_hash_shape(table: &FlowTable) -> Option<Vec<(Field, FieldValue)>> {
    let (body, _) = split_catch_all(table);
    let first = body.first()?;
    if first.flow_match.is_empty() {
        return None;
    }
    let shape: Vec<(Field, FieldValue)> = first
        .flow_match
        .fields()
        .iter()
        .map(|mf| (mf.field, mf.mask))
        .collect();
    let total_bits: u32 = shape.iter().map(|(f, _)| f.width_bits()).sum();
    if total_bits > 128 {
        return None;
    }
    for entry in &body {
        let fields = entry.flow_match.fields();
        if fields.len() != shape.len() {
            return None;
        }
        for (mf, (field, mask)) in fields.iter().zip(&shape) {
            if mf.field != *field || mf.mask != *mask {
                return None;
            }
        }
    }
    Some(shape)
}

/// Checks the LPM prerequisite: single-field prefix rules on an address
/// field, with priorities consistent with prefix lengths ("whenever rules
/// overlap the more specific one has higher priority"). Returns the matched
/// field on success.
pub fn lpm_shape(table: &FlowTable) -> Option<Field> {
    let (body, _) = split_catch_all(table);
    let first = body.first()?;
    if first.flow_match.len() != 1 {
        return None;
    }
    let field = first.flow_match.fields()[0].field;
    if !field.supports_prefix() || field.width_bits() != 32 {
        return None;
    }
    let mut rules: Vec<(&MatchField, u16)> = Vec::new();
    for entry in &body {
        let fields = entry.flow_match.fields();
        if fields.len() != 1 || fields[0].field != field {
            return None;
        }
        fields[0].prefix_len()?; // must be a prefix mask
        rules.push((&fields[0], entry.priority));
    }
    // Overlapping rules must order by specificity: a more specific (longer)
    // prefix must have strictly higher priority than any shorter prefix that
    // contains it.
    for (a, prio_a) in &rules {
        for (b, prio_b) in &rules {
            let len_a = a.prefix_len().expect("checked");
            let len_b = b.prefix_len().expect("checked");
            if len_a > len_b && a.value & b.mask == b.value && prio_a <= prio_b {
                return None;
            }
        }
    }
    Some(field)
}

/// Selects the most efficient template whose prerequisite the table
/// satisfies, walking the fallback chain of Fig. 4.
pub fn select_template(table: &FlowTable, config: &CompilerConfig) -> TemplateKind {
    if table.len() <= config.direct_code_limit {
        return TemplateKind::DirectCode;
    }
    if compound_hash_shape(table).is_some() {
        return TemplateKind::CompoundHash;
    }
    if lpm_shape(table).is_some() {
        return TemplateKind::Lpm;
    }
    TemplateKind::LinkedList
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::Action;

    fn table_with(entries: Vec<FlowEntry>) -> FlowTable {
        let mut t = FlowTable::new(0);
        for e in entries {
            t.insert(e);
        }
        t
    }

    fn mac_entry(mac: u64, priority: u16) -> FlowEntry {
        FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(mac)),
            priority,
            terminal_actions(vec![Action::Output(1)]),
        )
    }

    fn prefix_entry(addr: u32, len: u32, priority: u16) -> FlowEntry {
        FlowEntry::new(
            FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(addr), len),
            priority,
            terminal_actions(vec![Action::Output(1)]),
        )
    }

    #[test]
    fn small_tables_compile_direct() {
        let config = CompilerConfig::default();
        let t = table_with((0..4).map(|i| mac_entry(i, 10)).collect());
        assert_eq!(select_template(&t, &config), TemplateKind::DirectCode);
        // One more entry pushes it over the calibrated limit.
        let t = table_with((0..5).map(|i| mac_entry(i, 10)).collect());
        assert_eq!(select_template(&t, &config), TemplateKind::CompoundHash);
    }

    #[test]
    fn mac_table_fits_compound_hash() {
        let t = table_with((0..100).map(|i| mac_entry(i, 10)).collect());
        let shape = compound_hash_shape(&t).unwrap();
        assert_eq!(shape, vec![(Field::EthDst, Field::EthDst.full_mask())]);
        assert_eq!(
            select_template(&t, &CompilerConfig::default()),
            TemplateKind::CompoundHash
        );
    }

    #[test]
    fn catch_all_is_tolerated_by_hash_and_lpm() {
        let mut entries: Vec<FlowEntry> = (0..50).map(|i| mac_entry(i, 10)).collect();
        entries.push(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let t = table_with(entries);
        assert!(compound_hash_shape(&t).is_some());

        let mut entries: Vec<FlowEntry> = (0..50)
            .map(|i| prefix_entry(u32::from_be_bytes([10, i as u8, 0, 0]), 16, 50))
            .collect();
        entries.push(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let t = table_with(entries);
        assert_eq!(lpm_shape(&t), Some(Field::Ipv4Dst));
    }

    #[test]
    fn paper_example_hash_prerequisite_violation() {
        // The §3.1 example: two /24+port entries fit the hash template, but
        // adding a third entry that wildcards the port violates the global
        // mask prerequisite.
        let two = table_with(vec![
            FlowEntry::new(
                FlowMatch::any()
                    .with_prefix(
                        Field::Ipv4Dst,
                        u128::from(u32::from_be_bytes([192, 0, 2, 0])),
                        24,
                    )
                    .with_exact(Field::TcpDst, 80),
                10,
                vec![],
            ),
            FlowEntry::new(
                FlowMatch::any()
                    .with_prefix(
                        Field::Ipv4Dst,
                        u128::from(u32::from_be_bytes([198, 51, 100, 0])),
                        24,
                    )
                    .with_exact(Field::TcpDst, 21),
                10,
                vec![],
            ),
        ]);
        assert!(compound_hash_shape(&two).is_some());

        let mut three = two.clone();
        three.insert(FlowEntry::new(
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([203, 0, 113, 0])),
                24,
            ),
            10,
            vec![],
        ));
        assert!(compound_hash_shape(&three).is_none());
    }

    #[test]
    fn lpm_prerequisite_and_priority_consistency() {
        // The §3.1 violation example: a /30 nested inside a /24 with *lower*
        // priority breaks the LPM prerequisite.
        let bad = table_with(vec![
            prefix_entry(u32::from_be_bytes([192, 0, 2, 0]), 24, 100),
            prefix_entry(u32::from_be_bytes([192, 0, 2, 12]), 30, 20),
        ]);
        assert_eq!(lpm_shape(&bad), None);

        let good = table_with(vec![
            prefix_entry(u32::from_be_bytes([192, 0, 2, 0]), 24, 20),
            prefix_entry(u32::from_be_bytes([192, 0, 2, 12]), 30, 100),
        ]);
        assert_eq!(lpm_shape(&good), Some(Field::Ipv4Dst));

        // Disjoint prefixes do not constrain each other's priorities.
        let disjoint = table_with(vec![
            prefix_entry(u32::from_be_bytes([10, 0, 0, 0]), 8, 10),
            prefix_entry(u32::from_be_bytes([192, 0, 2, 0]), 24, 5),
        ]);
        assert_eq!(lpm_shape(&disjoint), Some(Field::Ipv4Dst));
    }

    #[test]
    fn heterogeneous_table_falls_back_to_linked_list() {
        // Mixed port and address rules with wildcards: the Fig. 1a firewall.
        let t = table_with(vec![
            FlowEntry::new(FlowMatch::any().with_exact(Field::InPort, 1), 300, vec![]),
            FlowEntry::new(
                FlowMatch::any()
                    .with_exact(Field::InPort, 0)
                    .with_exact(Field::Ipv4Dst, 0xc0000201)
                    .with_exact(Field::TcpDst, 80),
                200,
                vec![],
            ),
            FlowEntry::new(FlowMatch::any().with_exact(Field::TcpSrc, 1), 150, vec![]),
            FlowEntry::new(FlowMatch::any().with_exact(Field::TcpSrc, 2), 140, vec![]),
            FlowEntry::new(FlowMatch::any().with_exact(Field::TcpSrc, 3), 130, vec![]),
            FlowEntry::new(FlowMatch::any(), 1, vec![]),
        ]);
        assert_eq!(
            select_template(&t, &CompilerConfig::default()),
            TemplateKind::LinkedList
        );
    }

    #[test]
    fn fallback_chain_is_the_figure_4_chain() {
        assert_eq!(
            TemplateKind::DirectCode.fallback(),
            Some(TemplateKind::CompoundHash)
        );
        assert_eq!(
            TemplateKind::CompoundHash.fallback(),
            Some(TemplateKind::Lpm)
        );
        assert_eq!(TemplateKind::Lpm.fallback(), Some(TemplateKind::LinkedList));
        assert_eq!(TemplateKind::LinkedList.fallback(), None);
    }

    #[test]
    fn ipv6_key_too_wide_for_hash() {
        let t = table_with(
            (0..10)
                .map(|i| {
                    FlowEntry::new(
                        FlowMatch::any()
                            .with_exact(Field::Ipv6Src, i)
                            .with_exact(Field::Ipv6Dst, i),
                        10,
                        vec![],
                    )
                })
                .collect(),
        );
        assert!(compound_hash_shape(&t).is_none());
        assert_eq!(
            select_template(&t, &CompilerConfig::default()),
            TemplateKind::LinkedList
        );
    }
}
