//! The Appendix hardness construction: REGDECOMP is coNP-hard.
//!
//! Theorem 1 reduces 3SAT to the question "can flow table T be decomposed
//! into a single regular table?": given a 3-CNF formula, a flow table is
//! built with one column per variable plus an extra column Y, and one row per
//! clause (action `false`) plus a catch-all (action `true`). For any
//! assignment X and Y = 1 the table evaluates ¬f(X) — the i-th row matches
//! exactly when the i-th clause is unsatisfied — so the formula is
//! unsatisfiable iff the table is equivalent to the single regular table
//! `{Y=1 → false, * → true}`.
//!
//! This module implements the construction and the evaluation machinery so
//! the tests (and the EXPERIMENTS.md write-up) can demonstrate the reduction
//! on satisfiable and unsatisfiable instances.

use openflow::field::Field;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, FlowEntry, FlowTable};

/// A literal: variable index plus polarity (`true` = positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Variable index, 0-based.
    pub variable: usize,
    /// True for a positive (un-negated) literal.
    pub positive: bool,
}

/// A 3SAT clause (up to three literals; fewer are allowed for convenience).
pub type Clause = Vec<Literal>;

/// A 3SAT instance in conjunctive normal form.
#[derive(Debug, Clone, Default)]
pub struct ThreeSat {
    /// Number of variables.
    pub variables: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl ThreeSat {
    /// Evaluates the formula under `assignment` (indexed by variable).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.variable] == lit.positive)
        })
    }

    /// Exhaustively checks satisfiability (instances used in tests are tiny).
    pub fn is_satisfiable(&self) -> bool {
        let n = self.variables;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            self.evaluate(&assignment)
        })
    }
}

/// Action port encoding the boolean outputs of the constructed table.
pub const OUTPUT_FALSE: u32 = 0;
/// Action port encoding `true`.
pub const OUTPUT_TRUE: u32 = 1;

/// Fields used for the variable columns, in order. The construction needs one
/// column per variable plus the Y column; the concrete field identities are
/// irrelevant, so the first few single-byte-ish fields are used.
fn variable_field(index: usize) -> Field {
    // Distinct fields for up to 8 variables — ample for the demonstrations.
    const FIELDS: [Field; 8] = [
        Field::TcpSrc,
        Field::TcpDst,
        Field::Ipv4Src,
        Field::Ipv4Dst,
        Field::EthSrc,
        Field::EthDst,
        Field::IpDscp,
        Field::IpProto,
    ];
    FIELDS[index]
}

/// The extra Y column of the construction.
pub const Y_FIELD: Field = Field::VlanVid;

/// Builds the flow table T of Theorem 1 for a 3SAT instance.
///
/// Row i matches `X_j = 0` for positive occurrences, `X_j = 1` for negative
/// occurrences, wildcards absent variables, pins `Y = 1`, and outputs
/// [`OUTPUT_FALSE`]; a final catch-all outputs [`OUTPUT_TRUE`].
pub fn build_reduction_table(instance: &ThreeSat) -> FlowTable {
    assert!(
        instance.variables <= 8,
        "demonstration construction supports up to 8 variables"
    );
    let mut table = FlowTable::named(0, "regdecomp-reduction");
    let rows = instance.clauses.len() as u16;
    for (i, clause) in instance.clauses.iter().enumerate() {
        let mut m = FlowMatch::any().with_exact(Y_FIELD, 1);
        for lit in clause {
            // Positive literal -> the row requires X_j = 0 (clause violated).
            let required = if lit.positive { 0u128 } else { 1u128 };
            m = m.with_exact(variable_field(lit.variable), required);
        }
        table.insert(FlowEntry::new(
            m,
            100 + (rows - i as u16),
            terminal_actions(vec![Action::Output(OUTPUT_FALSE)]),
        ));
    }
    table.insert(FlowEntry::new(
        FlowMatch::any(),
        1,
        terminal_actions(vec![Action::Output(OUTPUT_TRUE)]),
    ));
    table
}

/// The single regular table `{Y=1 → false, * → true}` the reduction compares
/// against: T decomposes into it iff the 3SAT instance is unsatisfiable.
pub fn regular_candidate() -> FlowTable {
    let mut table = FlowTable::named(0, "regdecomp-candidate");
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Y_FIELD, 1),
        10,
        terminal_actions(vec![Action::Output(OUTPUT_FALSE)]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any(),
        1,
        terminal_actions(vec![Action::Output(OUTPUT_TRUE)]),
    ));
    table
}

/// Evaluates a table on an assignment: builds the corresponding flow key
/// (X values in the variable columns, Y = 1) and returns the boolean output.
pub fn table_output(table: &FlowTable, instance: &ThreeSat, assignment: &[bool], y: bool) -> bool {
    let mut key = openflow::FlowKey::default();
    key.set(Y_FIELD, u128::from(y));
    for (i, value) in assignment.iter().enumerate().take(instance.variables) {
        key.set(variable_field(i), u128::from(*value));
    }
    // Populate protocol presence so the fields read back (the key here is
    // synthetic; only field values matter for the reduction).
    key.ip_proto = Some(6);
    key.tcp_src = key.tcp_src.or(Some(0));
    key.tcp_dst = key.tcp_dst.or(Some(0));
    key.ipv4_src = key.ipv4_src.or(Some(0));
    key.ipv4_dst = key.ipv4_dst.or(Some(0));
    key.ip_dscp = key.ip_dscp.or(Some(0));
    match table.lookup(&key) {
        Some(entry) => entry
            .instructions
            .iter()
            .any(|i| matches!(i, openflow::Instruction::ApplyActions(a) if a.contains(&Action::Output(OUTPUT_TRUE)))),
        None => false,
    }
}

/// True when the reduction table and the single regular candidate agree on
/// every assignment (with Y = 1 and Y = 0) — i.e. when T is decomposable into
/// one regular table. By Theorem 1 this holds iff the instance is
/// unsatisfiable.
pub fn decomposes_to_single_regular_table(instance: &ThreeSat) -> bool {
    let table = build_reduction_table(instance);
    let candidate = regular_candidate();
    let n = instance.variables;
    for bits in 0..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        for y in [false, true] {
            if table_output(&table, instance, &assignment, y)
                != table_output(&candidate, instance, &assignment, y)
            {
                return false;
            }
        }
    }
    true
}

/// The example instance of the Appendix:
/// `(X1 ∨ ¬X3 ∨ X4) ∧ (¬X1 ∨ X2 ∨ X3)` — satisfiable.
pub fn appendix_example() -> ThreeSat {
    ThreeSat {
        variables: 4,
        clauses: vec![
            vec![
                Literal {
                    variable: 0,
                    positive: true,
                },
                Literal {
                    variable: 2,
                    positive: false,
                },
                Literal {
                    variable: 3,
                    positive: true,
                },
            ],
            vec![
                Literal {
                    variable: 0,
                    positive: false,
                },
                Literal {
                    variable: 1,
                    positive: true,
                },
                Literal {
                    variable: 2,
                    positive: true,
                },
            ],
        ],
    }
}

/// A small unsatisfiable instance: all eight sign patterns over three
/// variables (every assignment violates exactly one clause).
pub fn unsatisfiable_example() -> ThreeSat {
    let mut clauses = Vec::new();
    for bits in 0..8u8 {
        clauses.push(
            (0..3)
                .map(|v| Literal {
                    variable: v,
                    positive: bits & (1 << v) != 0,
                })
                .collect(),
        );
    }
    ThreeSat {
        variables: 3,
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_example_matches_paper_table() {
        let instance = appendix_example();
        assert!(instance.is_satisfiable());
        let table = build_reduction_table(&instance);
        // Two clause rows plus the catch-all.
        assert_eq!(table.len(), 3);
        // The first row pins X1=0, X3=1, X4=0, Y=1 as in the paper's example.
        let row = &table.entries()[0];
        assert_eq!(row.flow_match.field(variable_field(0)).unwrap().value, 0);
        assert_eq!(row.flow_match.field(variable_field(2)).unwrap().value, 1);
        assert_eq!(row.flow_match.field(variable_field(3)).unwrap().value, 0);
        assert_eq!(row.flow_match.field(Y_FIELD).unwrap().value, 1);
    }

    #[test]
    fn table_evaluates_negated_formula() {
        let instance = appendix_example();
        let table = build_reduction_table(&instance);
        let n = instance.variables;
        for bits in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            // With Y=1 the table outputs f(X).
            assert_eq!(
                table_output(&table, &instance, &assignment, true),
                instance.evaluate(&assignment),
                "assignment {assignment:?}"
            );
            // With Y=0 no clause row can match: always true.
            assert!(table_output(&table, &instance, &assignment, false));
        }
    }

    #[test]
    fn satisfiable_instance_is_not_single_table_decomposable() {
        let instance = appendix_example();
        assert!(instance.is_satisfiable());
        assert!(!decomposes_to_single_regular_table(&instance));
    }

    #[test]
    fn unsatisfiable_instance_is_single_table_decomposable() {
        let instance = unsatisfiable_example();
        assert!(!instance.is_satisfiable());
        assert!(decomposes_to_single_regular_table(&instance));
    }

    #[test]
    fn satisfiability_oracle_sanity() {
        let trivially_sat = ThreeSat {
            variables: 1,
            clauses: vec![vec![Literal {
                variable: 0,
                positive: true,
            }]],
        };
        assert!(trivially_sat.is_satisfiable());
        let contradiction = ThreeSat {
            variables: 1,
            clauses: vec![
                vec![Literal {
                    variable: 0,
                    positive: true,
                }],
                vec![Literal {
                    variable: 0,
                    positive: false,
                }],
            ],
        };
        assert!(!contradiction.is_satisfiable());
    }
}
