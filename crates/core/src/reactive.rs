//! Shared reactive-handoff machinery: punt admission control for the slow
//! path, layered defense-in-depth style.
//!
//! The paper's reactive workloads (the access gateway, a learning switch)
//! depend on table misses reaching the controller and the controller's
//! flow-mods repopulating the pipeline. Between the miss and the install,
//! *every* packet of the missing flow keeps missing — and a line-rate flow
//! would flood the controller with thousands of identical packet-ins for one
//! decision. Worse, the slow path is an *attack surface*: a single tenant
//! emitting high-entropy traffic (every packet a fresh flow — the
//! `cache_attack` scenario) turns the punt channel into a denial of service
//! for every well-behaved tenant sharing the switch.
//!
//! The defense is layered, each layer stateless or low-state on the fast
//! path and every rejection counted by reason:
//!
//! 1. **Per-flow one-in-flight** — the [`PuntGate`]: the first miss of a
//!    flow is admitted, every further miss of the same flow is *suppressed*
//!    until the install completes. Absorbs line-rate repetition of one flow.
//! 2. **Per-source token buckets** — a fixed-width table of [`TokenBucket`]s
//!    indexed by the *source* signature ([`source_signature`]): who sent the
//!    packet, not which flow it is. A scanning tenant cycling destinations
//!    creates thousands of distinct flows but only one source — its punts
//!    collapse onto one bucket and are *shed* once it exceeds its rate,
//!    while other tenants' buckets stay full.
//! 3. **Aggregate controller budget** — one global [`TokenBucket`] bounding
//!    total punt admissions per second to what the controller can actually
//!    absorb, whatever the mix of sources.
//!
//! All three layers are zero-alloc at punt time (the buckets are fixed
//! arrays allocated at launch; acquiring is one CAS), and packets that never
//! punt pay for none of it. [`PuntPolicy`] configures layers 2 and 3;
//! [`PuntAdmission`] evaluates them in order.
//!
//! Flows are identified by a 64-bit signature of the extraction-time flow
//! key ([`punt_signature`]); RSS shard affinity means one flow only ever
//! punts from one worker, so per-shard gates never see cross-shard aliasing.
//! Sources are identified by [`source_signature`] over the key's origin
//! fields only, so per-source buckets see through destination churn.

use std::collections::HashSet;

use netdev::sync::atomic::{AtomicU64, Ordering};
use netdev::sync::Mutex;
use netdev::FxBuildHasher;
use openflow::FlowKey;
use pkt::Packet;

/// The 64-bit flow signature punt deduplication keys on: an FxHash of the
/// full extraction-time flow key. Both runtimes (and the tests asserting
/// suppression) must derive it the same way, which is why it lives here.
pub fn punt_signature(key: &FlowKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = netdev::FxHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// The 64-bit *source* signature the per-tenant admission buckets key on: a
/// hash of the flow key's origin fields only (ingress port, source MAC,
/// VLAN, source IP). Two flows from one sender share it even when the
/// sender cycles destinations and ports — which is exactly how a
/// high-entropy adversary evades per-*flow* state, and why layer 2 of the
/// admission pipeline must not key on the full tuple.
pub fn source_signature(key: &FlowKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = netdev::FxHasher::new();
    key.in_port.hash(&mut hasher);
    key.eth_src.hash(&mut hasher);
    key.vlan_vid.hash(&mut hasher);
    key.ipv4_src.hash(&mut hasher);
    key.ipv6_src.hash(&mut hasher);
    hasher.finish()
}

/// A token-bucket rate: sustained tokens per second plus the burst depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained refill rate, tokens per second (clamped to ≥ 1 effective
    /// millitoken per refill tick).
    pub per_sec: u64,
    /// Bucket depth: tokens that may be spent in one burst (clamped ≥ 1).
    pub burst: u64,
}

impl RateLimit {
    /// A limit of `per_sec` sustained with an equal burst depth.
    pub fn per_sec(per_sec: u64) -> Self {
        RateLimit {
            per_sec,
            burst: per_sec.max(1),
        }
    }
}

/// Tokens are tracked in 1/1024ths ("millitokens") so sub-1000/s rates
/// still refill something every tick.
const TOKEN_SCALE: u64 = 1024;
/// One refill tick is 1 ms of the caller-supplied nanosecond clock.
const TICK_NANOS: u64 = 1_000_000;

/// A lock-free token bucket: the whole state — last refill tick and current
/// millitoken count — packs into one `AtomicU64`, so acquiring a token is a
/// single CAS (zero-alloc, no lock, safe to hammer from every worker).
///
/// Time is supplied by the caller as nanoseconds on any monotone clock
/// (the runtimes pass "nanos since launch"); the bucket itself never reads a
/// clock, which keeps it deterministic under the loom model suites. Ticks
/// are 32-bit milliseconds — a clock living longer than ~49 days wraps and
/// costs at most one burst of over-admission, never an under-admission
/// stall, because a stale `last` tick saturates to zero elapsed.
#[derive(Debug)]
pub struct TokenBucket {
    /// `(last_refill_tick as u64) << 32 | millitokens`.
    state: AtomicU64,
    /// Millitokens refilled per tick (≥ 1 so every configured rate makes
    /// progress).
    per_tick: u64,
    /// Millitoken ceiling (the burst depth).
    cap: u64,
}

fn pack(tick: u32, millitokens: u64) -> u64 {
    debug_assert!(millitokens <= u64::from(u32::MAX));
    (u64::from(tick) << 32) | millitokens
}

impl TokenBucket {
    /// A bucket starting full at `limit.burst` tokens.
    pub fn new(limit: RateLimit) -> Self {
        let per_tick = (limit.per_sec.saturating_mul(TOKEN_SCALE) / 1000).max(1);
        let cap = limit
            .burst
            .max(1)
            .saturating_mul(TOKEN_SCALE)
            .min(u64::from(u32::MAX));
        TokenBucket {
            state: AtomicU64::new(pack(0, cap)),
            per_tick,
            cap,
        }
    }

    /// Attempts to spend one token at time `now_nanos`; `false` means the
    /// bucket is empty (the punt must be shed). Refill happens inline on
    /// the same CAS — there is no background filler thread.
    pub fn try_acquire(&self, now_nanos: u64) -> bool {
        let now_tick = (now_nanos / TICK_NANOS) as u32;
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let last = (cur >> 32) as u32;
            let tokens = cur & u64::from(u32::MAX);
            // Saturating: a peer thread may have stored a slightly newer
            // tick than this thread's clock read; that is zero elapsed, not
            // 49 days of refill.
            let elapsed = u64::from(now_tick.saturating_sub(last));
            let refilled = tokens
                .saturating_add(elapsed.saturating_mul(self.per_tick))
                .min(self.cap);
            let (next, granted) = if refilled >= TOKEN_SCALE {
                (pack(now_tick.max(last), refilled - TOKEN_SCALE), true)
            } else if elapsed == 0 {
                // Nothing accrued and nothing to spend: fail without a
                // store so a shedding storm stays read-mostly.
                return false;
            } else {
                // Bank the fractional accrual under the new tick so slow
                // rates still converge on their configured average.
                (pack(now_tick.max(last), refilled), false)
            };
            match self
                .state
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return granted,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whole tokens currently available (diagnostics only).
    pub fn available(&self) -> u64 {
        (self.state.load(Ordering::Relaxed) & u64::from(u32::MAX)) / TOKEN_SCALE
    }
}

/// Configuration of the layered punt-admission pipeline (layers 2 and 3;
/// layer 1 — the per-flow [`PuntGate`] — is sized separately because it is
/// per-shard). The default is fully open: no source or aggregate limit, the
/// pre-hardening behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PuntPolicy {
    /// Layer 2: per-source punt rate, applied to every source independently
    /// through a fixed table of [`source_buckets`](PuntPolicy::source_buckets)
    /// token buckets. `None` disables the layer.
    pub per_source: Option<RateLimit>,
    /// Width of the per-source bucket table (rounded up to a power of two,
    /// clamped ≥ 16). Sources hash onto buckets, so the state is O(width)
    /// regardless of how many sources exist — an adversary minting fake
    /// sources degrades toward the aggregate limit, never toward unbounded
    /// memory.
    pub source_buckets: usize,
    /// Layer 3: aggregate punt budget across all sources — what the
    /// controller can actually absorb. `None` disables the layer.
    pub aggregate: Option<RateLimit>,
}

impl Default for PuntPolicy {
    fn default() -> Self {
        PuntPolicy {
            per_source: None,
            source_buckets: 1024,
            aggregate: None,
        }
    }
}

impl PuntPolicy {
    /// The hardened profile used by the adversarial-storm benchmarks:
    /// `per_source` punts/s per tenant, an aggregate budget of
    /// `aggregate` punts/s, 1024 source buckets.
    pub fn hardened(per_source: u64, aggregate: u64) -> Self {
        PuntPolicy {
            per_source: Some(RateLimit::per_sec(per_source)),
            source_buckets: 1024,
            aggregate: Some(RateLimit::per_sec(aggregate)),
        }
    }
}

/// Why (or that) the admission pipeline let a punt through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PuntAdmit {
    /// Every layer passed: raise the packet-in.
    Admitted,
    /// Layer 2 shed it: the packet's *source* exceeded its punt rate.
    ShedSource,
    /// Layer 3 shed it: the switch-wide controller budget is exhausted.
    ShedAggregate,
}

/// Layers 2 and 3 of the punt-admission pipeline, shared across every
/// worker shard (sources spread over shards, so per-shard buckets would
/// multiply every tenant's budget by the shard count).
///
/// Layer order matters and is fixed: the per-source bucket is charged
/// first, so a source already over its own rate cannot drain the aggregate
/// budget that compliant sources share — the misbehaving tenant is shed at
/// its own layer and the blast radius stops there.
#[derive(Debug)]
pub struct PuntAdmission {
    source_buckets: Option<Box<[TokenBucket]>>,
    aggregate: Option<TokenBucket>,
}

impl PuntAdmission {
    /// Builds the pipeline for `policy`. All bucket state is allocated
    /// here, once; admission itself never allocates.
    pub fn new(policy: &PuntPolicy) -> Self {
        let source_buckets = policy.per_source.map(|limit| {
            let width = policy.source_buckets.max(16).next_power_of_two();
            (0..width)
                .map(|_| TokenBucket::new(limit))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        PuntAdmission {
            source_buckets,
            aggregate: policy.aggregate.map(TokenBucket::new),
        }
    }

    /// Runs layers 2 and 3 for one gate-admitted punt from `source` at time
    /// `now_nanos`. Zero-alloc; at most two CASes.
    pub fn admit(&self, source: u64, now_nanos: u64) -> PuntAdmit {
        if let Some(buckets) = &self.source_buckets {
            // Multiply-shift reduction on the high bits, like the RSS shard
            // map: bias-free for any power-of-two width.
            let idx = ((u128::from(source) * buckets.len() as u128) >> 64) as usize;
            if !buckets[idx].try_acquire(now_nanos) {
                return PuntAdmit::ShedSource;
            }
        }
        if let Some(aggregate) = &self.aggregate {
            if !aggregate.try_acquire(now_nanos) {
                return PuntAdmit::ShedAggregate;
            }
        }
        PuntAdmit::Admitted
    }
}

/// Admission control for controller punts: at most one packet-in per flow
/// may be in flight at a time.
///
/// * [`PuntGate::admit`] — called at punt time; `true` means "send the
///   packet-in", `false` means the flow already has one in flight and this
///   punt copy must be suppressed (the packet itself still forwards per the
///   pipeline's miss action — only the controller copy is elided).
/// * [`PuntGate::complete`] — called when the install finished (or the punt
///   was abandoned, e.g. a full punt ring), re-arming the flow.
///
/// The in-flight table is bounded: at capacity the gate *fails open* —
/// further new flows are admitted untracked, trading duplicate packet-ins
/// (which a correct controller must tolerate anyway: OpenFlow never promised
/// exactly-once packet-ins) for a bounded memory footprint under a miss
/// storm of millions of flows.
#[derive(Debug)]
pub struct PuntGate {
    in_flight: Mutex<HashSet<u64, FxBuildHasher>>,
    capacity: usize,
    admitted: AtomicU64,
    suppressed: AtomicU64,
}

impl PuntGate {
    /// Default bound on tracked in-flight flows.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A gate tracking at most `capacity` in-flight flows (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PuntGate {
            in_flight: Mutex::new(HashSet::with_hasher(FxBuildHasher::default())),
            capacity: capacity.max(1),
            admitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Decides whether a punt for `flow` should produce a packet-in. `true`
    /// admits (and tracks the flow as in-flight, capacity permitting);
    /// `false` means a packet-in for this flow is already in flight.
    pub fn admit(&self, flow: u64) -> bool {
        let mut set = self.in_flight.lock();
        if set.contains(&flow) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if set.len() < self.capacity {
            set.insert(flow);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Marks `flow`'s in-flight packet-in as resolved (installed, answered
    /// with a drop, or abandoned): the next miss of this flow punts again.
    pub fn complete(&self, flow: u64) {
        self.in_flight.lock().remove(&flow);
    }

    /// Number of flows currently tracked as in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.lock().len()
    }

    /// Punts admitted (each produced — or was meant to produce — one
    /// packet-in).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Punts suppressed because their flow already had a packet-in in
    /// flight.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

impl Default for PuntGate {
    fn default() -> Self {
        PuntGate::new(Self::DEFAULT_CAPACITY)
    }
}

/// Reusable per-burst ingress snapshots: frame bytes + ingress port, copied
/// *before* processing (which rewrites frames in place) so punt copies carry
/// the frame as received. Buffers are reused across bursts — steady-state
/// snapshotting is a memcpy per packet, no allocation. Shared by the
/// batched single-switch runtime and the sharded workers.
#[derive(Debug, Default)]
pub struct IngressSnapshot {
    frames: Vec<Vec<u8>>,
    ports: Vec<u32>,
}

impl IngressSnapshot {
    /// Copies every frame of `burst` (and its ingress port) into the reused
    /// buffers.
    pub fn capture(&mut self, burst: &[Packet]) {
        self.ports.clear();
        for (i, packet) in burst.iter().enumerate() {
            if self.frames.len() <= i {
                self.frames.push(Vec::with_capacity(packet.len()));
            }
            let frame = &mut self.frames[i];
            frame.clear();
            frame.extend_from_slice(packet.data());
            self.ports.push(packet.in_port);
        }
    }

    /// Rebuilds burst slot `i`'s packet as it arrived.
    ///
    /// # Panics
    /// Panics if `i` is outside the last captured burst.
    pub fn packet(&self, i: usize) -> Packet {
        Packet::from_bytes(&self.frames[i], self.ports[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn signature_is_per_flow() {
        let a = FlowKey::extract(&PacketBuilder::tcp().tcp_src(1).build());
        let a2 = FlowKey::extract(&PacketBuilder::tcp().tcp_src(1).build());
        let b = FlowKey::extract(&PacketBuilder::tcp().tcp_src(2).build());
        assert_eq!(punt_signature(&a), punt_signature(&a2));
        assert_ne!(punt_signature(&a), punt_signature(&b));
    }

    #[test]
    fn second_punt_of_a_flow_is_suppressed_until_complete() {
        let gate = PuntGate::new(16);
        assert!(gate.admit(7));
        assert!(!gate.admit(7), "in-flight flow must be suppressed");
        assert!(gate.admit(8), "other flows are unaffected");
        assert_eq!(gate.in_flight(), 2);
        gate.complete(7);
        assert!(gate.admit(7), "completed flow punts again");
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.suppressed(), 1);
    }

    #[test]
    fn source_signature_sees_through_destination_churn() {
        // One sender scanning many destinations: one source signature.
        let a = FlowKey::extract(
            &PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 1])
                .tcp_dst(80)
                .build(),
        );
        let b = FlowKey::extract(
            &PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 1])
                .tcp_dst(8080)
                .ipv4_dst([203, 0, 113, 7])
                .build(),
        );
        assert_ne!(punt_signature(&a), punt_signature(&b));
        assert_eq!(source_signature(&a), source_signature(&b));
        // A different sender is a different source.
        let c = FlowKey::extract(
            &PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 2])
                .tcp_dst(80)
                .build(),
        );
        assert_ne!(source_signature(&a), source_signature(&c));
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn token_bucket_spends_burst_then_refills_at_rate() {
        // 1000/s sustained, burst 4: four immediate tokens, then 1 per ms.
        let bucket = TokenBucket::new(RateLimit {
            per_sec: 1000,
            burst: 4,
        });
        for _ in 0..4 {
            assert!(bucket.try_acquire(0));
        }
        assert!(!bucket.try_acquire(0), "burst exhausted");
        assert!(!bucket.try_acquire(MS / 2), "half a tick: nothing accrued");
        assert!(bucket.try_acquire(MS), "one tick refills one token");
        assert!(!bucket.try_acquire(MS));
        // A long idle period refills to the burst cap, not beyond.
        for _ in 0..4 {
            assert!(bucket.try_acquire(10_000 * MS));
        }
        assert!(!bucket.try_acquire(10_000 * MS));
    }

    #[test]
    fn token_bucket_banks_fractional_accrual() {
        // 100/s: one token every 10 ticks; single-tick polls must still
        // converge on the configured average instead of losing fractions.
        let bucket = TokenBucket::new(RateLimit {
            per_sec: 100,
            burst: 1,
        });
        assert!(bucket.try_acquire(0));
        let mut granted = 0;
        for tick in 1..=100u64 {
            if bucket.try_acquire(tick * MS) {
                granted += 1;
            }
        }
        assert!(
            (9..=11).contains(&granted),
            "100 ticks at 100/s should grant ~10, got {granted}"
        );
    }

    #[test]
    fn token_bucket_stale_clock_is_zero_elapsed() {
        let bucket = TokenBucket::new(RateLimit {
            per_sec: 1000,
            burst: 1,
        });
        assert!(bucket.try_acquire(100 * MS));
        // A thread with a slightly older clock read must not underflow into
        // a 49-day refill.
        assert!(!bucket.try_acquire(99 * MS));
        assert!(bucket.try_acquire(101 * MS));
    }

    #[test]
    fn admission_sheds_per_source_before_aggregate() {
        // Source limit 2/s (burst 2), aggregate 100/s: an abusive source is
        // stopped by its own bucket without touching the shared budget.
        let admission = PuntAdmission::new(&PuntPolicy {
            per_source: Some(RateLimit {
                per_sec: 2,
                burst: 2,
            }),
            source_buckets: 64,
            aggregate: Some(RateLimit::per_sec(100)),
        });
        // Realistic signatures (hash outputs with high-bit entropy — the
        // bucket index is a multiply-shift on the high bits); these two land
        // in different buckets of the 64-wide table.
        let attacker = 0x0bad_c0de_dead_beef_u64;
        let victim = 0x600d_600d_1234_5678_u64;
        assert_eq!(admission.admit(attacker, 0), PuntAdmit::Admitted);
        assert_eq!(admission.admit(attacker, 0), PuntAdmit::Admitted);
        for _ in 0..50 {
            assert_eq!(admission.admit(attacker, 0), PuntAdmit::ShedSource);
        }
        // The victim's bucket and the aggregate are untouched by the sheds.
        assert_eq!(admission.admit(victim, 0), PuntAdmit::Admitted);
    }

    #[test]
    fn admission_aggregate_budget_backstops() {
        let admission = PuntAdmission::new(&PuntPolicy {
            per_source: Some(RateLimit::per_sec(1_000)),
            source_buckets: 64,
            aggregate: Some(RateLimit {
                per_sec: 3,
                burst: 3,
            }),
        });
        // Many distinct sources, each within its own rate: the aggregate
        // layer still bounds the total.
        let mut admitted = 0;
        let mut shed_aggregate = 0;
        for source in 0..32u64 {
            match admission.admit(source.wrapping_mul(0x9e37_79b9_7f4a_7c15), 0) {
                PuntAdmit::Admitted => admitted += 1,
                PuntAdmit::ShedAggregate => shed_aggregate += 1,
                PuntAdmit::ShedSource => panic!("sources were within rate"),
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(shed_aggregate, 29);
    }

    #[test]
    fn open_policy_admits_everything() {
        let admission = PuntAdmission::new(&PuntPolicy::default());
        for source in 0..10_000u64 {
            assert_eq!(admission.admit(source, 0), PuntAdmit::Admitted);
        }
    }

    #[test]
    fn full_gate_fails_open() {
        let gate = PuntGate::new(2);
        assert!(gate.admit(1));
        assert!(gate.admit(2));
        // At capacity: new flows are admitted but untracked — duplicates
        // beat an unbounded table.
        assert!(gate.admit(3));
        assert!(gate.admit(3));
        assert_eq!(gate.in_flight(), 2);
        // Tracked flows keep deduplicating.
        assert!(!gate.admit(1));
    }
}
