//! Shared reactive-handoff machinery: punt deduplication for the slow path.
//!
//! The paper's reactive workloads (the access gateway, a learning switch)
//! depend on table misses reaching the controller and the controller's
//! flow-mods repopulating the pipeline. Between the miss and the install,
//! *every* packet of the missing flow keeps missing — and a line-rate flow
//! would flood the controller with thousands of identical packet-ins for one
//! decision. The [`PuntGate`] is the standard fix, shared by the synchronous
//! [`EswitchRuntime`](crate::runtime::EswitchRuntime) and the sharded
//! runtime's asynchronous controller channel: the first miss of a flow is
//! admitted, every further miss of the same flow is suppressed until the
//! install completes (or the punt is abandoned), at which point the flow may
//! punt again.
//!
//! Flows are identified by a 64-bit signature of the extraction-time flow
//! key ([`punt_signature`]); RSS shard affinity means one flow only ever
//! punts from one worker, so per-shard gates never see cross-shard aliasing.

use std::collections::HashSet;

use netdev::sync::atomic::{AtomicU64, Ordering};
use netdev::sync::Mutex;
use netdev::FxBuildHasher;
use openflow::FlowKey;
use pkt::Packet;

/// The 64-bit flow signature punt deduplication keys on: an FxHash of the
/// full extraction-time flow key. Both runtimes (and the tests asserting
/// suppression) must derive it the same way, which is why it lives here.
pub fn punt_signature(key: &FlowKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = netdev::FxHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Admission control for controller punts: at most one packet-in per flow
/// may be in flight at a time.
///
/// * [`PuntGate::admit`] — called at punt time; `true` means "send the
///   packet-in", `false` means the flow already has one in flight and this
///   punt copy must be suppressed (the packet itself still forwards per the
///   pipeline's miss action — only the controller copy is elided).
/// * [`PuntGate::complete`] — called when the install finished (or the punt
///   was abandoned, e.g. a full punt ring), re-arming the flow.
///
/// The in-flight table is bounded: at capacity the gate *fails open* —
/// further new flows are admitted untracked, trading duplicate packet-ins
/// (which a correct controller must tolerate anyway: OpenFlow never promised
/// exactly-once packet-ins) for a bounded memory footprint under a miss
/// storm of millions of flows.
#[derive(Debug)]
pub struct PuntGate {
    in_flight: Mutex<HashSet<u64, FxBuildHasher>>,
    capacity: usize,
    admitted: AtomicU64,
    suppressed: AtomicU64,
}

impl PuntGate {
    /// Default bound on tracked in-flight flows.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A gate tracking at most `capacity` in-flight flows (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PuntGate {
            in_flight: Mutex::new(HashSet::with_hasher(FxBuildHasher::default())),
            capacity: capacity.max(1),
            admitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Decides whether a punt for `flow` should produce a packet-in. `true`
    /// admits (and tracks the flow as in-flight, capacity permitting);
    /// `false` means a packet-in for this flow is already in flight.
    pub fn admit(&self, flow: u64) -> bool {
        let mut set = self.in_flight.lock();
        if set.contains(&flow) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if set.len() < self.capacity {
            set.insert(flow);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Marks `flow`'s in-flight packet-in as resolved (installed, answered
    /// with a drop, or abandoned): the next miss of this flow punts again.
    pub fn complete(&self, flow: u64) {
        self.in_flight.lock().remove(&flow);
    }

    /// Number of flows currently tracked as in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.lock().len()
    }

    /// Punts admitted (each produced — or was meant to produce — one
    /// packet-in).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Punts suppressed because their flow already had a packet-in in
    /// flight.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

impl Default for PuntGate {
    fn default() -> Self {
        PuntGate::new(Self::DEFAULT_CAPACITY)
    }
}

/// Reusable per-burst ingress snapshots: frame bytes + ingress port, copied
/// *before* processing (which rewrites frames in place) so punt copies carry
/// the frame as received. Buffers are reused across bursts — steady-state
/// snapshotting is a memcpy per packet, no allocation. Shared by the
/// batched single-switch runtime and the sharded workers.
#[derive(Debug, Default)]
pub struct IngressSnapshot {
    frames: Vec<Vec<u8>>,
    ports: Vec<u32>,
}

impl IngressSnapshot {
    /// Copies every frame of `burst` (and its ingress port) into the reused
    /// buffers.
    pub fn capture(&mut self, burst: &[Packet]) {
        self.ports.clear();
        for (i, packet) in burst.iter().enumerate() {
            if self.frames.len() <= i {
                self.frames.push(Vec::with_capacity(packet.len()));
            }
            let frame = &mut self.frames[i];
            frame.clear();
            frame.extend_from_slice(packet.data());
            self.ports.push(packet.in_port);
        }
    }

    /// Rebuilds burst slot `i`'s packet as it arrived.
    ///
    /// # Panics
    /// Panics if `i` is outside the last captured burst.
    pub fn packet(&self, i: usize) -> Packet {
        Packet::from_bytes(&self.frames[i], self.ports[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn signature_is_per_flow() {
        let a = FlowKey::extract(&PacketBuilder::tcp().tcp_src(1).build());
        let a2 = FlowKey::extract(&PacketBuilder::tcp().tcp_src(1).build());
        let b = FlowKey::extract(&PacketBuilder::tcp().tcp_src(2).build());
        assert_eq!(punt_signature(&a), punt_signature(&a2));
        assert_ne!(punt_signature(&a), punt_signature(&b));
    }

    #[test]
    fn second_punt_of_a_flow_is_suppressed_until_complete() {
        let gate = PuntGate::new(16);
        assert!(gate.admit(7));
        assert!(!gate.admit(7), "in-flight flow must be suppressed");
        assert!(gate.admit(8), "other flows are unaffected");
        assert_eq!(gate.in_flight(), 2);
        gate.complete(7);
        assert!(gate.admit(7), "completed flow punts again");
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.suppressed(), 1);
    }

    #[test]
    fn full_gate_fails_open() {
        let gate = PuntGate::new(2);
        assert!(gate.admit(1));
        assert!(gate.admit(2));
        // At capacity: new flows are admitted but untracked — duplicates
        // beat an unbounded table.
        assert!(gate.admit(3));
        assert!(gate.admit(3));
        assert_eq!(gate.in_flight(), 2);
        // Tracked flows keep deduplicating.
        assert!(!gate.admit(1));
    }
}
