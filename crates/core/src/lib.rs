//! # eswitch — dataplane specialization for OpenFlow software switching
//!
//! This crate is the primary contribution of the reproduced paper: a switch
//! architecture that *compiles* the configured OpenFlow pipeline into a
//! specialized fast path assembled from pre-fabricated templates, instead of
//! pushing every packet through a general-purpose flow cache.
//!
//! The compilation pipeline mirrors §3 of the paper:
//!
//! 1. **Flow table analysis** ([`analysis`]) — recognise, for every flow
//!    table, the most efficient *table template* whose prerequisite it
//!    satisfies, falling back along the chain of Fig. 4:
//!    direct code → compound hash → LPM → linked list.
//! 2. **Table decomposition** ([`decompose`]) — optionally rewrite tables
//!    that would only fit the slow linked-list template into an equivalent
//!    multi-stage pipeline of template-friendly tables (Figs. 5–6 and the
//!    Appendix hardness result).
//! 3. **Template specialization & linking** ([`compile`]) — patch flow keys
//!    into the matcher/table templates, deduplicate action sets, and link
//!    `goto_table` jumps through per-table trampolines so individual tables
//!    can later be swapped atomically.
//! 4. **Runtime** ([`runtime`]) — execute the compiled datapath, apply
//!    flow-mods with per-table granularity (incremental where the template
//!    allows, side-by-side rebuild + trampoline swap otherwise), and keep
//!    serving packets during updates.
//! 5. **Performance model** ([`perfmodel`]) — compose per-template cycle
//!    "atoms" into whole-datapath estimates (Fig. 20) and lower/upper packet
//!    rate bounds (Figs. 13 and 16).
//!
//! ```
//! use eswitch::runtime::EswitchRuntime;
//! use openflow::{Action, Field, FlowEntry, FlowMatch, Pipeline};
//! use openflow::instruction::terminal_actions;
//! use pkt::builder::PacketBuilder;
//!
//! // A one-table L2 pipeline compiles into the compound-hash template.
//! let mut pipeline = Pipeline::with_tables(1);
//! pipeline.table_mut(0).unwrap().insert(FlowEntry::new(
//!     FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001),
//!     10,
//!     terminal_actions(vec![Action::Output(1)]),
//! ));
//! let switch = EswitchRuntime::compile(pipeline).unwrap();
//! let mut packet = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 1]).build();
//! assert_eq!(switch.process(&mut packet).outputs, vec![1]);
//! ```

pub mod analysis;
pub mod compile;
pub mod decompose;
pub mod perfmodel;
pub mod reactive;
pub mod runtime;
pub mod templates;
pub mod update;

pub use analysis::{select_template, CompilerConfig, TemplateKind};
pub use compile::{compile, CompileError, CompiledDatapath};
pub use decompose::{decompose_pipeline, decompose_table, DecomposeStats};
pub use perfmodel::{CacheLevelCosts, PerformanceEstimate, PerformanceModel};
pub use reactive::{punt_signature, IngressSnapshot, PuntGate};
pub use runtime::EswitchRuntime;
pub use update::{UpdateClass, UpdateCounter, UpdatePlan, UpdatePlanner};
