//! The shared §3.4 update planner.
//!
//! The paper makes rule updates cheap via a three-tier ladder: an in-place
//! incremental template edit when the flow-mod fits the compiled template's
//! shape, a side-by-side per-table rebuild swapped through the table's
//! trampoline when only existing tables changed, and a full recompilation
//! only when the pipeline's structure changed. Before this module the ladder
//! lived inside `EswitchRuntime::flow_mod`; now it is a standalone
//! [`UpdatePlanner`] producing an [`UpdatePlan`], and both the single-switch
//! runtime and the sharded control plane consume the same plan:
//!
//! * [`EswitchRuntime`](crate::runtime::EswitchRuntime) applies the plan *in
//!   place* (trampoline semantics: packets see the change at their next table
//!   lookup);
//! * the sharded control plane applies incremental edits in place on the
//!   shared compiled datapath (O(1), the paper's trampoline design) and
//!   realises per-table plans as a *new* [`CompiledDatapath`] that
//!   structurally shares every untouched table
//!   ([`CompiledDatapath::with_rebuilt_tables`]), so an epoch publication
//!   costs one slot, not one datapath.
//!
//! Planning is conservative: a plan is only produced when the edit is known
//! to apply (shape checked, existence checked for deletes, parser depth
//! checked for adds), so consumers can account the update class up front.

use std::sync::Arc;

use netdev::sync::atomic::{AtomicU64, Ordering};

use openflow::flow_mod::{FlowModCommand, FlowModEffect};
use openflow::pipeline::TableId;
use openflow::{Field, FieldValue, FlowMod, Pipeline};

use crate::analysis::CompilerConfig;
use crate::compile::{compile_table, instruction_fields, CompiledDatapath};
use crate::templates::action::ActionStore;
use crate::templates::parser::ParserTemplate;
use crate::templates::table::{CompiledInstrs, CompiledTable};

/// Which tier of the §3.4 ladder absorbed an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateClass {
    /// In-place incremental template edit (hash insert/remove, LPM
    /// insert/remove).
    Incremental,
    /// Side-by-side rebuild of the touched tables only.
    PerTable,
    /// Full datapath recompilation (structural change).
    Full,
}

impl UpdateClass {
    /// Short label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateClass::Incremental => "incremental",
            UpdateClass::PerTable => "per_table",
            UpdateClass::Full => "full",
        }
    }
}

/// Counter for update events: number of flow-mods absorbed at a tier plus
/// the flow entries they touched. Unlike the byte-oriented traffic
/// [`netdev::Counters`], the units here are meaningful for updates — a
/// `record(0)`-style "packet of zero bytes" cannot sneak in.
#[derive(Debug, Default)]
pub struct UpdateCounter {
    updates: AtomicU64,
    entries: AtomicU64,
}

impl UpdateCounter {
    /// Records one absorbed flow-mod that touched `entries` flow entries.
    pub fn record(&self, entries: u64) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.entries.fetch_add(entries, Ordering::Relaxed);
    }

    /// Flow-mods absorbed at this tier.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Flow entries those flow-mods touched (added + modified + removed).
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }
}

/// One in-place template edit, precompiled and shape-validated by the
/// planner.
#[derive(Debug)]
pub struct TableEdit {
    /// The table the edit targets.
    pub table: TableId,
    op: EditOp,
}

#[derive(Debug)]
enum EditOp {
    HashInsert {
        values: Vec<FieldValue>,
        instrs: Arc<CompiledInstrs>,
    },
    HashRemove {
        values: Vec<FieldValue>,
    },
    LpmInsert {
        prefix: u32,
        len: u8,
        instrs: Arc<CompiledInstrs>,
    },
    LpmRemove {
        prefix: u32,
        len: u8,
    },
}

impl TableEdit {
    /// Applies the edit in place through the table's trampoline lock.
    /// Returns false when the live template no longer accepts it (e.g. LPM
    /// tbl8 exhaustion); the caller escalates to a per-table rebuild.
    pub fn apply(&self, datapath: &CompiledDatapath) -> bool {
        let Some(slot) = datapath.slot(self.table) else {
            return false;
        };
        let mut table = slot.table.write();
        match (&mut *table, &self.op) {
            (CompiledTable::CompoundHash(hash), EditOp::HashInsert { values, instrs }) => {
                hash.insert(values, Arc::clone(instrs));
                true
            }
            (CompiledTable::CompoundHash(hash), EditOp::HashRemove { values }) => {
                hash.remove(values)
            }
            (
                CompiledTable::Lpm(lpm),
                EditOp::LpmInsert {
                    prefix,
                    len,
                    instrs,
                },
            ) => lpm.insert(*prefix, *len, Arc::clone(instrs)).is_ok(),
            (CompiledTable::Lpm(lpm), EditOp::LpmRemove { prefix, len }) => {
                lpm.remove(*prefix, *len).is_ok()
            }
            _ => false,
        }
    }
}

/// How a flow-mod should be absorbed into a compiled datapath.
#[derive(Debug)]
pub enum UpdatePlan {
    /// In-place incremental edit of one table's template.
    Incremental(TableEdit),
    /// Rebuilt templates for the touched tables, ready to swap into their
    /// trampoline slots (or into fresh structurally-shared slots).
    PerTable(Vec<(TableId, CompiledTable)>),
    /// Structural change: the whole datapath must be recompiled.
    Full,
}

impl UpdatePlan {
    /// The ladder tier this plan corresponds to.
    pub fn class(&self) -> UpdateClass {
        match self {
            UpdatePlan::Incremental(_) => UpdateClass::Incremental,
            UpdatePlan::PerTable(_) => UpdateClass::PerTable,
            UpdatePlan::Full => UpdateClass::Full,
        }
    }
}

/// Outcome of [`UpdatePlanner::absorb`]: how far below the full tier the
/// update landed.
#[derive(Debug)]
pub enum Absorbed {
    /// The live datapath took an incremental edit in place.
    Incremental,
    /// The touched tables were rebuilt; the caller decides where they land
    /// (trampoline swap in place, or a structurally-sharing successor
    /// datapath via [`CompiledDatapath::with_rebuilt_tables`]).
    PerTable(Vec<(TableId, CompiledTable)>),
    /// Structure changed: the caller must recompile the whole datapath.
    Full,
}

/// The §3.4 update planner: decides, for an applied flow-mod, the cheapest
/// tier that preserves correctness, and precompiles whatever that tier needs.
#[derive(Debug, Clone, Copy)]
pub struct UpdatePlanner<'a> {
    config: &'a CompilerConfig,
}

impl<'a> UpdatePlanner<'a> {
    /// A planner for datapaths compiled with `config`.
    pub fn new(config: &'a CompilerConfig) -> Self {
        UpdatePlanner { config }
    }

    /// Plans the update for `fm` (already applied to `pipeline`, yielding
    /// `effect`) against the running `datapath`.
    pub fn plan(
        &self,
        pipeline: &Pipeline,
        datapath: &CompiledDatapath,
        fm: &FlowMod,
        effect: &FlowModEffect,
    ) -> UpdatePlan {
        if let Some(edit) = self.plan_incremental(pipeline, datapath, fm, effect) {
            return UpdatePlan::Incremental(edit);
        }
        match self.plan_per_table(pipeline, datapath, effect) {
            Some(tables) => UpdatePlan::PerTable(tables),
            None => UpdatePlan::Full,
        }
    }

    /// Plans and executes everything below the full tier in one step: an
    /// incremental edit is applied to `datapath` in place (escalating to a
    /// per-table rebuild if the live template rejects it); a per-table plan
    /// returns the rebuilt tables for the caller to realise. `Full` means
    /// the caller must recompile — the one step whose execution (and failure
    /// handling) differs per consumer.
    pub fn absorb(
        &self,
        pipeline: &Pipeline,
        datapath: &CompiledDatapath,
        fm: &FlowMod,
        effect: &FlowModEffect,
    ) -> Absorbed {
        match self.plan(pipeline, datapath, fm, effect) {
            UpdatePlan::Incremental(edit) => {
                if edit.apply(datapath) {
                    return Absorbed::Incremental;
                }
                // The live template rejected the edit (e.g. LPM tbl8
                // exhaustion): escalate to a per-table rebuild.
                match self.plan_per_table(pipeline, datapath, effect) {
                    Some(tables) => Absorbed::PerTable(tables),
                    None => Absorbed::Full,
                }
            }
            UpdatePlan::PerTable(tables) => Absorbed::PerTable(tables),
            UpdatePlan::Full => Absorbed::Full,
        }
    }

    /// Attempts tier 1: a single-table Add/DeleteStrict whose shape fits the
    /// live template, whose fields the compiled parser already covers, and
    /// whose priority relations keep the template's semantics exact. Hash
    /// and LPM templates key on match values alone — one slot per key —
    /// while the pipeline resolves overlaps by priority, so the edit is only
    /// absorbable when the edited key has no priority story left: an Add
    /// must leave exactly one same-match entry (a duplicate at another
    /// priority cannot share one slot) that outranks the catch-all, a
    /// DeleteStrict must leave none (the slot removal must not erase a
    /// surviving duplicate), and a new prefix rule must order by specificity
    /// against every overlapping prefix (the LPM prerequisite, checked
    /// against the new rule only — existing rules already kept the
    /// invariant). Anything else escalates to the per-table rebuild, whose
    /// template selection re-validates the whole table.
    fn plan_incremental(
        &self,
        pipeline: &Pipeline,
        datapath: &CompiledDatapath,
        fm: &FlowMod,
        effect: &FlowModEffect,
    ) -> Option<TableEdit> {
        if effect.tables_touched.len() != 1 {
            return None;
        }
        let table_id = effect.tables_touched[0];
        let slot = datapath.slot(table_id)?;
        let table_entries = pipeline.table(table_id)?.entries();
        let same_match = table_entries
            .iter()
            .filter(|e| e.flow_match == fm.flow_match)
            .count();
        match fm.command {
            FlowModCommand::Add => {
                if same_match != 1 || !outranks_catch_all(table_entries, fm.priority) {
                    return None;
                }
            }
            FlowModCommand::DeleteStrict => {
                if same_match != 0 {
                    return None;
                }
            }
            _ => return None,
        }
        if matches!(fm.command, FlowModCommand::Add) {
            // An added entry may need a deeper parser than the datapath was
            // compiled with — not only through its match fields (the template
            // shape checks below pin those) but through action-written
            // fields: a compiled SetField(IpDscp)/DecNwTtl silently no-ops
            // when the parser never located the IP header. Escalate instead.
            let entry = openflow::FlowEntry::new(
                fm.flow_match.clone(),
                fm.priority,
                fm.instructions.clone(),
            );
            let needed = ParserTemplate::for_fields(
                entry
                    .flow_match
                    .fields()
                    .iter()
                    .map(|mf| mf.field)
                    .chain(instruction_fields(&entry)),
            );
            if needed.depth() > datapath.parser().depth() {
                return None;
            }
        }
        let table = slot.table.read();
        let op = match (&*table, fm.command) {
            (CompiledTable::CompoundHash(hash), FlowModCommand::Add) => {
                // The new entry must have exactly the template's field shape.
                let values = hash_key_values(hash.fields(), fm)?;
                EditOp::HashInsert {
                    values,
                    instrs: compile_entry_instrs_for(fm),
                }
            }
            (CompiledTable::CompoundHash(hash), FlowModCommand::DeleteStrict) => {
                let values = hash_key_values(hash.fields(), fm)?;
                if !hash.contains(&values) {
                    return None;
                }
                EditOp::HashRemove { values }
            }
            (CompiledTable::Lpm(lpm), FlowModCommand::Add) => {
                let (prefix, len) = lpm_rule(lpm.field(), fm)?;
                if !lpm_priority_consistent(table_entries, fm, prefix, len) {
                    return None;
                }
                EditOp::LpmInsert {
                    prefix,
                    len,
                    instrs: compile_entry_instrs_for(fm),
                }
            }
            (CompiledTable::Lpm(lpm), FlowModCommand::DeleteStrict) => {
                let (prefix, len) = lpm_rule(lpm.field(), fm)?;
                if !lpm.contains(prefix, len) {
                    return None;
                }
                EditOp::LpmRemove { prefix, len }
            }
            _ => return None,
        };
        Some(TableEdit {
            table: table_id,
            op,
        })
    }

    /// Attempts tier 2: every touched table already exists in the datapath
    /// and the change does not require a deeper packet parser than the one
    /// the datapath was compiled with (matching a new, deeper field after a
    /// shallow-parse compile needs the full recompile path). Produces the
    /// rebuilt templates; also used to escalate a failed in-place edit.
    pub fn plan_per_table(
        &self,
        pipeline: &Pipeline,
        datapath: &CompiledDatapath,
        effect: &FlowModEffect,
    ) -> Option<Vec<(TableId, CompiledTable)>> {
        if effect.tables_touched.is_empty() {
            return None;
        }
        let all_tables_known = effect
            .tables_touched
            .iter()
            .all(|id| datapath.slot(*id).is_some());
        if !all_tables_known {
            return None;
        }
        let needed = ParserTemplate::for_fields(
            effect
                .tables_touched
                .iter()
                .filter_map(|id| pipeline.table(*id))
                .flat_map(|t| t.entries())
                .flat_map(|e| {
                    e.flow_match
                        .fields()
                        .iter()
                        .map(|mf| mf.field)
                        .chain(instruction_fields(e))
                }),
        );
        if needed.depth() > datapath.parser().depth() {
            return None;
        }
        let mut rebuilt = Vec::with_capacity(effect.tables_touched.len());
        for id in &effect.tables_touched {
            let table = pipeline.table(*id).expect("touched table exists");
            // The paper keeps a shared template library; re-interning per
            // rebuild only affects sharing across tables, not correctness.
            let mut store = ActionStore::new();
            rebuilt.push((*id, compile_table(table, self.config, &mut store)));
        }
        Some(rebuilt)
    }
}

/// True when an entry at `priority` outranks every catch-all (empty-match)
/// entry of the table: the pipeline resolves a tie — or a lower-priority
/// body entry — in the earlier-inserted catch-all's favour, which a
/// value-keyed template cannot express. Checked against *all* empty matches
/// because an entry inserted at or below the catch-all's priority sorts
/// after it, so the catch-all is not necessarily the last entry anymore.
fn outranks_catch_all(entries: &[openflow::FlowEntry], priority: u16) -> bool {
    entries
        .iter()
        .filter(|e| e.flow_match.is_empty())
        .all(|e| priority > e.priority)
}

/// Checks the LPM prerequisite ("whenever rules overlap, the more specific
/// one has higher priority") for the newly added `prefix/len` rule against
/// every existing prefix rule. Existing rules already satisfy it pairwise
/// (the table compiled as LPM and every incremental add re-checked), so only
/// pairs involving the new rule need examination — O(n), not the O(n²) full
/// prerequisite.
fn lpm_priority_consistent(
    entries: &[openflow::FlowEntry],
    fm: &FlowMod,
    prefix: u32,
    len: u8,
) -> bool {
    for entry in entries {
        if entry.flow_match == fm.flow_match || entry.flow_match.is_empty() {
            continue;
        }
        let fields = entry.flow_match.fields();
        // A non-prefix-shaped entry in what compiled as an LPM table should
        // not happen; escalate conservatively if it does.
        if fields.len() != 1 {
            return false;
        }
        let mf = &fields[0];
        let Some(other_len) = mf.prefix_len() else {
            return false;
        };
        let other_len = other_len as u8;
        let other_prefix = mf.value as u32;
        // Overlap = the shorter prefix contains the longer one.
        let short_len = other_len.min(len);
        let short_mask = if short_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(short_len))
        };
        if (prefix ^ other_prefix) & short_mask != 0 {
            continue; // disjoint
        }
        let (more_specific_prio, less_specific_prio) = if len > other_len {
            (fm.priority, entry.priority)
        } else if other_len > len {
            (entry.priority, fm.priority)
        } else {
            // Same length and overlapping means same prefix but a different
            // match object — cannot happen (flow_match equality was checked);
            // escalate defensively.
            return false;
        };
        if more_specific_prio <= less_specific_prio {
            return false;
        }
    }
    true
}

/// Extracts the per-field key values of a flow-mod whose match has exactly
/// the compound-hash template's shape.
fn hash_key_values(shape: &[(Field, FieldValue)], fm: &FlowMod) -> Option<Vec<FieldValue>> {
    let fields = fm.flow_match.fields();
    if fields.len() != shape.len() {
        return None;
    }
    let mut values = Vec::with_capacity(shape.len());
    for (mf, (field, mask)) in fields.iter().zip(shape) {
        if mf.field != *field || mf.mask != *mask {
            return None;
        }
        values.push(mf.value);
    }
    Some(values)
}

/// Extracts the (prefix, length) of a flow-mod targeting an LPM table.
fn lpm_rule(field: Field, fm: &FlowMod) -> Option<(u32, u8)> {
    let fields = fm.flow_match.fields();
    if fields.len() != 1 || fields[0].field != field {
        return None;
    }
    let len = fields[0].prefix_len()? as u8;
    Some((fields[0].value as u32, len))
}

/// Compiles the instruction block of a flow-mod's would-be entry (used by the
/// incremental update paths).
fn compile_entry_instrs_for(fm: &FlowMod) -> Arc<CompiledInstrs> {
    let entry =
        openflow::FlowEntry::new(fm.flow_match.clone(), fm.priority, fm.instructions.clone());
    compile_entry_instrs(&entry)
}

/// Compiles the instruction block of a standalone entry through a
/// single-entry direct-code build, reusing the compiler's logic.
pub(crate) fn compile_entry_instrs(entry: &openflow::FlowEntry) -> Arc<CompiledInstrs> {
    let mut store = ActionStore::new();
    let mut table = openflow::FlowTable::new(u32::MAX);
    table.insert(entry.clone());
    let compiled = compile_table(
        &table,
        &CompilerConfig {
            direct_code_limit: usize::MAX,
            ..CompilerConfig::default()
        },
        &mut store,
    );
    match compiled {
        CompiledTable::DirectCode(t) => Arc::clone(&t.entries()[0].instrs),
        _ => unreachable!("single-entry table always compiles to direct code"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::flow_mod::apply_flow_mod;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, FlowEntry};

    fn l2_pipeline(n: u64) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..n {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i)),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn plan_for(pipeline: &mut Pipeline, fm: &FlowMod) -> UpdatePlan {
        let config = CompilerConfig::default();
        let datapath = crate::compile::compile(pipeline, &config).unwrap();
        let effect = apply_flow_mod(pipeline, fm).unwrap();
        UpdatePlanner::new(&config).plan(pipeline, &datapath, fm, &effect)
    }

    #[test]
    fn hash_add_and_strict_delete_plan_incremental() {
        let mut p = l2_pipeline(32);
        let add = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0900u128),
            10,
            terminal_actions(vec![Action::Output(1)]),
        );
        assert_eq!(plan_for(&mut p, &add).class(), UpdateClass::Incremental);

        let del = FlowMod::delete_strict(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001u128),
            10,
        );
        assert_eq!(plan_for(&mut p, &del).class(), UpdateClass::Incremental);
    }

    #[test]
    fn shape_mismatch_plans_per_table_and_structure_plans_full() {
        // A non-strict delete cannot be absorbed in place -> per-table.
        let mut p = l2_pipeline(32);
        let del = FlowMod::delete(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001u128),
        );
        assert_eq!(plan_for(&mut p, &del).class(), UpdateClass::PerTable);

        // Installing into a table the datapath does not have -> full.
        let mut p = l2_pipeline(8);
        let structural = FlowMod::add(
            5,
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(1)]),
        );
        assert_eq!(plan_for(&mut p, &structural).class(), UpdateClass::Full);
    }

    #[test]
    fn deeper_parser_need_escalates_to_full() {
        // The L2-compiled datapath cannot absorb a TCP-matching entry, even
        // per-table: the parser is too shallow.
        let mut p = l2_pipeline(32);
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            50,
            terminal_actions(vec![Action::Output(9)]),
        );
        assert_eq!(plan_for(&mut p, &fm).class(), UpdateClass::Full);
    }

    #[test]
    fn planned_edit_applies_in_place() {
        let mut p = l2_pipeline(32);
        let config = CompilerConfig::default();
        let datapath = crate::compile::compile(&p, &config).unwrap();
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0900u128),
            10,
            terminal_actions(vec![Action::Output(3)]),
        );
        let effect = apply_flow_mod(&mut p, &fm).unwrap();
        let UpdatePlan::Incremental(edit) =
            UpdatePlanner::new(&config).plan(&p, &datapath, &fm, &effect)
        else {
            panic!("expected incremental plan");
        };
        assert!(edit.apply(&datapath));
        let mut pkt = pkt::builder::PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0900).octets())
            .build();
        assert_eq!(datapath.process(&mut pkt).outputs, vec![3]);
    }

    #[test]
    fn duplicate_match_at_other_priority_is_not_absorbed_incrementally() {
        // A same-match add at a *different* priority leaves two pipeline
        // entries for one hash key: a single template slot cannot express
        // the priority resolution, so the planner must escalate — and the
        // per-table rebuild must keep the highest-priority entry's actions.
        let mut p = l2_pipeline(32);
        let runtime = crate::runtime::EswitchRuntime::compile(p.clone()).unwrap();
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001u128),
            5, // below the existing priority-10 entry: the old entry wins
            terminal_actions(vec![Action::Output(9)]),
        );
        assert_eq!(plan_for(&mut p, &fm).class(), UpdateClass::PerTable);

        runtime.flow_mod(&fm).unwrap();
        assert_eq!(runtime.updates.incremental.updates(), 0);
        let mut pkt = pkt::builder::PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0001).octets())
            .build();
        let compiled = runtime.process(&mut pkt);
        let mut reference = pkt::builder::PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0001).octets())
            .build();
        let expected = runtime.with_pipeline(|pl| pl.process(&mut reference));
        assert_eq!(compiled.decision(), expected.decision());
        assert_eq!(compiled.outputs, vec![1], "priority-10 entry must win");

        // Strict-deleting the low-priority duplicate must also escalate
        // (the surviving entry owns the slot), and behaviour holds.
        let del = FlowMod::delete_strict(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001u128),
            5,
        );
        runtime.flow_mod(&del).unwrap();
        assert_eq!(runtime.updates.incremental.updates(), 0);
        let mut pkt = pkt::builder::PacketBuilder::udp()
            .eth_dst(pkt::MacAddr::from_u64(0x0200_0000_0001).octets())
            .build();
        assert_eq!(runtime.process(&mut pkt).outputs, vec![1]);
    }

    #[test]
    fn add_below_catch_all_priority_is_not_absorbed_incrementally() {
        // An entry ranked below the catch-all is dead in pipeline order; a
        // hash slot would wrongly bring it to life.
        let mut p = l2_pipeline(32); // catch-all at priority 1
        let fm = FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0900u128),
            1, // ties the catch-all: the earlier catch-all wins in order
            terminal_actions(vec![Action::Output(7)]),
        );
        assert_ne!(plan_for(&mut p, &fm).class(), UpdateClass::Incremental);
    }

    #[test]
    fn lpm_add_with_inconsistent_priority_escalates() {
        // A more specific prefix with too-low priority violates the LPM
        // prerequisite ("more specific wins"): must not be edited in place.
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..16u32 {
            let len = if i % 2 == 0 { 16 } else { 24 };
            t.insert(FlowEntry::new(
                FlowMatch::any().with_prefix(
                    Field::Ipv4Dst,
                    u128::from(u32::from_be_bytes([10, i as u8, 1, 0])),
                    len,
                ),
                (len + 10) as u16,
                terminal_actions(vec![Action::Output(i % 3)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        // /28 inside 10.0.0.0/16 but priority below the /16's 26.
        let bad = FlowMod::add(
            0,
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([10, 0, 1, 16])),
                28,
            ),
            20,
            terminal_actions(vec![Action::Output(7)]),
        );
        assert_ne!(
            plan_for(&mut p.clone(), &bad).class(),
            UpdateClass::Incremental
        );

        // The same prefix with a consistent priority is absorbed in place.
        let good = FlowMod::add(
            0,
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(u32::from_be_bytes([10, 0, 1, 16])),
                28,
            ),
            40,
            terminal_actions(vec![Action::Output(7)]),
        );
        assert_eq!(plan_for(&mut p, &good).class(), UpdateClass::Incremental);
    }

    #[test]
    fn update_counter_units() {
        let c = UpdateCounter::default();
        c.record(1);
        c.record(5);
        assert_eq!(c.updates(), 2);
        assert_eq!(c.entries(), 6);
    }

    #[test]
    fn structural_sharing_keeps_untouched_slots() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            vec![openflow::Instruction::GotoTable(1)],
        ));
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(1)]),
        ));
        let config = CompilerConfig::default();
        let datapath = crate::compile::compile(&p, &config).unwrap();

        let mut store = ActionStore::new();
        let rebuilt = compile_table(p.table(1).unwrap(), &config, &mut store);
        let next = datapath.with_rebuilt_tables(vec![(1, rebuilt)]);
        // Table 0's slot is the same allocation; table 1's is fresh.
        assert!(Arc::ptr_eq(&datapath.slots()[0], &next.slots()[0]));
        assert!(!Arc::ptr_eq(&datapath.slots()[1], &next.slots()[1]));
    }
}
