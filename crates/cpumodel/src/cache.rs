//! Working-set → cache-residency estimation and per-packet access accounting.

use serde::{Deserialize, Serialize};

use crate::profile::SystemProfile;

/// A level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLevel {
    /// L1 data cache.
    L1,
    /// L2 cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory (an LLC miss).
    Dram,
}

/// The per-packet memory-access profile of a datapath run: how many accesses
/// were served from each level.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessProfile {
    /// Accesses served from L1.
    pub l1: f64,
    /// Accesses served from L2.
    pub l2: f64,
    /// Accesses served from L3.
    pub l3: f64,
    /// Accesses that missed the LLC (DRAM references).
    pub dram: f64,
}

impl AccessProfile {
    /// Total accesses per packet.
    pub fn total(&self) -> f64 {
        self.l1 + self.l2 + self.l3 + self.dram
    }

    /// LLC misses per packet — the Fig. 15 metric.
    pub fn llc_misses(&self) -> f64 {
        self.dram
    }

    /// Cycles spent in memory accesses per packet on `profile`.
    pub fn cycles(&self, profile: &SystemProfile) -> f64 {
        self.l1 * profile.l1_latency
            + self.l2 * profile.l2_latency
            + self.l3 * profile.l3_latency
            + self.dram * profile.dram_latency
    }

    /// Adds another profile (e.g. accumulate per-stage accesses).
    pub fn add(&mut self, other: &AccessProfile) {
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.l3 += other.l3;
        self.dram += other.dram;
    }
}

/// The cache hierarchy model: given the resident working set touched per
/// packet, estimate where accesses are served from.
///
/// The estimator follows the paper's reasoning in §4.4: as the active flow
/// set (and therefore the slice of lookup structures and per-flow state that
/// is actually exercised) grows, accesses shift from L1 to L2 to L3 and
/// finally start missing the LLC. The split is proportional: a working set
/// `w` and a cache of capacity `c` serve `min(1, c/w)` of accesses from that
/// level, the remainder spilling to the next.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    profile: SystemProfile,
}

impl CacheHierarchy {
    /// Builds the model for a hardware profile.
    pub fn new(profile: SystemProfile) -> Self {
        CacheHierarchy { profile }
    }

    /// The hardware profile used.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// Splits `accesses_per_packet` uniformly distributed accesses over a
    /// working set of `working_set_bytes` across the hierarchy.
    pub fn distribute(&self, accesses_per_packet: f64, working_set_bytes: usize) -> AccessProfile {
        let ws = working_set_bytes.max(1) as f64;
        let frac = |capacity: usize| -> f64 {
            if capacity == 0 {
                0.0
            } else {
                (capacity as f64 / ws).min(1.0)
            }
        };
        // Fraction of the working set resident in each successive level
        // (inclusive caches: L1 ⊂ L2 ⊂ L3).
        let f1 = frac(self.profile.l1_bytes);
        let f2 = frac(self.profile.l2_bytes).max(f1);
        let f3 = frac(self.profile.l3_bytes).max(f2);
        AccessProfile {
            l1: accesses_per_packet * f1,
            l2: accesses_per_packet * (f2 - f1),
            l3: accesses_per_packet * (f3 - f2),
            dram: accesses_per_packet * (1.0 - f3),
        }
    }

    /// Estimates the level a working set of this size is effectively served
    /// from (the dominant level), used for coarse reporting.
    pub fn dominant_level(&self, working_set_bytes: usize) -> CacheLevel {
        let p = self.distribute(1.0, working_set_bytes);
        let mut best = (CacheLevel::L1, p.l1);
        for (level, frac) in [
            (CacheLevel::L2, p.l2),
            (CacheLevel::L3, p.l3),
            (CacheLevel::Dram, p.dram),
        ] {
            if frac > best.1 {
                best = (level, frac);
            }
        }
        best.0
    }

    /// Convenience: LLC misses per packet for a datapath making
    /// `accesses_per_packet` data-structure accesses over the given working
    /// set (Fig. 15's y-axis).
    pub fn llc_misses_per_packet(&self, accesses_per_packet: f64, working_set_bytes: usize) -> f64 {
        self.distribute(accesses_per_packet, working_set_bytes)
            .llc_misses()
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::new(SystemProfile::paper_sut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_working_set_stays_in_l1() {
        let h = CacheHierarchy::default();
        let p = h.distribute(4.0, 8 * 1024);
        assert!((p.l1 - 4.0).abs() < 1e-9);
        assert_eq!(p.llc_misses(), 0.0);
        assert_eq!(h.dominant_level(8 * 1024), CacheLevel::L1);
    }

    #[test]
    fn growing_working_set_shifts_down_the_hierarchy() {
        let h = CacheHierarchy::default();
        let small = h.distribute(3.0, 16 * 1024);
        let medium = h.distribute(3.0, 128 * 1024);
        let large = h.distribute(3.0, 4 * 1024 * 1024);
        let huge = h.distribute(3.0, 256 * 1024 * 1024);

        // Cycle cost is monotone in working-set size.
        let prof = SystemProfile::paper_sut();
        assert!(small.cycles(&prof) < medium.cycles(&prof));
        assert!(medium.cycles(&prof) < large.cycles(&prof));
        assert!(large.cycles(&prof) < huge.cycles(&prof));

        // Only the huge working set produces LLC misses.
        assert_eq!(large.llc_misses(), 0.0);
        assert!(huge.llc_misses() > 0.0);
        assert_eq!(h.dominant_level(256 * 1024 * 1024), CacheLevel::Dram);
        assert_eq!(h.dominant_level(4 * 1024 * 1024), CacheLevel::L3);
    }

    #[test]
    fn access_totals_preserved() {
        let h = CacheHierarchy::default();
        for ws in [1usize, 10_000, 1_000_000, 100_000_000] {
            let p = h.distribute(5.0, ws);
            assert!((p.total() - 5.0).abs() < 1e-9, "ws {ws}");
        }
    }

    #[test]
    fn profile_accumulation() {
        let mut a = AccessProfile {
            l1: 1.0,
            l2: 0.5,
            l3: 0.0,
            dram: 0.1,
        };
        let b = AccessProfile {
            l1: 2.0,
            l2: 0.0,
            l3: 1.0,
            dram: 0.0,
        };
        a.add(&b);
        assert!((a.total() - 4.6).abs() < 1e-9);
        assert!((a.llc_misses() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn atom_profile_without_l3() {
        let h = CacheHierarchy::new(SystemProfile::paper_atom());
        let p = h.distribute(2.0, 64 * 1024 * 1024);
        // With no L3 the spill goes straight to DRAM.
        assert!(p.dram > 0.0);
        assert!((p.total() - 2.0).abs() < 1e-9);
    }
}
