//! # cpumodel — CPU cache hierarchy and cycle accounting
//!
//! The paper's evaluation leans on two hardware-level observables that a
//! portable reproduction cannot measure directly: last-level-cache misses per
//! packet (`perf` counters, Fig. 15) and the cycle budget split between fixed
//! work and cache accesses (Figs. 16 and 20, the model-lb/ub bounds of
//! Fig. 13). This crate provides the substitute: a parameterised description
//! of the memory hierarchy ([`SystemProfile`], defaulting to Table 1's Sandy
//! Bridge machine), a working-set → cache-residency estimator
//! ([`CacheHierarchy`]), and a per-packet cycle/miss accountant
//! ([`AccessProfile`]).
//!
//! The model is deliberately coarse — the paper itself stresses that "such
//! models can never aim to be comprehensive" — but it reproduces the two
//! effects the figures rely on:
//!
//! * a datapath whose working set fits a cache level pays that level's
//!   latency per access and effectively never misses the LLC,
//! * once the working set outgrows the LLC, a fraction of accesses become
//!   DRAM references and show up as LLC misses per packet.

pub mod cache;
pub mod profile;

pub use cache::{AccessProfile, CacheHierarchy, CacheLevel};
pub use profile::SystemProfile;
