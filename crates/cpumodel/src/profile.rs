//! Hardware profile: the Table 1 datasheet as data.

use serde::{Deserialize, Serialize};

/// Description of the system under test, mirroring Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Human-readable CPU model string.
    pub cpu_model: String,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: usize,
    /// L2 cache size in bytes (per core).
    pub l2_bytes: usize,
    /// L3 (LLC) size in bytes (shared).
    pub l3_bytes: usize,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: f64,
    /// L2 latency in cycles.
    pub l2_latency: f64,
    /// L3 latency in cycles.
    pub l3_latency: f64,
    /// DRAM latency in cycles (not listed in Table 1; a conventional value
    /// for the platform).
    pub dram_latency: f64,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl SystemProfile {
    /// The paper's system under test: Intel Xeon E5-2620 (Sandy Bridge),
    /// 32 KB L1d, 256 KB L2, 15 MB L3, latencies 4/12/29 cycles, 2.0 GHz.
    pub fn paper_sut() -> Self {
        SystemProfile {
            cpu_model: "Intel Xeon E5-2620 @ 2.00GHz (Sandy Bridge)".to_string(),
            clock_hz: 2.0e9,
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 15 * 1024 * 1024,
            l1_latency: 4.0,
            l2_latency: 12.0,
            l3_latency: 29.0,
            dram_latency: 180.0,
            line_bytes: 64,
        }
    }

    /// The slower Atom platform the paper switches to for the multi-core
    /// experiment of Fig. 19 (2.4 GHz, smaller caches).
    pub fn paper_atom() -> Self {
        SystemProfile {
            cpu_model: "Intel Atom @ 2.40GHz".to_string(),
            clock_hz: 2.4e9,
            l1_bytes: 24 * 1024,
            l2_bytes: 1024 * 1024,
            l3_bytes: 0,
            l1_latency: 3.0,
            l2_latency: 15.0,
            l3_latency: 15.0,
            dram_latency: 200.0,
            line_bytes: 64,
        }
    }

    /// Converts cycles per packet into packets per second on this profile.
    pub fn packets_per_second(&self, cycles_per_packet: f64) -> f64 {
        if cycles_per_packet <= 0.0 {
            return 0.0;
        }
        self.clock_hz / cycles_per_packet
    }

    /// Renders a Table 1-style datasheet block for harness output headers.
    pub fn render_datasheet(&self) -> String {
        format!(
            "CPU: {}\nCaches: {}k L1d, {}k L2, {}M L3\nCache latency: L1 = {} cycles, L2 = {} cycles, L3 = {} cycles\nClock: {:.2} GHz",
            self.cpu_model,
            self.l1_bytes / 1024,
            self.l2_bytes / 1024,
            self.l3_bytes / (1024 * 1024),
            self.l1_latency,
            self.l2_latency,
            self.l3_latency,
            self.clock_hz / 1e9
        )
    }
}

impl Default for SystemProfile {
    fn default() -> Self {
        Self::paper_sut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sut_matches_table1() {
        let p = SystemProfile::paper_sut();
        assert_eq!(p.l1_latency, 4.0);
        assert_eq!(p.l2_latency, 12.0);
        assert_eq!(p.l3_latency, 29.0);
        assert_eq!(p.l3_bytes, 15 * 1024 * 1024);
        assert!(p.render_datasheet().contains("E5-2620"));
    }

    #[test]
    fn rate_conversion() {
        let p = SystemProfile::paper_sut();
        // 200 cycles/packet at 2 GHz = 10 Mpps.
        assert!((p.packets_per_second(200.0) - 10.0e6).abs() < 1.0);
        assert_eq!(p.packets_per_second(0.0), 0.0);
    }
}
