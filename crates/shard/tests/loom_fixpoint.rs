//! Exhaustive model checking of the shutdown fixpoint inference.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p shard --test loom_fixpoint`.
//!
//! Shutdown's phase-1 wait reasons: "once every shard's processed counter
//! equals the dispatched count, every punt those packets generated is
//! already in its punt ring and counted in `ReactiveStats::punted`". That
//! inference is only sound because a worker (1) enqueues the punt copy,
//! (2) bumps the punted counter with `Release`, and (3) records the packet
//! as processed with `Release` — in that order — while shutdown reads the
//! processed counter with `Acquire`. This model is that protocol in
//! miniature: if any of those edges were weakened (say the counters went
//! back to `Relaxed`), a schedule would exist where the main thread sees
//! `processed == dispatched` yet finds a missing punt, and the assertions
//! (or the cell race detector, for the ring slot) would name it.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

use netdev::{Counters, SpscRing};

/// One packet keeps the DFS tractable; the soundness of the inference is a
/// per-packet property (each punt's enqueue/count happen-before that
/// packet's processed increment), so one packet exercises every edge.
const DISPATCHED: u64 = 1;

#[test]
fn processed_fixpoint_implies_all_punts_enqueued_and_counted() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(DISPATCHED as usize));
        let punted = Arc::new(AtomicU64::new(0));
        let processed = Arc::new(Counters::new());

        let (worker_ring, worker_punted, worker_processed) = (
            Arc::clone(&ring),
            Arc::clone(&punted),
            Arc::clone(&processed),
        );
        let worker = thread::spawn(move || {
            for pkt in 0..DISPATCHED {
                // The worker's per-packet punt protocol, in order:
                worker_ring.push(pkt).unwrap(); // 1. enqueue the punt copy
                worker_punted.fetch_add(1, Ordering::Release); // 2. count it
                worker_processed.record(64); // 3. mark the packet processed
            }
        });

        // Shutdown phase 1, one probe of the spin loop: the DFS places this
        // single Acquire poll at every point in the worker's execution, so
        // the schedule where it observes the fixpoint concurrently (right
        // after the worker's final Release) is explored — a full spin loop
        // would only add redundant placements at real-thread DFS cost.
        if processed.packets() == DISPATCHED {
            // The fixpoint inference: every punt is counted *and* present,
            // checked before the join edge exists.
            let counted = punted.load(Ordering::Acquire);
            assert_eq!(counted, DISPATCHED, "punt count lagged processed count");
            assert_eq!(
                ring.len() as u64,
                counted,
                "counted punt missing from the ring"
            );
        }

        worker.join().unwrap();

        // Exactly-once accounting, in every schedule.
        for expect in 0..DISPATCHED {
            assert_eq!(ring.pop(), Some(expect), "punt lost or reordered");
        }
        assert!(ring.pop().is_none(), "phantom punt");
    });
}
