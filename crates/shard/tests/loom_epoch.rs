//! Exhaustive model checking of the epoch-publication slot.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p shard --test loom_epoch`.
//! The slot is the broadcast primitive behind `ShardedSwitch::flow_mod`:
//! the control thread publishes an epoch-stamped `Arc` snapshot, workers
//! pick it up at burst boundaries. The properties the runtime leans on:
//!
//! * **No torn state** — a reader sees a whole published snapshot, never a
//!   mix of two (`a == b` below; a torn read would also be a cell race
//!   under the loom `RwLock`).
//! * **Epoch/value coupling** — a reader that observes epoch counter `N`
//!   then loads the slot gets a snapshot stamped `>= N` (the counter is
//!   stored *after* the value swap, with `Release`).
//! * **Monotonicity** — the observed epoch counter never goes backwards.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use std::sync::Arc as StdArc;

use loom::sync::Arc;
use loom::thread;

use shard::EpochSlot;

/// An epoch snapshot with redundant fields: any interleaving that exposed a
/// half-published state would break `a == b`.
struct Payload {
    a: u64,
    b: u64,
}

fn payload(epoch: u64) -> StdArc<Payload> {
    StdArc::new(Payload { a: epoch, b: epoch })
}

#[test]
fn published_snapshots_are_never_torn() {
    loom::model(|| {
        let slot = Arc::new(EpochSlot::new(payload(0)));
        let publisher = Arc::clone(&slot);
        let t = thread::spawn(move || {
            publisher.publish(1, payload(1));
            publisher.publish(2, payload(2));
        });
        let seen = slot.epoch();
        let snap = slot.load();
        assert_eq!(snap.a, snap.b, "torn snapshot: a={} b={}", snap.a, snap.b);
        assert!(
            snap.a >= seen,
            "epoch counter {seen} observed but loaded snapshot is older ({})",
            snap.a
        );
        t.join().unwrap();
    });
}

#[test]
fn epoch_counter_is_monotone() {
    loom::model(|| {
        let slot = Arc::new(EpochSlot::new(payload(0)));
        let publisher = Arc::clone(&slot);
        let t = thread::spawn(move || {
            publisher.publish(1, payload(1));
            publisher.publish(2, payload(2));
        });
        let first = slot.epoch();
        let second = slot.epoch();
        assert!(second >= first, "epoch went backwards: {first} -> {second}");
        t.join().unwrap();
    });
}
