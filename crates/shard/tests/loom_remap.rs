//! Exhaustive model checking of the elastic-scheduling remap protocol.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p shard --test loom_remap`
//! (CI's `model` job). The bucket-remap handshake in
//! `RssDispatcher::remap_bucket` is built from three lock-free primitives —
//! the epoch slot the indirection table publishes through, the per-shard
//! SPSC command/ack rings, and the `netdev::Counters` progress signal the
//! quiesce wait spins on. Each test models one load-bearing edge of that
//! protocol with the *real* primitives (tiny payloads, two threads, so the
//! loom DFS stays tractable):
//!
//! * **Table publication is torn-free and epoch-coupled** — a dispatcher
//!   that observes the new epoch loads the new table, never a mix.
//! * **Quiesce-wait soundness** — a dispatcher that observes the processed
//!   counter covering its dispatch count also observes every side effect
//!   the worker produced for those packets (the sink/punt happens-before
//!   edge that makes "export after quiesce" safe).
//! * **Export state moves exactly once** — the command/ack rings transfer
//!   the boxed bucket state without loss or duplication (a double read
//!   would double-drop the `Box` and fail loom's leak-free teardown).

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use std::sync::Arc as StdArc;

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

use netdev::{Counters, SpscRing};
use shard::{EpochSlot, RemapTable};

/// A remap is published as (epoch N+1, table with the bucket moved). Any
/// reader that observes the new epoch must load the new table — never the
/// old one, never a torn intermediate (tearing would also be a loom cell
/// race inside the slot).
#[test]
fn remap_publication_is_epoch_coupled() {
    loom::model(|| {
        let slot = Arc::new(EpochSlot::new(StdArc::new(RemapTable::uniform(2))));
        let publisher = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let next = StdArc::new(RemapTable::uniform(2).with_owner(0, 1));
            publisher.publish(1, next);
        });
        let seen = slot.epoch();
        let table = slot.load();
        if seen >= 1 {
            assert_eq!(
                table.owner(0),
                1,
                "observed epoch {seen} but loaded the pre-remap table"
            );
        }
        // Untouched buckets never move, whichever table we loaded.
        assert_eq!(table.owner(255), 1);
        t.join().unwrap();
    });
}

/// The quiesce wait's soundness: the worker sinks each packet's observable
/// effect *before* its `Release` batch record, so a dispatcher that spins
/// until `processed >= dispatched` (an `Acquire` read) is guaranteed to
/// observe every pre-move packet's effects — the license to export the
/// bucket's connection state without reordering any flow. Modeled at its
/// minimal shape (one worker, two sink-then-record rounds) so the DFS
/// stays small; the ring's own publication edges have their own suite
/// (`loom_ring`).
#[test]
fn quiesce_wait_observes_all_pre_move_effects() {
    loom::model(|| {
        let counters = Arc::new(Counters::new());
        let sink = Arc::new(AtomicU64::new(0));
        let (c2, s2) = (Arc::clone(&counters), Arc::clone(&sink));
        let worker = thread::spawn(move || {
            for v in [3u64, 4] {
                // The sink effect first (Relaxed — the counter's Release
                // edge is what publishes it)…
                s2.fetch_add(v, Ordering::Relaxed);
                // …then the Release increment the quiesce wait reads.
                c2.record_batch(1, 0);
            }
        });
        let dispatched = 2u64;
        while counters.packets() < dispatched {
            thread::yield_now();
        }
        assert_eq!(
            sink.load(Ordering::Relaxed),
            7,
            "quiesce completed before a pre-move packet's effects were visible"
        );
        worker.join().unwrap();
    });
}

/// The export half of the handshake: the dispatcher commands an export, the
/// worker acks with the (boxed) bucket state. The state arrives exactly
/// once — loss would hang the protocol, duplication would double-drop the
/// box and fail loom's leak-free teardown.
#[test]
fn export_state_moves_exactly_once() {
    loom::model(|| {
        let cmd: Arc<SpscRing<usize>> = Arc::new(SpscRing::new(2));
        let ack: Arc<SpscRing<Box<usize>>> = Arc::new(SpscRing::new(2));
        // The command is staged before the worker exists (as in the real
        // protocol the Export command precedes the worker's burst loop
        // noticing it) — the explored race is the ack handoff.
        cmd.push(7).unwrap();
        let (c2, a2) = (Arc::clone(&cmd), Arc::clone(&ack));
        let worker = thread::spawn(move || {
            let bucket = c2.pop().expect("staged command is visible");
            a2.push(Box::new(bucket)).unwrap();
        });
        // One pop racing the relay (a spin loop here would explode the DFS;
        // the single racing attempt still crosses the concurrent boundary),
        // then the post-join pop is deterministic.
        let early = ack.pop();
        worker.join().unwrap();
        let state = match early {
            Some(state) => state,
            None => ack.pop().expect("ack arrived before the join edge"),
        };
        assert_eq!(*state, 7);
        assert!(ack.pop().is_none(), "export state duplicated");
    });
}
