//! Exhaustive model checking of the signature-partitioned punt fan-in.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p shard --test
//! loom_partition`.
//!
//! The sharded runtime hands punts to N controller workers over a matrix of
//! SPSC rings: shard `s` produces `punt_rings[s][partition_of(flow, N)]`,
//! and controller worker `w` exclusively consumes column `w`. Nothing in
//! the type system enforces that exclusivity — it is a protocol — so these
//! models run the protocol in miniature under the loom scheduler and prove
//! its two load-bearing properties: every punt is consumed exactly once
//! (never two workers, never zero), and always by the worker that owns the
//! flow's partition. A protocol break that let two consumers touch one ring
//! would be named by the SPSC cell race detector; a lost or rerouted punt
//! fails the accounting asserts. Each model keeps to two threads — the
//! properties are pairwise (one producer and one consumer per ring), so two
//! threads explore every edge at a tractable DFS depth.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::Arc;
use loom::thread;

use netdev::SpscRing;
use shard::partition_of;

const WORKERS: usize = 2;

/// Distinct flow signatures, one per partition (checked inside the model,
/// which keeps the constants honest against the multiply-shift map). One
/// flow per partition keeps the DFS tractable; the exactly-once property is
/// per-punt, so each partition's single punt exercises every edge.
const FLOWS: [u64; 2] = [0x0000_0000_0000_0001, 0x8000_0000_0000_0001];

/// One shard fans its punts out by flow signature on its own thread; the
/// main thread interleaves both controller workers' drain loops (each
/// popping only its own ring, exactly as the worker threads do). Every flow
/// arrives exactly once, at exactly the worker `partition_of` names.
#[test]
fn each_punt_drained_by_its_owning_worker_exactly_once() {
    loom::model(|| {
        let rings: Vec<Arc<SpscRing<u64>>> = (0..WORKERS)
            .map(|_| Arc::new(SpscRing::new(FLOWS.len())))
            .collect();
        let expected: Vec<usize> = (0..WORKERS)
            .map(|w| {
                FLOWS
                    .iter()
                    .filter(|f| partition_of(**f, WORKERS) == w)
                    .count()
            })
            .collect();
        assert!(
            expected.iter().all(|n| *n > 0),
            "model flows must cover every partition: {expected:?}"
        );

        // The shard: route each punt to its partition's ring. The first
        // flow is routed and staged before the spawn (halving the DFS depth
        // like the ring models do); the second races the drain loops.
        rings[partition_of(FLOWS[0], WORKERS)]
            .push(FLOWS[0])
            .unwrap();
        let producer_rings: Vec<Arc<SpscRing<u64>>> = rings.iter().map(Arc::clone).collect();
        let producer = thread::spawn(move || {
            producer_rings[partition_of(FLOWS[1], WORKERS)]
                .push(FLOWS[1])
                .unwrap();
        });

        // The controller workers' drain loops: worker w pops rings[w] only,
        // spinning until its expected share arrives.
        let mut drained: Vec<Vec<u64>> = vec![Vec::new(); WORKERS];
        for (w, ring) in rings.iter().enumerate() {
            while drained[w].len() < expected[w] {
                match ring.pop() {
                    Some(flow) => {
                        assert_eq!(
                            partition_of(flow, WORKERS),
                            w,
                            "flow {flow:#x} surfaced at a worker that does not own it"
                        );
                        drained[w].push(flow);
                    }
                    None => thread::yield_now(),
                }
            }
        }
        producer.join().unwrap();

        // Exactly once: the union across workers is the flow set, no ring
        // holds a leftover duplicate.
        let mut all: Vec<u64> = drained.into_iter().flatten().collect();
        all.sort_unstable();
        let mut want = FLOWS.to_vec();
        want.sort_unstable();
        assert_eq!(all, want, "every punt exactly once across the workers");
        assert!(rings.iter().all(|r| r.pop().is_none()));
    });
}

/// The inject path runs the same ownership protocol transposed: controller
/// worker `w` produces `inject_rings[w][shard]`, each shard drains its own
/// column — so two controller workers re-injecting toward the same shard
/// never share a ring. One worker produces on a thread while the main
/// thread plays the other worker *and* the shard's sweep-drain loop (as
/// `WorkerReactive` does each burst): both re-injections arrive exactly
/// once each.
#[test]
fn reinjections_from_concurrent_workers_arrive_exactly_once() {
    loom::model(|| {
        // Column for one shard: one ring per controller worker.
        let column: Vec<Arc<SpscRing<u64>>> =
            (0..WORKERS).map(|_| Arc::new(SpscRing::new(2))).collect();

        let peer = Arc::clone(&column[1]);
        let t = thread::spawn(move || {
            peer.push(1u64).unwrap();
        });
        column[0].push(0u64).unwrap();

        let mut got = Vec::new();
        while got.len() < WORKERS {
            let mut progressed = false;
            for ring in &column {
                if let Some(v) = ring.pop() {
                    got.push(v);
                    progressed = true;
                }
            }
            if !progressed {
                thread::yield_now();
            }
        }
        t.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "each worker's re-injection exactly once");
        assert!(column.iter().all(|r| r.pop().is_none()));
    });
}
