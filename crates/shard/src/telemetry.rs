//! Per-shard load telemetry: the signal the elastic rebalancer steers by.
//!
//! Each worker owns a [`LoadRecorder`] — plain local counters bumped once
//! per burst — and flushes it into the shared [`ShardLoad`] atomics every
//! [`LoadRecorder::FLUSH_BURSTS`] bursts, the same batched-flush discipline
//! `CtStats` uses for hit counts: the per-burst path pays local integer
//! adds, and the cross-core traffic is one cache-line handoff per flush.
//! The shared side therefore lags the truth by at most one flush window,
//! which the rebalancer tolerates by construction (it compares *deltas
//! between observation windows* that span many flush windows).
//!
//! What is recorded, and what it answers:
//!
//! * **busy nanos** — wall time spent inside `process_group` (parse,
//!   lookup, actions, ct). The rebalancer's imbalance metric: unlike packet
//!   counts, busy time weighs an elephant flow's per-packet cost correctly.
//! * **bursts / packets** — burst count and packet sum, so mean drain
//!   latency (`busy_nanos / bursts`) and per-packet cost
//!   (`busy_nanos / packets`) fall out of a snapshot; pps over an interval
//!   is a delta of `packets` over wall time.
//! * **ring high-water** — the deepest ring occupancy observed at a drain
//!   (popped burst + what remained queued behind it): the early congestion
//!   signal — a shard can hold line rate with a rising high-water mark long
//!   before it drops.
//! * **egress flushes / frames** — vectored TX flushes issued and frames
//!   carried by them, so the realised egress batch factor
//!   (`egress_frames / egress_flushes`) is observable: the multi-port
//!   runtime's per-output-port staging only pays off while this stays well
//!   above one.
//!
//! Orderings follow the `netdev::stats::Counters` discipline (`Release`
//! writes, `Acquire` reads — free on x86-TSO); everything goes through the
//! `netdev::sync` facade so the loom suites model exactly this code.

use std::sync::Arc;

use netdev::sync::atomic::{AtomicU64, Ordering};

/// Shared per-shard load counters: the worker's recorder flushes in, the
/// rebalancer and diagnostics read out. One per shard, `Arc`-shared.
#[derive(Debug, Default)]
pub struct ShardLoad {
    busy_nanos: AtomicU64,
    bursts: AtomicU64,
    packets: AtomicU64,
    ring_high_water: AtomicU64,
    egress_flushes: AtomicU64,
    egress_frames: AtomicU64,
}

impl ShardLoad {
    /// Folds one flush window in (worker side).
    pub(crate) fn flush(&self, busy_nanos: u64, bursts: u64, packets: u64, high_water: u64) {
        self.busy_nanos.fetch_add(busy_nanos, Ordering::Release);
        self.bursts.fetch_add(bursts, Ordering::Release);
        self.packets.fetch_add(packets, Ordering::Release);
        self.ring_high_water
            .fetch_max(high_water, Ordering::Release);
    }

    /// Folds one window of egress-batching counters in (worker side).
    pub(crate) fn flush_egress(&self, flushes: u64, frames: u64) {
        self.egress_flushes.fetch_add(flushes, Ordering::Release);
        self.egress_frames.fetch_add(frames, Ordering::Release);
    }

    /// Cumulative nanoseconds this shard spent processing bursts.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos.load(Ordering::Acquire)
    }

    /// Bursts processed.
    pub fn bursts(&self) -> u64 {
        self.bursts.load(Ordering::Acquire)
    }

    /// Packets processed (through the telemetry path).
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Acquire)
    }

    /// Deepest observed ring occupancy at a drain.
    pub fn ring_high_water(&self) -> u64 {
        self.ring_high_water.load(Ordering::Acquire)
    }

    /// Vectored TX flushes issued by this shard's egress staging.
    pub fn egress_flushes(&self) -> u64 {
        self.egress_flushes.load(Ordering::Acquire)
    }

    /// Frames carried by those vectored TX flushes.
    pub fn egress_frames(&self) -> u64 {
        self.egress_frames.load(Ordering::Acquire)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> LoadSnapshot {
        LoadSnapshot {
            busy_nanos: self.busy_nanos(),
            bursts: self.bursts(),
            packets: self.packets(),
            ring_high_water: self.ring_high_water(),
            egress_flushes: self.egress_flushes(),
            egress_frames: self.egress_frames(),
        }
    }
}

/// Plain-data copy of one shard's [`ShardLoad`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSnapshot {
    /// Cumulative nanoseconds spent processing bursts.
    pub busy_nanos: u64,
    /// Bursts processed.
    pub bursts: u64,
    /// Packets processed.
    pub packets: u64,
    /// Deepest observed ring occupancy at a drain.
    pub ring_high_water: u64,
    /// Vectored TX flushes issued by the egress staging.
    pub egress_flushes: u64,
    /// Frames carried by those flushes.
    pub egress_frames: u64,
}

impl LoadSnapshot {
    /// Mean burst drain latency in nanoseconds.
    pub fn mean_burst_nanos(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.bursts as f64
        }
    }

    /// Mean per-packet processing cost in nanoseconds.
    pub fn nanos_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.packets as f64
        }
    }

    /// Realised egress batch factor: frames per vectored TX flush.
    pub fn egress_batch_factor(&self) -> f64 {
        if self.egress_flushes == 0 {
            0.0
        } else {
            self.egress_frames as f64 / self.egress_flushes as f64
        }
    }
}

/// The worker-local accumulator: bumped once per burst, flushed to the
/// shared [`ShardLoad`] every [`LoadRecorder::FLUSH_BURSTS`] bursts and on
/// drop (worker exit), so shutdown reads are exact.
pub struct LoadRecorder {
    shared: Arc<ShardLoad>,
    busy_nanos: u64,
    bursts: u64,
    packets: u64,
    high_water: u64,
    egress_flushes: u64,
    egress_frames: u64,
}

impl LoadRecorder {
    /// Bursts accumulated locally between flushes of the shared atomics.
    pub const FLUSH_BURSTS: u64 = 64;

    /// A recorder flushing into `shared`.
    pub fn new(shared: Arc<ShardLoad>) -> LoadRecorder {
        LoadRecorder {
            shared,
            busy_nanos: 0,
            bursts: 0,
            packets: 0,
            high_water: 0,
            egress_flushes: 0,
            egress_frames: 0,
        }
    }

    /// Records one processed burst: its processing time, packet count, and
    /// the ring occupancy observed at the drain.
    #[inline]
    pub fn record_burst(&mut self, busy_nanos: u64, packets: u64, occupancy: u64) {
        self.busy_nanos += busy_nanos;
        self.bursts += 1;
        self.packets += packets;
        if occupancy > self.high_water {
            self.high_water = occupancy;
        }
        if self.bursts >= Self::FLUSH_BURSTS {
            self.flush();
        }
    }

    /// Records one vectored egress flush carrying `frames` frames. Batched
    /// locally and published together with the burst counters.
    #[inline]
    pub fn record_egress(&mut self, frames: u64) {
        self.egress_flushes += 1;
        self.egress_frames += frames;
    }

    /// Publishes the local window into the shared counters.
    pub fn flush(&mut self) {
        if self.egress_flushes > 0 {
            self.shared
                .flush_egress(self.egress_flushes, self.egress_frames);
            self.egress_flushes = 0;
            self.egress_frames = 0;
        }
        if self.bursts == 0 {
            return;
        }
        self.shared
            .flush(self.busy_nanos, self.bursts, self.packets, self.high_water);
        self.busy_nanos = 0;
        self.bursts = 0;
        self.packets = 0;
        self.high_water = 0;
    }
}

impl Drop for LoadRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_batches_then_flushes() {
        let shared = Arc::new(ShardLoad::default());
        let mut rec = LoadRecorder::new(Arc::clone(&shared));
        for _ in 0..LoadRecorder::FLUSH_BURSTS - 1 {
            rec.record_burst(100, 32, 40);
        }
        // Still local: the shared side lags by design.
        assert_eq!(shared.bursts(), 0);
        rec.record_burst(100, 32, 512);
        let snap = shared.snapshot();
        assert_eq!(snap.bursts, LoadRecorder::FLUSH_BURSTS);
        assert_eq!(snap.packets, LoadRecorder::FLUSH_BURSTS * 32);
        assert_eq!(snap.busy_nanos, LoadRecorder::FLUSH_BURSTS * 100);
        assert_eq!(snap.ring_high_water, 512);
        assert_eq!(snap.mean_burst_nanos(), 100.0);
        assert!((snap.nanos_per_packet() - 100.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn drop_flushes_the_tail() {
        let shared = Arc::new(ShardLoad::default());
        {
            let mut rec = LoadRecorder::new(Arc::clone(&shared));
            rec.record_burst(7, 3, 5);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.bursts, 1);
        assert_eq!(snap.packets, 3);
        assert_eq!(snap.busy_nanos, 7);
        assert_eq!(snap.ring_high_water, 5);
    }

    #[test]
    fn egress_counters_ride_the_flush() {
        let shared = Arc::new(ShardLoad::default());
        let mut rec = LoadRecorder::new(Arc::clone(&shared));
        rec.record_egress(32);
        rec.record_egress(7);
        assert_eq!(shared.egress_flushes(), 0, "egress counters batch locally");
        rec.flush();
        let snap = shared.snapshot();
        assert_eq!(snap.egress_flushes, 2);
        assert_eq!(snap.egress_frames, 39);
        assert!((snap.egress_batch_factor() - 19.5).abs() < 1e-9);
    }

    #[test]
    fn high_water_is_a_max_across_flushes() {
        let shared = Arc::new(ShardLoad::default());
        let mut rec = LoadRecorder::new(Arc::clone(&shared));
        rec.record_burst(1, 1, 100);
        rec.flush();
        rec.record_burst(1, 1, 50);
        rec.flush();
        assert_eq!(shared.ring_high_water(), 100);
    }
}
