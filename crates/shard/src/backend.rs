//! Per-shard datapath replicas behind one trait.
//!
//! A shard runs whichever architecture the deployment picked — the compiled
//! ESWITCH datapath or the OVS-style cache hierarchy — but the worker loop
//! must not care. [`ShardBackend`] is that seam: process one burst through
//! the replica's zero-allocation batch path, and swap in a newly published
//! compiled state when the control plane advances the epoch.
//!
//! The two replicas differ in what is shared and what is private, mirroring
//! the real systems:
//!
//! * **ESWITCH** — compiled code is immutable between epochs, so every shard
//!   holds an `Arc` to the *same* [`CompiledDatapath`]; an epoch advance is
//!   one pointer swap per shard.
//! * **OVS** — each shard owns private microflow/megaflow caches over a
//!   replica of the pipeline (OVS's per-PMD-thread caches); an epoch advance
//!   replaces the replica's pipeline and invalidates both caches, which is
//!   what any flow-table change costs the OVS architecture (§2.3).

use std::sync::Arc;

use eswitch::analysis::CompilerConfig;
use eswitch::compile::{compile, CompileError, CompiledDatapath};
use openflow::ct::ConnCtx;
use openflow::flow_match::FlowMatch;
use openflow::{NullController, Pipeline, Verdict};
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::Packet;

/// Which datapath architecture the shards replicate, plus its configuration.
#[derive(Debug, Clone, Copy)]
pub enum BackendSpec {
    /// Compiled ESWITCH datapath, shared read-only across shards.
    Eswitch(CompilerConfig),
    /// OVS cache hierarchy with per-shard microflow/megaflow caches.
    Ovs(OvsConfig),
}

impl BackendSpec {
    /// An ESWITCH backend with the default compiler configuration.
    pub fn eswitch() -> Self {
        BackendSpec::Eswitch(CompilerConfig::default())
    }

    /// An OVS backend with the default cache configuration.
    pub fn ovs() -> Self {
        BackendSpec::Ovs(OvsConfig::default())
    }

    /// Short label for reports ("ES" / "OVS").
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Eswitch(_) => "ES",
            BackendSpec::Ovs(_) => "OVS",
        }
    }

    /// Compiles the canonical pipeline into the state the control plane
    /// broadcasts. For ESWITCH this is the actual template compilation; for
    /// OVS it is a snapshot of the pipeline (the replica's slow path realises
    /// it, caches fill on demand). Runs on the control thread, never on a
    /// worker.
    pub(crate) fn compile_state(&self, pipeline: &Pipeline) -> Result<CompiledState, CompileError> {
        match self {
            BackendSpec::Eswitch(config) => {
                Ok(CompiledState::Eswitch(Arc::new(compile(pipeline, config)?)))
            }
            BackendSpec::Ovs(_) => Ok(CompiledState::Ovs(Arc::new(pipeline.clone()))),
        }
    }

    /// Builds one shard's replica of a published state.
    pub(crate) fn replica(&self, state: &CompiledState) -> Box<dyn ShardBackend> {
        match (self, state) {
            (BackendSpec::Eswitch(_), CompiledState::Eswitch(datapath)) => Box::new(EswitchShard {
                datapath: Arc::clone(datapath),
            }),
            (BackendSpec::Ovs(config), CompiledState::Ovs(pipeline)) => Box::new(OvsShard {
                datapath: OvsDatapath::with_config(
                    Pipeline::clone(pipeline),
                    *config,
                    Box::new(NullController::new()),
                ),
            }),
            _ => unreachable!("published state does not match the backend spec"),
        }
    }
}

/// Epoch-stamped compiled state the control plane broadcasts to every shard.
#[derive(Clone)]
pub enum CompiledState {
    /// A freshly compiled ESWITCH datapath (immutable once published).
    Eswitch(Arc<CompiledDatapath>),
    /// A snapshot of the canonical pipeline for OVS replicas to realise.
    Ovs(Arc<Pipeline>),
}

/// A per-shard datapath replica: one worker thread owns it exclusively.
pub trait ShardBackend: Send {
    /// Processes one burst through the replica's batch fast path, appending
    /// one verdict per packet to `verdicts` (cleared first). Controller punts
    /// are reported in the verdicts (`to_controller` + `punt_reason`); the
    /// worker loop turns them into punt copies on its shard's punt ring
    /// (`shard::controller`), never calling the controller itself.
    ///
    /// `ct` is the shard's connection-tracking context: the worker's private
    /// [`conntrack::CtEngine`] when the launch configured one,
    /// [`openflow::ct::NoCt`] otherwise. It is threaded per burst — never
    /// owned by the replica — so connection state survives epoch swaps and
    /// stays strictly shard-local.
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn ConnCtx,
    );

    /// Swaps in a newly published compiled state (an epoch advance). Called
    /// by the owning worker between bursts, never concurrently with
    /// processing, so a packet can never observe a half-applied update.
    ///
    /// `deltas` carries the per-epoch lists of changed-rule matches covering
    /// *exactly* the gap between this replica's epoch and the published one,
    /// when the control plane could prove them selective-safe. A replica that
    /// receives `Some` may invalidate its private caches selectively; `None`
    /// (skipped epochs, structural change, rewritten matched fields) means
    /// brute-force invalidation.
    fn apply(&mut self, state: &CompiledState, deltas: Option<&[Arc<Vec<FlowMatch>>]>);

    /// Invalidates the replica's cached entries for exactly the given flow
    /// matches — the elastic scheduler calls this when a flow bucket
    /// migrates off this shard, with one exact-5-tuple match per moved
    /// connection direction. The default is a no-op: the ESWITCH replica
    /// has no per-shard caches (verdicts are recomputed from the shared
    /// compiled state, placement-independently). The OVS replica flushes
    /// the overlapping megaflow entries and the matching EMC entries, so a
    /// moved flow that later migrates *back* can never hit a stale verdict.
    fn invalidate_flows(&mut self, _matches: &[FlowMatch]) {}

    /// The OVS replica, when this shard runs one (per-shard cache stats).
    fn as_ovs(&self) -> Option<&OvsDatapath> {
        None
    }
}

/// ESWITCH replica: a shared handle to the compiled datapath.
struct EswitchShard {
    datapath: Arc<CompiledDatapath>,
}

impl ShardBackend for EswitchShard {
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn ConnCtx,
    ) {
        verdicts.clear();
        verdicts.reserve(packets.len());
        for packet in packets.iter_mut() {
            verdicts.push(self.datapath.process_ct(packet, ct));
        }
    }

    fn apply(&mut self, state: &CompiledState, _deltas: Option<&[Arc<Vec<FlowMatch>>]>) {
        // Compiled epochs already share every untouched table structurally
        // (and incremental edits mutate the shared slot through its
        // trampoline), so applying an epoch is one pointer swap regardless of
        // the delta.
        if let CompiledState::Eswitch(datapath) = state {
            self.datapath = Arc::clone(datapath);
        }
    }
}

/// OVS replica: a private cache hierarchy over a pipeline snapshot.
struct OvsShard {
    datapath: OvsDatapath,
}

impl ShardBackend for OvsShard {
    fn process_batch_into(
        &mut self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn ConnCtx,
    ) {
        self.datapath.process_batch_into_ct(packets, verdicts, ct);
    }

    fn apply(&mut self, state: &CompiledState, deltas: Option<&[Arc<Vec<FlowMatch>>]>) {
        if let CompiledState::Ovs(pipeline) = state {
            match deltas {
                // Contiguous, selective-safe delta: flush only the megaflow
                // entries overlapping a changed rule; the EMC survives
                // changes that cannot touch its exact keys.
                Some(deltas) => self
                    .datapath
                    .replace_pipeline_with_delta(Pipeline::clone(pipeline), deltas),
                // No usable delta: any flow-table change costs the OVS
                // architecture its entire cache hierarchy (§2.3).
                None => self.datapath.replace_pipeline(Pipeline::clone(pipeline)),
            }
        }
    }

    fn invalidate_flows(&mut self, matches: &[FlowMatch]) {
        self.datapath.invalidate_matches(matches);
    }

    fn as_ovs(&self) -> Option<&OvsDatapath> {
        Some(&self.datapath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::ct::NoCt;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry};
    use pkt::builder::PacketBuilder;

    fn port_pipeline(out: u32) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(out)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    #[test]
    fn both_replicas_process_and_swap_epochs() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            let state = spec.compile_state(&port_pipeline(1)).unwrap();
            let mut replica = spec.replica(&state);
            let mut burst = vec![PacketBuilder::tcp().tcp_dst(80).build()];
            let mut verdicts = Vec::new();
            replica.process_batch_into(&mut burst, &mut verdicts, &mut NoCt);
            assert_eq!(verdicts[0].outputs, vec![1], "{}", spec.label());

            let next = spec.compile_state(&port_pipeline(9)).unwrap();
            replica.apply(&next, None);
            let mut burst = vec![PacketBuilder::tcp().tcp_dst(80).build()];
            replica.process_batch_into(&mut burst, &mut verdicts, &mut NoCt);
            assert_eq!(verdicts[0].outputs, vec![9], "{}", spec.label());
        }
    }

    #[test]
    fn ovs_replica_applies_selective_delta() {
        let spec = BackendSpec::ovs();
        let state = spec.compile_state(&port_pipeline(1)).unwrap();
        let mut replica = spec.replica(&state);
        let mut burst = vec![
            PacketBuilder::tcp().tcp_dst(80).build(),
            PacketBuilder::tcp().tcp_dst(22).build(),
        ];
        let mut verdicts = Vec::new();
        replica.process_batch_into(&mut burst, &mut verdicts, &mut NoCt);
        let megaflows = replica.as_ovs().unwrap().megaflow_count();
        assert!(megaflows > 0);

        // An epoch that only changes tcp_dst=9999 behaviour, with the delta:
        // unrelated megaflows survive the swap.
        let mut p = port_pipeline(1);
        p.table_mut(0).unwrap().insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 9999),
            90,
            terminal_actions(vec![Action::Output(5)]),
        ));
        let next = spec.compile_state(&p).unwrap();
        let delta = vec![Arc::new(vec![
            FlowMatch::any().with_exact(Field::TcpDst, 9999)
        ])];
        replica.apply(&next, Some(&delta));
        assert_eq!(replica.as_ovs().unwrap().megaflow_count(), megaflows);

        let mut burst = vec![PacketBuilder::tcp().tcp_dst(9999).build()];
        replica.process_batch_into(&mut burst, &mut verdicts, &mut NoCt);
        assert_eq!(verdicts[0].outputs, vec![5]);
    }
}
