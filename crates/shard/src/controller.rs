//! The asynchronous controller channel: the reactive slow path of the
//! sharded runtime.
//!
//! A worker shard whose datapath punts a packet must not call the controller
//! itself — a controller decision costs microseconds to milliseconds, and a
//! worker that blocks on one stalls its whole ring. Instead the worker
//! enqueues a *punt copy* (ingress frame + extracted key + shard id + the
//! epoch it was serving) onto its private SPSC punt ring and keeps
//! forwarding per the pipeline's miss action. A dedicated controller thread
//! drains every punt ring, invokes the [`openflow::Controller`] application,
//! and feeds the answers back through the two channels the architecture
//! already has:
//!
//! * **flow-mods** go through the control plane (`Control::flow_mod`), i.e.
//!   through the §3.4 update planner and the epoch-swap publication — a
//!   reactive install is an incremental epoch like any other, and no worker
//!   blocks on it;
//! * **packet-outs** with an empty action list (`OFPP_TABLE` resubmit) are
//!   re-injected through an RSS dispatcher over per-shard inject rings, so
//!   the triggering packet re-enters its own shard and takes the freshly
//!   installed rule on the fast path; explicit action lists are applied at
//!   the controller edge.
//!
//! Backpressure is lossless-by-policy for the *dataplane*: a full punt ring
//! degrades to dropping the punt *copy* — the packet's verdict already
//! stands, and any non-controller disposition it carried (outputs, flood)
//! was honoured — and the drop is counted (`overflow`), never silent.
//! Per-shard [`PuntGate`]s (shared logic with the single-switch runtime)
//! suppress duplicate packet-ins for a flow while its install is in flight;
//! for a pure miss-to-controller verdict, a shed or suppressed copy means
//! that one packet is simply not duplicated up to the controller — the
//! lossy behaviour of a real switch's bounded upcall queue, accounted
//! instead of silent. RSS flow affinity guarantees a flow only ever punts
//! from one shard, so the gates never see cross-shard aliasing.
//!
//! Every punted packet is accounted exactly once:
//!
//! ```text
//! punt attempts  = admitted + suppressed        (gate decision)
//! admitted       = punted + overflow            (ring admission)
//! punted         = answered                     (at quiescence/shutdown)
//! reinjected     = injected                     (at quiescence/shutdown)
//! ```

use std::sync::Arc;
use std::time::Instant;

use netdev::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use eswitch::reactive::PuntGate;
use netdev::{SpscRing, BURST_SIZE};
use openflow::action::apply_action_list;
use openflow::pipeline::TableId;
use openflow::{Controller, ControllerDecision, FlowKey, PacketIn, PacketInReason};
use pkt::Packet;

use crate::rss::RssDispatcher;
use crate::runtime::Control;

/// One buffered punt: everything the controller thread needs to raise the
/// packet-in and route the answers back.
pub struct Punt {
    /// The *ingress* frame of the punted packet (a copy; the original kept
    /// forwarding per the pipeline's miss action).
    pub packet: Packet,
    /// The flow key extracted from the ingress frame.
    pub key: FlowKey,
    /// The flow's punt signature ([`eswitch::reactive::punt_signature`]);
    /// doubles as the packet-in's buffer id.
    pub flow: u64,
    /// The worker shard the punt came from.
    pub shard: usize,
    /// The datapath epoch the shard was serving when the packet missed.
    pub epoch: u64,
    /// Why the datapath punted.
    pub reason: PacketInReason,
    /// Table at which the punt decision was taken (0: the runtimes do not
    /// attribute punts to inner tables).
    pub table_id: TableId,
    /// When the worker enqueued the punt (punt round-trip accounting).
    pub enqueued: Instant,
}

/// Live counters of the reactive slow path.
///
/// The fixpoint counters (`punted`, `answered`, `injected`, `reinjected`)
/// are bumped only *after* the work they describe is externally visible,
/// with `Release` increments read `Acquire` by [`ReactiveShared::snapshot`]
/// — that ordering (free on x86-TSO) is what lets shutdown conclude
/// quiescence from counter equalities on weakly-ordered machines too; the
/// program-order half of the contract ("count after the side effect") is
/// model-checked in `tests/loom_fixpoint.rs`. The rest are plain statistics
/// and stay relaxed.
#[derive(Debug, Default)]
pub struct ReactiveStats {
    /// Punt copies successfully enqueued on a punt ring.
    pub punted: AtomicU64,
    /// Punt copies dropped because the punt ring was full (the packet still
    /// forwarded per the miss action; only the controller copy was shed).
    pub overflow: AtomicU64,
    /// Packet-ins the controller thread has fully handled (decisions
    /// applied).
    pub answered: AtomicU64,
    /// Flow-mods applied successfully through the control plane.
    pub flow_mods: AtomicU64,
    /// Flow-mods the control plane rejected.
    pub flow_mods_rejected: AtomicU64,
    /// Packet-outs re-injected through the RSS dispatcher (empty action
    /// list: `OFPP_TABLE` resubmit).
    pub reinjected: AtomicU64,
    /// Re-injected packets the workers have processed.
    pub injected: AtomicU64,
    /// Packet-outs with explicit actions, applied at the controller edge.
    pub direct_outs: AtomicU64,
    /// Controller decisions to drop the punted packet.
    pub dropped: AtomicU64,
    /// Sum of punt round-trip times (enqueue → decisions applied), nanos.
    pub rtt_nanos: AtomicU64,
    /// Worst observed punt round-trip, nanos.
    pub rtt_max_nanos: AtomicU64,
}

/// Everything the workers, the controller thread and the switch handle share
/// about the reactive channel.
pub(crate) struct ReactiveShared {
    pub(crate) stats: ReactiveStats,
    /// Per-shard punt-dedup gates (worker admits, controller completes).
    pub(crate) gates: Vec<Arc<PuntGate>>,
}

impl ReactiveShared {
    pub(crate) fn new(shards: usize, max_in_flight: usize) -> Self {
        ReactiveShared {
            stats: ReactiveStats::default(),
            gates: (0..shards)
                .map(|_| Arc::new(PuntGate::new(max_in_flight)))
                .collect(),
        }
    }

    /// Point-in-time copy of every reactive counter.
    pub(crate) fn snapshot(&self) -> ReactiveSnapshot {
        let s = &self.stats;
        let answered = s.answered.load(Ordering::Acquire);
        ReactiveSnapshot {
            admitted: self.gates.iter().map(|g| g.admitted()).sum(),
            suppressed: self.gates.iter().map(|g| g.suppressed()).sum(),
            punted: s.punted.load(Ordering::Acquire),
            overflow: s.overflow.load(Ordering::Relaxed),
            answered,
            flow_mods: s.flow_mods.load(Ordering::Relaxed),
            flow_mods_rejected: s.flow_mods_rejected.load(Ordering::Relaxed),
            reinjected: s.reinjected.load(Ordering::Acquire),
            injected: s.injected.load(Ordering::Acquire),
            direct_outs: s.direct_outs.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            rtt_nanos_total: s.rtt_nanos.load(Ordering::Relaxed),
            rtt_max_nanos: s.rtt_max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of the reactive slow path's accounting at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactiveSnapshot {
    /// Punts the gates admitted (= `punted + overflow`).
    pub admitted: u64,
    /// Punts suppressed because the flow's install was already in flight.
    pub suppressed: u64,
    /// Punt copies enqueued for the controller.
    pub punted: u64,
    /// Punt copies shed because the punt ring was full (counted, not
    /// silent; the packets themselves forwarded per the miss action).
    pub overflow: u64,
    /// Packet-ins fully handled by the controller thread.
    pub answered: u64,
    /// Reactive flow-mods applied through the epoch-swap control plane.
    pub flow_mods: u64,
    /// Reactive flow-mods the control plane rejected.
    pub flow_mods_rejected: u64,
    /// Packet-outs re-injected through the RSS dispatcher.
    pub reinjected: u64,
    /// Re-injected packets processed by the workers.
    pub injected: u64,
    /// Packet-outs with explicit actions applied at the controller edge.
    pub direct_outs: u64,
    /// Punted packets the controller decided to drop.
    pub dropped: u64,
    /// Sum of punt round-trip times over `answered` punts, nanoseconds.
    pub rtt_nanos_total: u64,
    /// Worst observed punt round-trip, nanoseconds.
    pub rtt_max_nanos: u64,
}

impl ReactiveSnapshot {
    /// Mean punt round-trip (enqueue → decisions applied) in nanoseconds.
    pub fn rtt_mean_nanos(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.rtt_nanos_total as f64 / self.answered as f64
        }
    }

    /// Every punt attempt the workers made, however it was resolved.
    pub fn attempts(&self) -> u64 {
        self.admitted + self.suppressed
    }
}

/// The controller thread: drains every shard's punt ring, runs the
/// controller application, and routes its answers back through the control
/// plane (flow-mods) and the inject dispatcher (packet-outs).
pub(crate) struct ControllerThread {
    pub(crate) control: Arc<Control>,
    pub(crate) controller: Box<dyn Controller>,
    pub(crate) punt_rings: Vec<Arc<SpscRing<Punt>>>,
    pub(crate) injector: RssDispatcher,
    pub(crate) shared: Arc<ReactiveShared>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl ControllerThread {
    pub(crate) fn run(mut self) {
        let mut batch: Vec<Punt> = Vec::with_capacity(BURST_SIZE);
        let mut idle = 0u32;
        loop {
            let mut drained = 0usize;
            for shard in 0..self.punt_rings.len() {
                batch.clear();
                drained += self.punt_rings[shard].pop_burst(&mut batch, BURST_SIZE);
                for punt in batch.drain(..) {
                    self.handle(punt);
                }
            }
            if drained == 0 {
                // `stop` is raised only once shutdown has proven the punt
                // flow quiescent, so empty rings are then final.
                if self.stop.load(Ordering::Acquire) && self.punt_rings.iter().all(|r| r.is_empty())
                {
                    break;
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            } else {
                idle = 0;
            }
        }
    }

    fn handle(&mut self, punt: Punt) {
        let stats = &self.shared.stats;
        let event = PacketIn::new(punt.packet, punt.reason, punt.table_id)
            .with_epoch(punt.epoch)
            .with_buffer(punt.flow);
        let decisions = self.controller.packet_in(event);
        for decision in decisions {
            match decision {
                // Reactive installs flow through the §3.4 planner and the
                // epoch-swap publication like any proactive flow-mod; the
                // punting shard picks the new epoch up at a burst boundary.
                ControllerDecision::FlowMod(fm) => {
                    if self.control.flow_mod(&fm).is_ok() {
                        stats.flow_mods.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.flow_mods_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ControllerDecision::PacketOut(mut po) => {
                    if po.resubmit {
                        // OFPP_TABLE resubmit: back through RSS, so the
                        // packet re-enters its own shard and takes the rule
                        // installed a moment ago on the fast path. Punts
                        // are rare; flushing immediately trades burst
                        // batching for setup latency.
                        stats.reinjected.fetch_add(1, Ordering::Release);
                        self.injector.dispatch(po.packet);
                        self.injector.flush();
                    } else {
                        stats.direct_outs.fetch_add(1, Ordering::Relaxed);
                        let mut key = FlowKey::extract(&po.packet);
                        let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                    }
                }
                ControllerDecision::Drop => {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Re-arm the flow only after its install is published: a packet
        // missing *now* (stale epoch) may punt again, and the controller
        // must be idempotent — OpenFlow never promised exactly-once
        // packet-ins.
        self.shared.gates[punt.shard].complete(punt.flow);
        let nanos = punt.enqueued.elapsed().as_nanos() as u64;
        stats.rtt_nanos.fetch_add(nanos, Ordering::Relaxed);
        stats.rtt_max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // `answered` last: once it matches `punted`, every side effect of
        // every handled punt (flow-mod published, packet-out enqueued and
        // counted) is already visible — the shutdown fixpoint relies on it.
        stats.answered.fetch_add(1, Ordering::Release);
    }
}
