//! The asynchronous controller channel: the reactive slow path of the
//! sharded runtime, itself sharded.
//!
//! A worker shard whose datapath punts a packet must not call the controller
//! itself — a controller decision costs microseconds to milliseconds, and a
//! worker that blocks on one stalls its whole ring. Instead the worker runs
//! the punt through the layered admission pipeline (per-flow [`PuntGate`],
//! per-source and aggregate token buckets — [`eswitch::reactive`]) and, if
//! admitted, enqueues a *punt copy* (ingress frame + extracted key + shard
//! id + the epoch it was serving) onto a private SPSC punt ring and keeps
//! forwarding per the pipeline's miss action.
//!
//! The control plane's drain side is **partitioned by flow signature**: N
//! controller workers each exclusively own one slice of the punt and inject
//! rings. The rings form a matrix — worker shard `s` owns the producer side
//! of `punt[s][w]` for every controller worker `w`, and controller worker
//! `w` owns the consumer side of `punt[s][w]` for every shard `s` — so every
//! ring stays strictly SPSC (no MPSC contention anywhere on the punt path),
//! and a flow's punts always land on the same controller worker
//! ([`partition_of`] over the flow signature), which keeps per-flow
//! ordering: a flow's second punt can never overtake its first into a
//! different worker. Controller answers flow back through the two channels
//! the architecture already has:
//!
//! * **flow-mods** go through the control plane (`Control::flow_mod`), i.e.
//!   through the §3.4 update planner and the epoch-swap publication — a
//!   reactive install is an incremental epoch like any other, and no worker
//!   blocks on it. Concurrent controller workers serialise on the canonical
//!   pipeline lock exactly like concurrent proactive flow-mods do;
//! * **packet-outs** with an empty action list (`OFPP_TABLE` resubmit) are
//!   re-injected through a *per-controller-worker* RSS dispatcher over that
//!   worker's own slice of inject rings (`inject[w][s]`), so the triggering
//!   packet re-enters its own shard and takes the freshly installed rule on
//!   the fast path; explicit action lists are applied at the controller
//!   edge.
//!
//! The controller *application* (`dyn Controller`) is a single logical
//! entity — a learning switch's MAC table spans flows from every partition —
//! so the workers share it behind a mutex held only while computing
//! decisions; draining, admission bookkeeping, flow-mod publication and
//! re-injection all run outside it.
//!
//! Backpressure is lossless-by-policy for the *dataplane*: a shed punt (full
//! ring, source over rate, budget exhausted) only drops the punt *copy* —
//! the packet's verdict already stands, and any non-controller disposition
//! it carried (outputs, flood) was honoured — and every shed is counted by
//! reason, never silent. Per-shard [`PuntGate`]s suppress duplicate
//! packet-ins for a flow while its install is in flight; RSS flow affinity
//! guarantees a flow only ever punts from one shard, so the gates never see
//! cross-shard aliasing.
//!
//! Every punted packet is accounted exactly once:
//!
//! ```text
//! punt attempts  = admitted + suppressed                 (gate decision)
//! admitted       = punted + overflow                     (ring admission)
//!                  + shed_source + shed_aggregate        (token buckets)
//! punted         = answered                              (at quiescence)
//! reinjected     = injected                              (at quiescence)
//! punted         = Σ per-worker drained                  (at quiescence)
//! ```

use std::sync::Arc;
use std::time::Instant;

use netdev::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use netdev::sync::Mutex;

use eswitch::reactive::{PuntAdmission, PuntGate, PuntPolicy};
use netdev::{SpscRing, BURST_SIZE};
use openflow::action::apply_action_list;
use openflow::pipeline::TableId;
use openflow::{Controller, ControllerDecision, FlowKey, PacketIn, PacketInReason};
use pkt::Packet;

use crate::rss::RssDispatcher;
use crate::runtime::Control;

/// Maps a flow signature onto one of `workers` controller workers: the same
/// bias-free multiply-shift reduction RSS uses for shards, over a hash that
/// is *independent* of the RSS hash — so controller partitioning does not
/// correlate with shard placement and one busy shard's punts still spread
/// over every controller worker.
pub fn partition_of(flow: u64, workers: usize) -> usize {
    crate::rss::shard_of(flow, workers)
}

/// One buffered punt: everything a controller worker needs to raise the
/// packet-in and route the answers back.
pub struct Punt {
    /// The *ingress* frame of the punted packet (a copy; the original kept
    /// forwarding per the pipeline's miss action).
    pub packet: Packet,
    /// The flow key extracted from the ingress frame.
    pub key: FlowKey,
    /// The flow's punt signature ([`eswitch::reactive::punt_signature`]);
    /// doubles as the packet-in's buffer id and picks the controller
    /// worker ([`partition_of`]).
    pub flow: u64,
    /// The worker shard the punt came from.
    pub shard: usize,
    /// The datapath epoch the shard was serving when the packet missed.
    pub epoch: u64,
    /// Why the datapath punted.
    pub reason: PacketInReason,
    /// Table at which the punt decision was taken (0: the runtimes do not
    /// attribute punts to inner tables).
    pub table_id: TableId,
    /// When the worker enqueued the punt (punt round-trip accounting).
    pub enqueued: Instant,
}

/// Live counters of the reactive slow path.
///
/// The fixpoint counters (`punted`, `answered`, `injected`, `reinjected`)
/// are bumped only *after* the work they describe is externally visible,
/// with `Release` increments read `Acquire` by [`ReactiveShared::snapshot`]
/// — that ordering (free on x86-TSO) is what lets shutdown conclude
/// quiescence from counter equalities on weakly-ordered machines too; the
/// program-order half of the contract ("count after the side effect") is
/// model-checked in `tests/loom_fixpoint.rs`. The rest are plain statistics
/// and stay relaxed.
#[derive(Debug, Default)]
pub struct ReactiveStats {
    /// Punt copies successfully enqueued on a punt ring.
    pub punted: AtomicU64,
    /// Punt copies dropped because the punt ring was full (the packet still
    /// forwarded per the miss action; only the controller copy was shed).
    pub overflow: AtomicU64,
    /// Punt copies shed by the per-source token bucket (layer 2): the
    /// sending tenant exceeded its punt rate.
    pub shed_source: AtomicU64,
    /// Punt copies shed by the aggregate controller budget (layer 3).
    pub shed_aggregate: AtomicU64,
    /// Packet-ins the controller workers have fully handled (decisions
    /// applied).
    pub answered: AtomicU64,
    /// Flow-mods applied successfully through the control plane.
    pub flow_mods: AtomicU64,
    /// Flow-mods the control plane rejected.
    pub flow_mods_rejected: AtomicU64,
    /// Packet-outs re-injected through the RSS dispatchers (empty action
    /// list: `OFPP_TABLE` resubmit).
    pub reinjected: AtomicU64,
    /// Re-injected packets the workers have processed.
    pub injected: AtomicU64,
    /// Packet-outs with explicit actions, applied at the controller edge.
    pub direct_outs: AtomicU64,
    /// Controller decisions to drop the punted packet.
    pub dropped: AtomicU64,
    /// Sum of punt round-trip times (enqueue → decisions applied), nanos.
    pub rtt_nanos: AtomicU64,
    /// Worst observed punt round-trip, nanos.
    pub rtt_max_nanos: AtomicU64,
}

/// Per-controller-worker drain accounting, so partition imbalance is
/// observable instead of averaged away in the switch-wide totals.
#[derive(Debug, Default)]
pub struct ControllerWorkerStats {
    /// Punts this worker drained and fully handled.
    pub drained: AtomicU64,
    /// Sum of this worker's punt round-trips, nanos.
    pub rtt_nanos: AtomicU64,
    /// This worker's worst punt round-trip, nanos.
    pub rtt_max_nanos: AtomicU64,
}

/// Plain-data copy of one controller worker's drain stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerWorkerSnapshot {
    /// Punts this worker drained and fully handled.
    pub drained: u64,
    /// Sum of this worker's punt round-trips, nanoseconds.
    pub rtt_nanos_total: u64,
    /// This worker's worst punt round-trip, nanoseconds.
    pub rtt_max_nanos: u64,
}

impl ControllerWorkerSnapshot {
    /// Mean punt round-trip over this worker's drained punts, nanoseconds.
    pub fn rtt_mean_nanos(&self) -> f64 {
        if self.drained == 0 {
            0.0
        } else {
            self.rtt_nanos_total as f64 / self.drained as f64
        }
    }
}

/// Everything the workers, the controller workers and the switch handle
/// share about the reactive channel.
pub(crate) struct ReactiveShared {
    pub(crate) stats: ReactiveStats,
    /// Per-shard punt-dedup gates (worker admits, controller completes).
    pub(crate) gates: Vec<Arc<PuntGate>>,
    /// Layers 2 and 3 of the admission pipeline (per-source + aggregate
    /// token buckets), shared switch-wide.
    pub(crate) admission: PuntAdmission,
    /// Per-controller-worker drain stats, indexed by partition.
    pub(crate) workers: Vec<ControllerWorkerStats>,
    /// Monotone time base for the token buckets (nanos since launch).
    clock: Instant,
}

impl ReactiveShared {
    pub(crate) fn new(
        shards: usize,
        controller_workers: usize,
        gate_capacity: usize,
        policy: &PuntPolicy,
    ) -> Self {
        ReactiveShared {
            stats: ReactiveStats::default(),
            gates: (0..shards)
                .map(|_| Arc::new(PuntGate::new(gate_capacity)))
                .collect(),
            admission: PuntAdmission::new(policy),
            workers: (0..controller_workers)
                .map(|_| ControllerWorkerStats::default())
                .collect(),
            clock: Instant::now(),
        }
    }

    /// Nanoseconds since launch — the token buckets' time source.
    pub(crate) fn now_nanos(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }

    /// Point-in-time copy of every reactive counter.
    pub(crate) fn snapshot(&self) -> ReactiveSnapshot {
        let s = &self.stats;
        let answered = s.answered.load(Ordering::Acquire);
        ReactiveSnapshot {
            admitted: self.gates.iter().map(|g| g.admitted()).sum(),
            suppressed: self.gates.iter().map(|g| g.suppressed()).sum(),
            punted: s.punted.load(Ordering::Acquire),
            overflow: s.overflow.load(Ordering::Relaxed),
            shed_source: s.shed_source.load(Ordering::Relaxed),
            shed_aggregate: s.shed_aggregate.load(Ordering::Relaxed),
            answered,
            flow_mods: s.flow_mods.load(Ordering::Relaxed),
            flow_mods_rejected: s.flow_mods_rejected.load(Ordering::Relaxed),
            reinjected: s.reinjected.load(Ordering::Acquire),
            injected: s.injected.load(Ordering::Acquire),
            direct_outs: s.direct_outs.load(Ordering::Relaxed),
            dropped: s.dropped.load(Ordering::Relaxed),
            rtt_nanos_total: s.rtt_nanos.load(Ordering::Relaxed),
            rtt_max_nanos: s.rtt_max_nanos.load(Ordering::Relaxed),
            per_worker: self
                .workers
                .iter()
                .map(|w| ControllerWorkerSnapshot {
                    drained: w.drained.load(Ordering::Relaxed),
                    rtt_nanos_total: w.rtt_nanos.load(Ordering::Relaxed),
                    rtt_max_nanos: w.rtt_max_nanos.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Plain-data copy of the reactive slow path's accounting at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactiveSnapshot {
    /// Punts the per-flow gates admitted
    /// (= `punted + overflow + shed_source + shed_aggregate`).
    pub admitted: u64,
    /// Punts suppressed because the flow's install was already in flight.
    pub suppressed: u64,
    /// Punt copies enqueued for the controller workers.
    pub punted: u64,
    /// Punt copies shed because the punt ring was full (counted, not
    /// silent; the packets themselves forwarded per the miss action).
    pub overflow: u64,
    /// Punt copies shed by the per-source token bucket (layer 2).
    pub shed_source: u64,
    /// Punt copies shed by the aggregate controller budget (layer 3).
    pub shed_aggregate: u64,
    /// Packet-ins fully handled by the controller workers.
    pub answered: u64,
    /// Reactive flow-mods applied through the epoch-swap control plane.
    pub flow_mods: u64,
    /// Reactive flow-mods the control plane rejected.
    pub flow_mods_rejected: u64,
    /// Packet-outs re-injected through the RSS dispatchers.
    pub reinjected: u64,
    /// Re-injected packets processed by the workers.
    pub injected: u64,
    /// Packet-outs with explicit actions applied at the controller edge.
    pub direct_outs: u64,
    /// Punted packets the controller decided to drop.
    pub dropped: u64,
    /// Sum of punt round-trip times over `answered` punts, nanoseconds.
    pub rtt_nanos_total: u64,
    /// Worst observed punt round-trip, nanoseconds.
    pub rtt_max_nanos: u64,
    /// Per-controller-worker drain stats, indexed by partition — partition
    /// imbalance is visible here, not averaged away.
    pub per_worker: Vec<ControllerWorkerSnapshot>,
}

impl ReactiveSnapshot {
    /// Mean punt round-trip (enqueue → decisions applied) in nanoseconds.
    pub fn rtt_mean_nanos(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.rtt_nanos_total as f64 / self.answered as f64
        }
    }

    /// Every punt attempt the workers made, however it was resolved.
    pub fn attempts(&self) -> u64 {
        self.admitted + self.suppressed
    }

    /// Punt copies shed by the admission token buckets (layers 2 + 3).
    pub fn shed_total(&self) -> u64 {
        self.shed_source + self.shed_aggregate
    }
}

/// One controller worker: drains its own slice of the punt-ring matrix
/// (column `index`: one SPSC ring per shard), runs the shared controller
/// application, and routes its answers back through the control plane
/// (flow-mods) and its private inject dispatcher (packet-outs).
pub(crate) struct ControllerWorker {
    /// This worker's partition index.
    pub(crate) index: usize,
    pub(crate) control: Arc<Control>,
    /// The controller application, shared by every worker: locked only
    /// while computing decisions, never across flow-mod publication or
    /// re-injection.
    pub(crate) controller: Arc<Mutex<Box<dyn Controller>>>,
    /// `punt_rings[s]` = the (shard `s` → this worker) ring; this worker is
    /// the exclusive consumer of every ring in the vector.
    pub(crate) punt_rings: Vec<Arc<SpscRing<Punt>>>,
    /// This worker's private re-injection dispatcher over its own row of
    /// the inject-ring matrix; it is the exclusive producer of those rings.
    pub(crate) injector: RssDispatcher,
    pub(crate) shared: Arc<ReactiveShared>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl ControllerWorker {
    pub(crate) fn run(mut self) {
        let mut batch: Vec<Punt> = Vec::with_capacity(BURST_SIZE);
        let mut idle = 0u32;
        loop {
            let mut drained = 0usize;
            for shard in 0..self.punt_rings.len() {
                batch.clear();
                drained += self.punt_rings[shard].pop_burst(&mut batch, BURST_SIZE);
                for punt in batch.drain(..) {
                    self.handle(punt);
                }
            }
            if drained == 0 {
                // `stop` is raised only once shutdown has proven the punt
                // flow quiescent, so empty rings are then final.
                if self.stop.load(Ordering::Acquire) && self.punt_rings.iter().all(|r| r.is_empty())
                {
                    break;
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            } else {
                idle = 0;
            }
        }
    }

    fn handle(&mut self, punt: Punt) {
        debug_assert_eq!(
            partition_of(punt.flow, self.shared.workers.len()),
            self.index,
            "punt routed to the wrong controller worker"
        );
        let stats = &self.shared.stats;
        let event = PacketIn::new(punt.packet, punt.reason, punt.table_id)
            .with_epoch(punt.epoch)
            .with_buffer(punt.flow);
        // The application mutex covers decision *computation* only; the
        // expensive halves — planner + epoch publication, RSS re-injection —
        // run below, in parallel across controller workers.
        let decisions = self.controller.lock().packet_in(event);
        for decision in decisions {
            match decision {
                // Reactive installs flow through the §3.4 planner and the
                // epoch-swap publication like any proactive flow-mod; the
                // punting shard picks the new epoch up at a burst boundary.
                ControllerDecision::FlowMod(fm) => {
                    if self.control.flow_mod(&fm).is_ok() {
                        stats.flow_mods.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.flow_mods_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ControllerDecision::PacketOut(mut po) => {
                    if po.resubmit {
                        // OFPP_TABLE resubmit: back through RSS, so the
                        // packet re-enters its own shard and takes the rule
                        // installed a moment ago on the fast path. Punts
                        // are rare; flushing immediately trades burst
                        // batching for setup latency.
                        stats.reinjected.fetch_add(1, Ordering::Release);
                        self.injector.dispatch(po.packet);
                        self.injector.flush();
                    } else {
                        stats.direct_outs.fetch_add(1, Ordering::Relaxed);
                        let mut key = FlowKey::extract(&po.packet);
                        let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                    }
                }
                ControllerDecision::Drop => {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Re-arm the flow only after its install is published: a packet
        // missing *now* (stale epoch) may punt again, and the controller
        // must be idempotent — OpenFlow never promised exactly-once
        // packet-ins.
        self.shared.gates[punt.shard].complete(punt.flow);
        let nanos = punt.enqueued.elapsed().as_nanos() as u64;
        stats.rtt_nanos.fetch_add(nanos, Ordering::Relaxed);
        stats.rtt_max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let mine = &self.shared.workers[self.index];
        mine.drained.fetch_add(1, Ordering::Relaxed);
        mine.rtt_nanos.fetch_add(nanos, Ordering::Relaxed);
        mine.rtt_max_nanos.fetch_max(nanos, Ordering::Relaxed);
        // `answered` last: once it matches `punted`, every side effect of
        // every handled punt (flow-mod published, packet-out enqueued and
        // counted) is already visible — the shutdown fixpoint relies on it.
        stats.answered.fetch_add(1, Ordering::Release);
    }
}
