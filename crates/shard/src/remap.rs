//! The RSS indirection table and the elastic rebalancer's planning logic.
//!
//! A NIC's receive-side scaling does not map the flow hash onto a queue
//! directly: the hash indexes a small *indirection table* (Intel's RETA)
//! whose entries name queues, so the host can re-spread load by rewriting
//! table entries without touching the hash function — and without moving
//! any flow that stays in an untouched entry. This module is that table in
//! software, sized at [`FLOW_BUCKETS`] entries (the flow-bucket unit the
//! conntrack engine already partitions NAT state by), plus the pieces the
//! elastic scheduler builds on it:
//!
//! * [`RemapTable`] — the immutable bucket → shard owner array. A remap
//!   produces a *new* table differing in exactly the moved buckets
//!   ([`RemapTable::with_owner`]), the minimal-movement property: flows in
//!   every other bucket keep their shard, their cache residency and their
//!   connection state.
//! * [`RemapShared`] — an [`EpochSlot`] publishing the current table. The
//!   main dispatcher is the sole writer; the controller workers' re-inject
//!   dispatchers are readers that poll the epoch (one `Acquire` load) and
//!   refresh at dispatch boundaries — no locks anywhere on the dispatch
//!   path.
//! * [`RebalanceConfig`] / [`Rebalancer`] — detection and planning.
//!   Detection runs on the per-shard busy-time telemetry
//!   ([`crate::telemetry::ShardLoad`]): every `check_packets` dispatched
//!   packets the rebalancer compares the busiest shard's busy-time delta
//!   against the all-shard average and arms only after the imbalance
//!   sustains `sustain` consecutive windows (hysteresis — a one-burst blip
//!   never migrates state). Planning is greedy minimal-movement: take the
//!   overloaded shard's hottest buckets (by the dispatcher's per-bucket
//!   packet window) until the projected excess is covered, capped at
//!   `max_moves` buckets per window, all re-homed to the least-loaded
//!   shard.
//!
//! The *execution* of a move — quiesce, conntrack export/import, cache
//! invalidation, table publication — is the dispatcher's job
//! ([`crate::rss::RssDispatcher::remap_bucket`]); the command/ack types the
//! handshake rides on ([`ShardCmd`], [`BucketAck`]) live here. One caveat is
//! inherited by design: a reactive (controller-driven) launch re-injects
//! packet-outs through reader dispatchers that may trail the table by one
//! epoch, so a re-injection racing a live remap can land on the flow's
//! previous owner. Stateless pipelines are placement-independent (any shard
//! computes the same verdict), and the ct-bearing workloads drive remaps
//! only through the non-reactive launch paths, where the main dispatcher's
//! synchronous handshake makes stale placement impossible.

use std::sync::Arc;

use conntrack::FLOW_BUCKETS;
use openflow::ct::CtTuple;
use openflow::flow_match::FlowMatch;
use openflow::Field;

use crate::epoch::EpochSlot;

/// The bucket → shard indirection table. Immutable once built; a remap
/// publishes a new table sharing nothing but its values (256 entries — the
/// clone is control-plane work, never on the dispatch path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTable {
    /// `owners[b]` = the shard owning flow bucket `b`. `u16` bounds the
    /// runtime at 65k shards, far beyond any launch.
    owners: Vec<u16>,
}

impl RemapTable {
    /// The launch-time table: buckets spread contiguously over `shards`
    /// (`owner(b) = b * shards / FLOW_BUCKETS`), the same bias-free
    /// multiply-shift spread the direct reduction produced — so a static
    /// (never-rebalanced) run behaves like the pre-table runtime.
    pub fn uniform(shards: usize) -> RemapTable {
        let shards = shards.max(1);
        RemapTable {
            owners: (0..FLOW_BUCKETS)
                .map(|b| (b * shards / FLOW_BUCKETS) as u16)
                .collect(),
        }
    }

    /// The shard owning `bucket`.
    #[inline]
    pub fn owner(&self, bucket: usize) -> usize {
        usize::from(self.owners[bucket])
    }

    /// The shard a flow hash steers to: bucket index by multiply-shift on
    /// the high bits (`conntrack::bucket_of`), then one table load.
    #[inline]
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        self.owner(conntrack::bucket_of(hash))
    }

    /// A new table identical but for `bucket`, now owned by `shard` — the
    /// minimal-movement remap step.
    pub fn with_owner(&self, bucket: usize, shard: usize) -> RemapTable {
        let mut owners = self.owners.clone();
        owners[bucket] = shard as u16;
        RemapTable { owners }
    }

    /// The buckets `shard` currently owns.
    pub fn buckets_of(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        self.owners
            .iter()
            .enumerate()
            .filter(move |(_, o)| usize::from(**o) == shard)
            .map(|(b, _)| b)
    }

    /// Bucket counts per shard (diagnostics / tests).
    pub fn shard_counts(&self, shards: usize) -> Vec<usize> {
        let mut counts = vec![0usize; shards];
        for owner in &self.owners {
            counts[usize::from(*owner)] += 1;
        }
        counts
    }
}

/// The shared publication point for the indirection table: an epoch-stamped
/// slot with a one-`Acquire`-load staleness probe. The main dispatcher
/// publishes; re-inject dispatchers and diagnostics read.
#[derive(Debug)]
pub struct RemapShared {
    slot: EpochSlot<RemapTable>,
}

impl RemapShared {
    /// A shared slot holding the uniform table for `shards` as epoch 0.
    pub fn new(shards: usize) -> RemapShared {
        RemapShared {
            slot: EpochSlot::new(Arc::new(RemapTable::uniform(shards))),
        }
    }

    /// The latest published table epoch (0 = the launch-time uniform table).
    pub fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    /// Clones out the current table.
    pub fn load(&self) -> Arc<RemapTable> {
        self.slot.load()
    }

    /// Publishes `table` as `epoch`. The sole caller is the main
    /// dispatcher's remap handshake, which serialises publications by being
    /// single-threaded.
    pub(crate) fn publish(&self, epoch: u64, table: Arc<RemapTable>) {
        self.slot.publish(epoch, table);
    }
}

/// When and how aggressively the dispatcher rebalances. `None` in
/// [`crate::runtime::ShardedConfig`] disables rebalancing entirely (the
/// table stays static); `Some(RebalanceConfig::default())` is the tuned
/// elephant-flow profile the skew benchmark runs.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Dispatched packets per observation window. Each window closes with
    /// one telemetry read and (rarely) a plan.
    pub check_packets: u64,
    /// Trigger threshold: the busiest shard's busy-time delta must exceed
    /// `imbalance_ratio ×` the all-shard average delta.
    pub imbalance_ratio: f64,
    /// Consecutive over-threshold windows required before acting —
    /// hysteresis against one-burst blips.
    pub sustain: u32,
    /// Most buckets moved per plan. Each move is a full quiesce + state
    /// transfer, so this bounds the per-window disruption.
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            check_packets: 16 * 1024,
            imbalance_ratio: 1.25,
            sustain: 2,
            max_moves: 8,
        }
    }
}

/// Detection + planning state, owned by the dispatcher. Stateless about the
/// table (passed in per plan); stateful about telemetry (busy-time deltas
/// need a previous reading) and hysteresis.
#[derive(Debug)]
pub(crate) struct Rebalancer {
    pub(crate) config: RebalanceConfig,
    /// Busy-nanos reading per shard at the previous window close.
    last_busy: Vec<u64>,
    /// Consecutive windows the imbalance trigger has held.
    sustained: u32,
}

impl Rebalancer {
    pub(crate) fn new(config: RebalanceConfig, shards: usize) -> Rebalancer {
        Rebalancer {
            config,
            last_busy: vec![0; shards],
            sustained: 0,
        }
    }

    /// Closes one observation window: `busy` is the cumulative per-shard
    /// busy-nanos telemetry, `counts` the dispatcher's per-bucket packet
    /// counts for the window. Returns the moves to execute, `(bucket,
    /// new_owner)`, possibly empty.
    pub(crate) fn plan(
        &mut self,
        table: &RemapTable,
        busy: &[u64],
        counts: &[u64],
    ) -> Vec<(usize, usize)> {
        let shards = busy.len();
        let mut deltas = Vec::with_capacity(shards);
        for (shard, total) in busy.iter().enumerate() {
            deltas.push(total.saturating_sub(self.last_busy[shard]));
            self.last_busy[shard] = *total;
        }
        if shards < 2 {
            return Vec::new();
        }
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            self.sustained = 0;
            return Vec::new();
        }
        let avg = total as f64 / shards as f64;
        let (hot, hot_delta) = deltas
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|(_, d)| *d)
            .expect("at least two shards");
        if (hot_delta as f64) < self.config.imbalance_ratio * avg {
            self.sustained = 0;
            return Vec::new();
        }
        self.sustained += 1;
        if self.sustained < self.config.sustain {
            return Vec::new();
        }
        self.sustained = 0;

        let (cold, _) = deltas
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, d)| *d)
            .expect("at least two shards");
        // Greedy minimal movement: shed the hot shard's hottest buckets
        // until the projected busy share it loses covers its excess over
        // the average. Packet counts proxy busy time per bucket — exact
        // enough for a greedy plan that re-evaluates next window anyway.
        let mut owned: Vec<(usize, u64)> = table
            .buckets_of(hot)
            .map(|b| (b, counts[b]))
            .filter(|(_, c)| *c > 0)
            .collect();
        if owned.len() <= 1 {
            // One live bucket (or none): the imbalance is a single flow
            // bucket, indivisible by construction. Moving it would only
            // shift the hot spot, so leave it pinned.
            return Vec::new();
        }
        owned.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let hot_packets: u64 = owned.iter().map(|(_, c)| c).sum();
        let excess = (hot_delta as f64 - avg).max(0.0) / hot_delta as f64;
        let shed_target = (hot_packets as f64 * excess) as u64;
        let mut moves = Vec::with_capacity(self.config.max_moves);
        let mut shed = 0u64;
        for (bucket, count) in owned {
            if shed >= shed_target || moves.len() >= self.config.max_moves {
                break;
            }
            // Never empty the hot shard completely: keep its last bucket.
            if moves.len() + 1 >= table.buckets_of(hot).count() {
                break;
            }
            moves.push((bucket, cold));
            shed += count;
        }
        moves
    }
}

/// A bucket-migration command on a shard's SPSC command ring (dispatcher →
/// worker). Handled strictly between bursts.
pub(crate) enum ShardCmd {
    /// Drain `bucket`'s connections (and NAT allocators) out of the private
    /// engine, invalidate the backend's cached entries for the moved flows,
    /// and ack with the state.
    Export { bucket: usize },
    /// Install a previously exported bucket into the private engine.
    Import { state: Box<conntrack::BucketExport> },
}

/// A worker's reply on its SPSC ack ring (worker → dispatcher).
pub(crate) struct BucketAck {
    pub(crate) bucket: usize,
    /// `Some` for export acks (the drained state); `None` for import acks.
    pub(crate) state: Option<Box<conntrack::BucketExport>>,
}

/// An exact-5-tuple [`FlowMatch`] for one conntrack tuple — what the worker
/// hands `ShardBackend::invalidate_flows` per moved connection (both
/// directions), so an OVS replica flushes exactly the moved flows' EMC and
/// megaflow entries.
pub(crate) fn exact_tuple_match(t: &CtTuple) -> FlowMatch {
    const UDP: u8 = 17;
    let (src_field, dst_field) = if t.proto == UDP {
        (Field::UdpSrc, Field::UdpDst)
    } else {
        (Field::TcpSrc, Field::TcpDst)
    };
    FlowMatch::any()
        .with_exact(Field::IpProto, u128::from(t.proto))
        .with_exact(Field::Ipv4Src, u128::from(t.src_ip))
        .with_exact(Field::Ipv4Dst, u128::from(t.dst_ip))
        .with_exact(src_field, u128::from(t.src_port))
        .with_exact(dst_field, u128::from(t.dst_port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spreads_contiguously_and_fully() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let table = RemapTable::uniform(shards);
            let counts = table.shard_counts(shards);
            assert_eq!(counts.iter().sum::<usize>(), FLOW_BUCKETS);
            // Every shard owns a near-equal contiguous run.
            for (shard, count) in counts.iter().enumerate() {
                let ideal = FLOW_BUCKETS / shards;
                assert!(
                    (ideal..=ideal + 1).contains(count),
                    "shard {shard} owns {count} buckets of {FLOW_BUCKETS} over {shards}"
                );
            }
            // Ownership is monotone in the bucket index (contiguity).
            for b in 1..FLOW_BUCKETS {
                assert!(table.owner(b) >= table.owner(b - 1));
            }
        }
    }

    #[test]
    fn with_owner_moves_exactly_one_bucket() {
        let table = RemapTable::uniform(4);
        let moved = table.with_owner(3, 2);
        for b in 0..FLOW_BUCKETS {
            if b == 3 {
                assert_eq!(moved.owner(b), 2);
            } else {
                assert_eq!(moved.owner(b), table.owner(b), "bucket {b} must not move");
            }
        }
    }

    #[test]
    fn shared_slot_publishes_epochs() {
        let shared = RemapShared::new(2);
        assert_eq!(shared.epoch(), 0);
        let next = Arc::new(shared.load().with_owner(0, 1));
        shared.publish(1, Arc::clone(&next));
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.load().owner(0), 1);
    }

    #[test]
    fn rebalancer_requires_sustained_imbalance() {
        let table = RemapTable::uniform(2);
        let mut reb = Rebalancer::new(RebalanceConfig::default(), 2);
        let mut counts = vec![0u64; FLOW_BUCKETS];
        for b in table.buckets_of(0) {
            counts[b] = 10;
        }
        // Window 1: heavy imbalance — armed, but not yet acted on.
        assert!(reb.plan(&table, &[1_000_000, 10_000], &counts).is_empty());
        // Window 2 balanced: hysteresis resets.
        assert!(reb.plan(&table, &[1_100_000, 110_000], &counts).is_empty());
        // Two hot windows in a row: now it acts.
        assert!(reb.plan(&table, &[2_100_000, 120_000], &counts).is_empty());
        let moves = reb.plan(&table, &[3_100_000, 130_000], &counts);
        assert!(!moves.is_empty());
        for (bucket, to) in &moves {
            assert_eq!(table.owner(*bucket), 0, "only hot-shard buckets move");
            assert_eq!(*to, 1, "moves target the least-loaded shard");
        }
        assert!(moves.len() <= RebalanceConfig::default().max_moves);
    }

    #[test]
    fn rebalancer_moves_hottest_buckets_first() {
        let table = RemapTable::uniform(2);
        let config = RebalanceConfig {
            sustain: 1,
            max_moves: 2,
            ..RebalanceConfig::default()
        };
        let mut reb = Rebalancer::new(config, 2);
        let mut counts = vec![0u64; FLOW_BUCKETS];
        counts[0] = 5;
        counts[1] = 500; // the elephant
        counts[2] = 50;
        let moves = reb.plan(&table, &[1_000_000, 1_000], &counts);
        assert_eq!(moves.first(), Some(&(1, 1)), "elephant bucket moves first");
        assert!(moves.len() <= 2);
    }

    #[test]
    fn rebalancer_never_splits_a_single_bucket() {
        // All load in one bucket: indivisible, so no move can help.
        let table = RemapTable::uniform(2);
        let config = RebalanceConfig {
            sustain: 1,
            ..RebalanceConfig::default()
        };
        let mut reb = Rebalancer::new(config, 2);
        let mut counts = vec![0u64; FLOW_BUCKETS];
        counts[7] = 10_000;
        assert!(reb.plan(&table, &[5_000_000, 1_000], &counts).is_empty());
    }

    #[test]
    fn exact_tuple_match_pins_the_five_tuple() {
        let t = CtTuple {
            proto: 6,
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            src_port: 1234,
            dst_port: 80,
        };
        let m = exact_tuple_match(&t);
        assert_eq!(m.fields().len(), 5);
    }
}
