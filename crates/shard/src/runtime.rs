//! The sharded switch runtime: worker shards, control plane, lifecycle.
//!
//! A [`ShardedSwitch`] owns N worker threads, each draining a private SPSC
//! ring in 32-packet bursts through its datapath replica. The control plane
//! lives on whichever thread calls [`ShardedSwitch::flow_mod`]: the flow-mod
//! is applied to the canonical pipeline once, run through the shared §3.4
//! update planner, and published as an epoch-stamped [`CompiledState`]
//! behind an atomic `Arc` swap — an *incremental* epoch re-publishes the
//! shared datapath after an O(1) trampoline edit, a *per-table* epoch is a
//! new datapath structurally sharing every untouched table, and only
//! structural changes recompile the full state. Workers poll the epoch
//! counter (one relaxed load) at every loop iteration and swap in the
//! published state at a burst boundary, so:
//!
//! * no worker ever blocks while the control plane plans or compiles (the
//!   `published` write lock guards a pointer swap only),
//! * a per-table or full epoch is atomic per worker (swapped at a burst
//!   boundary), and an incremental edit is atomic per table lookup — the
//!   paper's trampoline semantics, so a verdict can never mix pre- and
//!   post-update behaviour of one table,
//! * a shard that is idle still converges to the newest epoch.
//!
//! Shutdown is drain-then-join: the dispatcher's staged packets are flushed,
//! the shutdown flag is raised, and each worker exits only once its ring is
//! observably empty — every dispatched packet is processed exactly once.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use netdev::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use netdev::sync::Arc as CtArc;
use netdev::sync::Mutex;

use conntrack::{CtConfig, CtEngine, CtSnapshot, CtStats};
use eswitch::compile::CompileError;
use eswitch::reactive::{
    punt_signature, source_signature, IngressSnapshot, PuntAdmit, PuntGate, PuntPolicy,
};
use eswitch::update::{Absorbed, UpdateClass, UpdatePlanner};
use netdev::{CounterSnapshot, Counters, SpscRing, BURST_SIZE};
use openflow::ct::{ConnCtx, NoCt};
use openflow::flow_match::FlowMatch;
use openflow::flow_mod::{apply_flow_mod_undoable, FlowModEffect, FlowModError};
use openflow::instruction::{
    instructions_can_punt, pipeline_can_punt, pipeline_has_ct, pipeline_written_fields,
    written_match_fields,
};
use openflow::{Controller, FlowKey, FlowMod, PacketInReason, Pipeline, Verdict};
use ovsdp::datapath::delta_is_selective;
use pkt::Packet;

use crate::backend::{BackendSpec, CompiledState};
use crate::controller::{partition_of, ControllerWorker, Punt, ReactiveShared, ReactiveSnapshot};
use crate::epoch::EpochSlot;
use crate::remap::{exact_tuple_match, BucketAck, RebalanceConfig, RemapShared, ShardCmd};
use crate::rss::RssDispatcher;
use crate::telemetry::{LoadRecorder, LoadSnapshot, ShardLoad};

/// How the control plane turns an applied flow-mod into the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// Drive the shared §3.4 [`UpdatePlanner`]: in-place incremental edits
    /// and per-table rebuilds publish epochs that structurally share every
    /// untouched table; OVS epochs carry a selective-invalidation delta.
    #[default]
    Planned,
    /// Recompile the whole state on every flow-mod (the pre-planner
    /// behaviour) — kept as the measurable Fig. 18 baseline.
    FullRecompile,
}

/// Sharded runtime configuration.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of worker shards (clamped to at least 1).
    pub workers: usize,
    /// Per-shard ring capacity in packets (rounded up to a power of two).
    pub ring_capacity: usize,
    /// How flow-mods become epochs.
    pub update_strategy: UpdateStrategy,
    /// Per-(shard, controller-worker) punt ring capacity (reactive launches
    /// only; rounded up to a power of two). A full punt ring sheds the punt
    /// *copy* — counted as `overflow`, never blocking the worker.
    pub punt_ring_capacity: usize,
    /// Per-shard bound on flows tracked as punt-in-flight (the dedup gate's
    /// capacity; beyond it the gate fails open to duplicates). Launch
    /// applies an eviction-resistance floor on top — see
    /// [`ShardedConfig::effective_gate_capacity`].
    pub max_in_flight_punts: usize,
    /// Controller workers draining the punt rings, partitioned by flow
    /// signature (reactive launches only; clamped to at least 1). Each
    /// worker exclusively owns its slice of the punt/inject ring matrices,
    /// so reactive flow setup scales with cores without MPSC contention.
    pub controller_workers: usize,
    /// Layers 2 and 3 of the punt-admission pipeline: per-source and
    /// aggregate token buckets ([`eswitch::reactive::PuntPolicy`]). The
    /// default is fully open (no rate limits) — the hardened profiles are
    /// opt-in per deployment.
    pub punt_policy: PuntPolicy,
    /// Per-shard connection tracking. `Some` gives every worker shard its
    /// own private [`CtEngine`] (capacity, timeouts, eviction policy, and LB
    /// groups from this config), threaded into the replica per burst and
    /// ticked at every burst boundary. Launching with a ct-bearing pipeline
    /// also switches the dispatcher to symmetric RSS so both directions of a
    /// connection land on one shard — ct state never crosses shards.
    pub ct: Option<CtConfig>,
    /// Elastic rebalancing. `None` (the default) keeps the launch-time
    /// uniform indirection table static — the pre-elastic behaviour, and the
    /// skew benchmark's baseline. `Some` arms the dispatcher's rebalancer:
    /// every `check_packets` dispatched packets it closes an observation
    /// window over the per-shard busy-time telemetry and, on sustained
    /// imbalance, re-homes the hottest flow buckets away from the overloaded
    /// shard through the full quiesce/export/import handshake.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            workers: 2,
            ring_capacity: 1024,
            update_strategy: UpdateStrategy::Planned,
            punt_ring_capacity: 256,
            max_in_flight_punts: PuntGate::DEFAULT_CAPACITY,
            controller_workers: 1,
            punt_policy: PuntPolicy::default(),
            ct: None,
            rebalance: None,
        }
    }
}

impl ShardedConfig {
    /// The per-shard [`PuntGate`] capacity a launch actually uses:
    /// `max_in_flight_punts`, floored at the shard's total punt-ring slots
    /// (one ring per controller worker, capacities rounded to powers of
    /// two). The floor makes the gate *eviction-resistant by sizing*: every
    /// punt that can physically sit in a ring has a tracked gate entry, so
    /// an adversarial flow storm can fill the rings and the gate's spare
    /// capacity but can never push a tracked compliant flow into the
    /// fail-open (duplicate-producing) regime — the gate never evicts, it
    /// only stops tracking *new* flows once full, and by then every one of
    /// the adversary's punts is already bounded by the ring slots.
    pub fn effective_gate_capacity(&self) -> usize {
        let ring_slots =
            self.punt_ring_capacity.max(1).next_power_of_two() * self.controller_workers.max(1);
        self.max_in_flight_punts.max(ring_slots)
    }
}

/// Errors the control plane can return from a live flow-mod.
#[derive(Debug)]
pub enum ShardError {
    /// The flow-mod itself was invalid; nothing changed.
    FlowMod(FlowModError),
    /// The updated pipeline failed to compile; the canonical pipeline was
    /// rolled back and every shard keeps serving the previous epoch.
    Compile(CompileError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::FlowMod(e) => write!(f, "flow-mod rejected: {e:?}"),
            ShardError::Compile(e) => write!(f, "recompilation failed (rolled back): {e:?}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Number of trailing per-epoch deltas an epoch publication carries. A
/// worker that fell further behind than this window (or crossed a
/// non-selective epoch) falls back to brute-force cache invalidation.
const DELTA_WINDOW: usize = 64;

/// What one epoch changed, kept in the publication's trailing window so OVS
/// replicas that are a few epochs behind can still invalidate selectively.
#[derive(Clone)]
struct EpochDelta {
    epoch: u64,
    /// Matches of the rules this epoch changed; `None` when the change was
    /// not provably selective-safe (structural, or a match on a field some
    /// apply-action rewrites).
    matches: Option<Arc<Vec<FlowMatch>>>,
}

/// An epoch-stamped published state.
struct Published {
    epoch: u64,
    /// Which §3.4 tier produced this epoch (switch-wide update accounting).
    class: UpdateClass,
    state: CompiledState,
    /// Trailing window of per-epoch deltas, newest last.
    recent: Vec<EpochDelta>,
}

impl Published {
    /// The per-epoch deltas covering exactly `(since, self.epoch]`, if every
    /// epoch in that gap is inside the window and selective-safe.
    fn deltas_since(&self, since: u64) -> Option<Vec<Arc<Vec<FlowMatch>>>> {
        let need = self.epoch.checked_sub(since)?;
        if need > self.recent.len() as u64 {
            // The gap exceeds the delta window: a far-behind worker cannot
            // be covered (and must not size an allocation to the gap).
            return None;
        }
        let mut out = Vec::with_capacity(need as usize);
        for delta in self
            .recent
            .iter()
            .filter(|d| d.epoch > since && d.epoch <= self.epoch)
        {
            out.push(Arc::clone(delta.matches.as_ref()?));
        }
        (out.len() as u64 == need).then_some(out)
    }
}

/// Switch-wide counts of how flow-mods were absorbed, by §3.4 ladder tier.
#[derive(Debug, Default)]
pub struct UpdateClassStats {
    incremental: AtomicU64,
    per_table: AtomicU64,
    full: AtomicU64,
}

impl UpdateClassStats {
    fn record(&self, class: UpdateClass) {
        match class {
            UpdateClass::Incremental => &self.incremental,
            UpdateClass::PerTable => &self.per_table,
            UpdateClass::Full => &self.full,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the per-class counts.
    pub fn snapshot(&self) -> UpdateClassCounts {
        UpdateClassCounts {
            incremental: self.incremental.load(Ordering::Relaxed),
            per_table: self.per_table.load(Ordering::Relaxed),
            full: self.full.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`UpdateClassStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateClassCounts {
    /// Epochs published by an in-place incremental template edit.
    pub incremental: u64,
    /// Epochs published by rebuilding only the touched tables.
    pub per_table: u64,
    /// Epochs that required recompiling the full state.
    pub full: u64,
}

impl UpdateClassCounts {
    /// Total epochs published.
    pub fn total(&self) -> u64 {
        self.incremental + self.per_table + self.full
    }
}

/// State shared between the control plane and every worker. The reactive
/// controller thread holds an `Arc` to it too: its flow-mods go through
/// [`Control::flow_mod`], the same planner-and-epoch-swap path the switch
/// handle uses.
pub(crate) struct Control {
    spec: BackendSpec,
    strategy: UpdateStrategy,
    /// The canonical pipeline; the single source of truth flow-mods mutate.
    pipeline: Mutex<Pipeline>,
    /// The latest compiled state plus the monotonic epoch counter workers
    /// poll, as an [`EpochSlot`]: the write-side critical section contains a
    /// pointer swap only — every compile/plan/rebuild happens before it,
    /// outside the readers' visible window — and the counter is published
    /// `Release`-after-swap so a worker observing epoch N always reads
    /// state >= N. The swap protocol itself is model-checked in
    /// `tests/loom_epoch.rs`.
    published: EpochSlot<Published>,
    /// Bitmask of match fields some apply-action in the canonical pipeline
    /// can rewrite mid-traversal; grown monotonically (a stale bit only
    /// costs a full flush, never a wrong answer). Gates the OVS delta path.
    written_fields: AtomicU64,
    /// True when some path through the canonical pipeline can punt to the
    /// controller; monotone OR, gates the workers' per-burst ingress-frame
    /// snapshot so proactive pipelines pay nothing for packet-in fidelity.
    may_punt: AtomicBool,
    /// Per-class epoch accounting (§3.4 ladder tiers).
    update_stats: UpdateClassStats,
    shutdown: AtomicBool,
}

impl Control {
    /// Applies a flow-mod and publishes the next epoch — the shared control
    /// plane entry point, reachable from the switch handle
    /// ([`ShardedSwitch::flow_mod`]) and from the reactive controller
    /// thread. The pipeline lock is held across plan + publish so concurrent
    /// flow-mods serialise and epochs stay monotonic with pipeline state.
    pub(crate) fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, ShardError> {
        let mut pipeline = self.pipeline.lock();
        let (effect, undo) =
            apply_flow_mod_undoable(&mut pipeline, fm).map_err(ShardError::FlowMod)?;
        if instructions_can_punt(&fm.instructions) {
            // Monotone: a rolled-back punt path only leaves the bit
            // conservatively set.
            self.may_punt.store(true, Ordering::Relaxed);
        }
        if effect.entries_touched() == 0 {
            // Matched nothing, changed nothing: every shard's state is still
            // exact — publishing an epoch would only force needless work.
            return Ok(effect);
        }
        let prev = self.published.load();

        let (state, class, delta) = match (self.strategy, &self.spec, &prev.state) {
            // The measurable baseline: recompile everything on every change.
            (UpdateStrategy::FullRecompile, spec, _) => match spec.compile_state(&pipeline) {
                Ok(state) => (state, UpdateClass::Full, None),
                Err(e) => {
                    undo.undo(&mut pipeline);
                    return Err(ShardError::Compile(e));
                }
            },
            (UpdateStrategy::Planned, BackendSpec::Eswitch(config), CompiledState::Eswitch(dp)) => {
                match UpdatePlanner::new(config).absorb(&pipeline, dp, fm, &effect) {
                    // The shared datapath absorbed the edit in place
                    // (trampoline semantics): re-publish the same state
                    // under the next epoch so convergence tracking and
                    // class accounting advance.
                    Absorbed::Incremental => (
                        CompiledState::Eswitch(Arc::clone(dp)),
                        UpdateClass::Incremental,
                        None,
                    ),
                    // A new datapath structurally sharing every untouched
                    // table; only the rebuilt tables get fresh slots.
                    Absorbed::PerTable(rebuilt) => (
                        CompiledState::Eswitch(Arc::new(dp.with_rebuilt_tables(rebuilt))),
                        UpdateClass::PerTable,
                        None,
                    ),
                    Absorbed::Full => match self.spec.compile_state(&pipeline) {
                        Ok(state) => (state, UpdateClass::Full, None),
                        Err(e) => {
                            undo.undo(&mut pipeline);
                            return Err(ShardError::Compile(e));
                        }
                    },
                }
            }
            (UpdateStrategy::Planned, BackendSpec::Ovs(_), _) => {
                // OVS epochs always snapshot the pipeline (replicas realise
                // it lazily); the ladder classification reflects what the
                // *shards* pay: a selective-safe delta invalidates
                // incrementally, anything else costs the full hierarchy.
                let added_bits = written_match_fields(&fm.instructions);
                let written =
                    self.written_fields.fetch_or(added_bits, Ordering::Relaxed) | added_bits;
                let state = CompiledState::Ovs(Arc::new(pipeline.clone()));
                if delta_is_selective(written, &effect.touched_matches) {
                    (
                        state,
                        UpdateClass::Incremental,
                        Some(Arc::new(effect.touched_matches.clone())),
                    )
                } else {
                    (state, UpdateClass::Full, None)
                }
            }
            _ => unreachable!("published state does not match the backend spec"),
        };

        let epoch = prev.epoch + 1;
        let mut recent = prev.recent.clone();
        if recent.len() >= DELTA_WINDOW {
            recent.drain(..recent.len() + 1 - DELTA_WINDOW);
        }
        recent.push(EpochDelta {
            epoch,
            matches: delta,
        });
        self.published.publish(
            epoch,
            Arc::new(Published {
                epoch,
                class,
                state,
                recent,
            }),
        );
        self.update_stats.record(class);
        Ok(effect)
    }
}

/// Per-shard runtime statistics, readable while the worker runs.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Packets and bytes this shard has processed.
    pub processed: Counters,
    /// The epoch this shard currently serves.
    pub epoch: AtomicU64,
}

/// Observer invoked by a worker for every verdict it produces, with the
/// shard index and the processed (post-action) frame. Used by the update-
/// and rebalance-consistency tests; `None` in production and in the
/// benchmarks. Sink calls happen *before* the shard's processed counter
/// advances past the burst, so the dispatcher's quiesce wait observes every
/// sink effect of every pre-quiesce packet.
pub type VerdictSink = Arc<dyn Fn(usize, &Packet, &Verdict) + Send + Sync>;

/// Aggregate report returned by [`ShardedSwitch::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Packets handed to the dispatcher over the runtime's lifetime.
    pub dispatched: u64,
    /// Switch-wide totals (sum over shards); re-injected packet-outs are
    /// accounted separately in `reactive`, so `processed == dispatched` at
    /// an orderly shutdown.
    pub processed: CounterSnapshot,
    /// Per-shard totals, indexed by shard.
    pub per_shard: Vec<CounterSnapshot>,
    /// The control-plane epoch at shutdown.
    pub epoch: u64,
    /// How the published epochs were classified (§3.4 ladder tiers).
    pub update_classes: UpdateClassCounts,
    /// Reactive slow-path accounting (reactive launches only).
    pub reactive: Option<ReactiveSnapshot>,
    /// Per-shard connection-tracking snapshots, indexed by shard (ct
    /// launches only). Every counter in a shard's snapshot was incremented
    /// by that shard's worker alone — the aggregation here is the only
    /// cross-shard touch ct state ever gets.
    pub ct_per_shard: Option<Vec<CtSnapshot>>,
    /// Per-shard load telemetry, indexed by shard. Exact at shutdown: each
    /// worker's recorder flushes its tail on exit, before the join.
    pub load_per_shard: Vec<LoadSnapshot>,
    /// Bucket remaps the dispatcher executed (manual and rebalancer-driven).
    pub remaps: u64,
}

impl ShutdownReport {
    /// Switch-wide ct totals: the field-wise sum of every shard's snapshot.
    pub fn ct_merged(&self) -> Option<CtSnapshot> {
        self.ct_per_shard.as_ref().map(|shards| {
            shards
                .iter()
                .fold(CtSnapshot::default(), |a, s| a.merged(s))
        })
    }
}

/// The reactive channel's switch-side handles: the controller workers plus
/// everything shutdown needs to prove the punt flow quiescent. The ring
/// vectors are the flattened matrices — shutdown only ever asks "are they
/// all empty", so the [shard][worker] structure is not preserved here.
struct ReactiveHandle {
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shared: Arc<ReactiveShared>,
    punt_rings: Vec<Arc<SpscRing<Punt>>>,
    inject_rings: Vec<Arc<SpscRing<Packet>>>,
}

/// The sharded switch: N worker shards plus the flow-mod control plane and,
/// for reactive launches, the asynchronous controller channel.
pub struct ShardedSwitch {
    control: Arc<Control>,
    stats: Vec<Arc<ShardStats>>,
    /// Per-shard ct counters (ct launches only): each worker's engine
    /// increments its own `Arc<CtStats>`; this side only ever reads.
    ct_stats: Option<Vec<CtArc<CtStats>>>,
    /// Per-shard load telemetry: each worker's recorder flushes into its
    /// own slot; this side (and the dispatcher's rebalancer) only reads.
    loads: Vec<Arc<ShardLoad>>,
    workers: Vec<JoinHandle<()>>,
    reactive: Option<ReactiveHandle>,
}

impl ShardedSwitch {
    /// Compiles `pipeline`, spawns the worker shards, and returns the switch
    /// handle plus the single-producer dispatcher that feeds it.
    pub fn launch(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        Self::launch_with_sink(spec, pipeline, config, None)
    }

    /// [`ShardedSwitch::launch`] with a per-verdict observer (testing hook).
    pub fn launch_with_sink(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
        sink: Option<VerdictSink>,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        Self::launch_inner(spec, pipeline, config, sink, None)
    }

    /// Launches the switch with the asynchronous controller channel: worker
    /// shards enqueue punted packets onto per-shard punt rings, a dedicated
    /// controller thread drains them into `controller`, and the answers flow
    /// back as epoch-published flow-mods and RSS-re-injected packet-outs.
    /// The reactive workloads (access gateway, learning switch) run the
    /// sharded runtime through this entry point.
    pub fn launch_reactive(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
        controller: Box<dyn Controller>,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        Self::launch_inner(spec, pipeline, config, None, Some(controller))
    }

    /// [`ShardedSwitch::launch_reactive`] with a per-verdict observer. The
    /// sink observes main-ring packets only; re-injected packet-outs are
    /// accounted in the reactive counters instead.
    pub fn launch_reactive_with_sink(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
        controller: Box<dyn Controller>,
        sink: Option<VerdictSink>,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        Self::launch_inner(spec, pipeline, config, sink, Some(controller))
    }

    fn launch_inner(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
        sink: Option<VerdictSink>,
        controller: Option<Box<dyn Controller>>,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        let workers_wanted = config.workers.max(1);
        let state = spec.compile_state(&pipeline)?;
        let written = pipeline_written_fields(&pipeline);
        let may_punt = pipeline_can_punt(&pipeline);
        // A ct-bearing pipeline needs both directions of a connection on one
        // shard: steer every dispatcher (ingress and the controller workers'
        // re-injectors) with the direction-insensitive hash.
        let symmetric = pipeline_has_ct(&pipeline);
        let published = Arc::new(Published {
            epoch: 0,
            class: UpdateClass::Full,
            state,
            recent: Vec::new(),
        });
        let control = Arc::new(Control {
            spec,
            strategy: config.update_strategy,
            pipeline: Mutex::new(pipeline),
            published: EpochSlot::new(Arc::clone(&published)),
            written_fields: AtomicU64::new(written),
            may_punt: AtomicBool::new(may_punt),
            update_stats: UpdateClassStats::default(),
            shutdown: AtomicBool::new(false),
        });

        // The reactive channel's shared plumbing, when a controller rides
        // along. Both ring families are matrices so every ring stays
        // strictly SPSC with N controller workers:
        //
        // * `punt_rings[s][w]`: worker shard `s` is the only producer,
        //   controller worker `w` the only consumer — the worker picks `w`
        //   by flow signature ([`partition_of`]), so a flow's punts always
        //   serialise through one controller worker;
        // * `inject_rings[w][s]`: controller worker `w` is the only
        //   producer (through its private RSS dispatcher), worker shard `s`
        //   the only consumer.
        let controller_workers = config.controller_workers.max(1);
        let shared = controller.as_ref().map(|_| {
            Arc::new(ReactiveShared::new(
                workers_wanted,
                controller_workers,
                config.effective_gate_capacity(),
                &config.punt_policy,
            ))
        });
        let punt_rings: Vec<Vec<Arc<SpscRing<Punt>>>> = (0..workers_wanted)
            .map(|_| {
                (0..controller_workers)
                    .map(|_| Arc::new(SpscRing::new(config.punt_ring_capacity)))
                    .collect()
            })
            .collect();
        let inject_rings: Vec<Vec<Arc<SpscRing<Packet>>>> = (0..controller_workers)
            .map(|_| {
                (0..workers_wanted)
                    .map(|_| Arc::new(SpscRing::new(config.ring_capacity)))
                    .collect()
            })
            .collect();

        // One private ct engine per worker shard, each over its own shared
        // counter block: the engine moves into the worker thread (no lock
        // ever guards connection state); the `Arc<CtStats>` stays behind for
        // the shutdown report's aggregation.
        let ct_stats: Option<Vec<CtArc<CtStats>>> = config.ct.as_ref().map(|_| {
            (0..workers_wanted)
                .map(|_| CtArc::new(CtStats::new()))
                .collect()
        });

        // The elastic-scheduling plumbing: the shared indirection-table slot
        // every dispatcher steers by, plus per-shard command/ack rings (each
        // strictly SPSC: main dispatcher <-> one worker) and the load
        // telemetry slots the rebalancer reads.
        let remap = Arc::new(RemapShared::new(workers_wanted));
        let mut cmd_rings = Vec::with_capacity(workers_wanted);
        let mut ack_rings = Vec::with_capacity(workers_wanted);
        let mut loads = Vec::with_capacity(workers_wanted);

        let mut rings = Vec::with_capacity(workers_wanted);
        let mut stats = Vec::with_capacity(workers_wanted);
        let mut workers = Vec::with_capacity(workers_wanted);
        for shard in 0..workers_wanted {
            let ring = Arc::new(SpscRing::new(config.ring_capacity));
            let shard_stats = Arc::new(ShardStats::default());
            let cmd: Arc<SpscRing<ShardCmd>> = Arc::new(SpscRing::new(16));
            let ack: Arc<SpscRing<BucketAck>> = Arc::new(SpscRing::new(16));
            let load = Arc::new(ShardLoad::default());
            let backend = control.spec.replica(&published.state);
            let ct = config.ct.as_ref().map(|cfg| {
                CtEngine::with_stats(
                    cfg,
                    CtArc::clone(&ct_stats.as_ref().expect("ct stats exist with ct config")[shard]),
                )
            });
            let reactive = shared.as_ref().map(|shared| WorkerReactive {
                punt_rings: punt_rings[shard].clone(),
                inject_rings: inject_rings
                    .iter()
                    .map(|row| Arc::clone(&row[shard]))
                    .collect(),
                gate: Arc::clone(&shared.gates[shard]),
                shared: Arc::clone(shared),
            });
            let worker = WorkerHandle {
                shard,
                control: Arc::clone(&control),
                ring: Arc::clone(&ring),
                stats: Arc::clone(&shard_stats),
                cmd: Arc::clone(&cmd),
                ack: Arc::clone(&ack),
                load: Arc::clone(&load),
                sink: sink.clone(),
                reactive,
                ct,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shard-{shard}"))
                    .spawn(move || worker.run(backend))
                    .expect("spawn worker thread"),
            );
            rings.push(ring);
            stats.push(shard_stats);
            cmd_rings.push(cmd);
            ack_rings.push(ack);
            loads.push(load);
        }

        let reactive = match (controller, shared) {
            (Some(controller), Some(shared)) => {
                let stop = Arc::new(AtomicBool::new(false));
                let app: Arc<Mutex<Box<dyn Controller>>> = Arc::new(Mutex::new(controller));
                let mut threads = Vec::with_capacity(controller_workers);
                for index in 0..controller_workers {
                    let worker = ControllerWorker {
                        index,
                        control: Arc::clone(&control),
                        controller: Arc::clone(&app),
                        punt_rings: punt_rings
                            .iter()
                            .map(|row| Arc::clone(&row[index]))
                            .collect(),
                        injector: RssDispatcher::new(inject_rings[index].clone())
                            .with_symmetric(symmetric)
                            .with_reader(Arc::clone(&remap)),
                        shared: Arc::clone(&shared),
                        stop: Arc::clone(&stop),
                    };
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("shard-controller-{index}"))
                            .spawn(move || worker.run())
                            .expect("spawn controller worker"),
                    );
                }
                Some(ReactiveHandle {
                    threads,
                    stop,
                    shared,
                    punt_rings: punt_rings.into_iter().flatten().collect(),
                    inject_rings: inject_rings.into_iter().flatten().collect(),
                })
            }
            _ => None,
        };

        let dispatcher = RssDispatcher::new(rings)
            .with_symmetric(symmetric)
            .with_elastic(
                remap,
                cmd_rings,
                ack_rings,
                stats.clone(),
                loads.clone(),
                config.rebalance,
            );
        Ok((
            ShardedSwitch {
                control,
                stats,
                ct_stats,
                loads,
                workers,
                reactive,
            },
            dispatcher,
        ))
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.stats.len()
    }

    /// Applies a flow-mod while traffic runs: the canonical pipeline is
    /// updated once, the §3.4 update planner decides the cheapest absorbing
    /// tier on *this* thread, and the result is broadcast to every shard as
    /// the next epoch. Workers swap it in at their next burst boundary
    /// without ever blocking — the `published` write lock holds a pointer
    /// swap only, never compilation.
    ///
    /// * **Incremental** — the edit lands in the shared compiled datapath
    ///   through the touched table's trampoline (O(1) publication; packets
    ///   see the edit at their next lookup of that one table, the paper's
    ///   trampoline semantics);
    /// * **PerTable** — only the touched tables are recompiled and the epoch
    ///   is a new datapath that *structurally shares* every untouched table;
    /// * **Full** — structure changed: the whole state is recompiled. A
    ///   compilation failure replays the flow-mod's undo log (no up-front
    ///   pipeline clone) and leaves every shard on the previous epoch.
    ///
    /// OVS epochs additionally carry the changed rules' matches when the
    /// change is provably selective-safe, so replicas flush only the
    /// overlapping megaflow entries and keep disjoint EMC entries alive.
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, ShardError> {
        self.control.flow_mod(fm)
    }

    /// Switch-wide per-class epoch counts (§3.4 ladder accounting).
    pub fn update_classes(&self) -> UpdateClassCounts {
        self.control.update_stats.snapshot()
    }

    /// Reactive slow-path accounting, when this switch was launched with a
    /// controller ([`ShardedSwitch::launch_reactive`]). Live: counters keep
    /// advancing while punts resolve.
    pub fn reactive_stats(&self) -> Option<ReactiveSnapshot> {
        self.reactive.as_ref().map(|r| r.shared.snapshot())
    }

    /// The §3.4 ladder tier that produced the most recent epoch (epoch 0,
    /// the launch compilation, reports as `Full`).
    pub fn current_epoch_class(&self) -> UpdateClass {
        self.control.published.load().class
    }

    /// Read access to the canonical pipeline.
    pub fn with_pipeline<R>(&self, f: impl FnOnce(&Pipeline) -> R) -> R {
        f(&self.control.pipeline.lock())
    }

    /// The control-plane epoch (number of published updates).
    pub fn epoch(&self) -> u64 {
        self.control.published.epoch()
    }

    /// The epoch each shard currently serves (trails [`ShardedSwitch::epoch`]
    /// until the shard's next burst boundary).
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.epoch.load(Ordering::Acquire))
            .collect()
    }

    /// Per-shard statistics handle (live; counters keep advancing).
    pub fn shard_stats(&self, shard: usize) -> &ShardStats {
        &self.stats[shard]
    }

    /// Live per-shard connection-tracking snapshots (ct launches only).
    /// Counters keep advancing while the workers run; the conservation
    /// identity is only guaranteed between bursts (use the shutdown report
    /// for an exact read).
    pub fn ct_snapshots(&self) -> Option<Vec<CtSnapshot>> {
        self.ct_stats
            .as_ref()
            .map(|stats| stats.iter().map(|s| s.snapshot()).collect())
    }

    /// Live per-shard load telemetry snapshots, indexed by shard. The shared
    /// side lags each worker's local window by at most
    /// [`LoadRecorder::FLUSH_BURSTS`] bursts; use the shutdown report for an
    /// exact read.
    pub fn load_snapshots(&self) -> Vec<LoadSnapshot> {
        self.loads.iter().map(|l| l.snapshot()).collect()
    }

    /// Switch-wide totals: the sum of every shard's counters at this instant.
    pub fn stats(&self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for s in &self.stats {
            let snap = s.processed.snapshot();
            total.packets += snap.packets;
            total.bytes += snap.bytes;
            total.drops += snap.drops;
        }
        total
    }

    /// Drains and stops the runtime: flushes the dispatcher's staged
    /// packets, waits for every dispatched packet to be processed, then —
    /// for reactive launches — runs the punt flow to a provable fixpoint
    /// (every punt answered, every re-injected packet-out processed, every
    /// ring empty) before joining the controller thread and the workers.
    /// Every dispatched packet is processed, and every punt is accounted,
    /// before this returns.
    pub fn shutdown(mut self, mut dispatcher: RssDispatcher) -> ShutdownReport {
        dispatcher.flush();

        if let Some(reactive) = &self.reactive {
            // Phase 1: every dispatched packet processed. Workers enqueue a
            // packet's punts *before* advancing the processed counter, so
            // reaching the dispatch count proves no punt is still unborn.
            let dispatched = dispatcher.dispatched();
            while self.stats().packets < dispatched {
                std::thread::yield_now();
            }
            // Phase 2: punt-flow fixpoint. Each condition's violation names
            // pending work that monotonically completes (a queued punt gets
            // answered, a queued packet-out gets processed — possibly
            // punting again, which re-opens the punted==answered gap), so
            // the loop terminates for any controller that stops generating
            // new packet-outs for answered flows.
            loop {
                let before = reactive.shared.snapshot();
                let rings_empty = reactive.punt_rings.iter().all(|r| r.is_empty())
                    && reactive.inject_rings.iter().all(|r| r.is_empty());
                if rings_empty
                    && before.answered == before.punted
                    && before.injected == before.reinjected
                    && reactive.shared.snapshot() == before
                {
                    break;
                }
                std::thread::yield_now();
            }
            reactive.stop.store(true, Ordering::Release);
        }
        if let Some(reactive) = &mut self.reactive {
            for thread in reactive.threads.drain(..) {
                thread.join().expect("controller worker panicked");
            }
        }

        self.control.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        let per_shard: Vec<CounterSnapshot> =
            self.stats.iter().map(|s| s.processed.snapshot()).collect();
        let mut processed = CounterSnapshot::default();
        for snap in &per_shard {
            processed.packets += snap.packets;
            processed.bytes += snap.bytes;
            processed.drops += snap.drops;
        }
        ShutdownReport {
            dispatched: dispatcher.dispatched(),
            processed,
            per_shard,
            epoch: self.control.published.epoch(),
            update_classes: self.control.update_stats.snapshot(),
            reactive: self.reactive.as_ref().map(|r| r.shared.snapshot()),
            ct_per_shard: self
                .ct_stats
                .as_ref()
                .map(|stats| stats.iter().map(|s| s.snapshot()).collect()),
            load_per_shard: self.loads.iter().map(|l| l.snapshot()).collect(),
            remaps: dispatcher.remaps(),
        }
    }
}

impl Drop for ShardedSwitch {
    /// Dropping the switch without [`ShardedSwitch::shutdown`] (a panicking
    /// test, an early return) must not leak spinning worker threads: raise
    /// the shutdown flag and join. Packets still staged in the (separately
    /// owned) dispatcher are lost in this path — orderly code goes through
    /// `shutdown`, which flushes first.
    fn drop(&mut self) {
        // Stop the controller workers first, while the worker shards still
        // drain the inject rings they may be publishing to; punts the shards
        // raise after they exit are shed as overflow once the punt rings
        // fill — dirty teardown loses punts, never hangs. Orderly code goes
        // through `shutdown`, which proves the punt flow quiescent first.
        if let Some(reactive) = &mut self.reactive {
            reactive.stop.store(true, Ordering::Release);
            for thread in reactive.threads.drain(..) {
                let _ = thread.join();
            }
        }
        self.control.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A worker's side of the reactive channel: its row of punt rings (one per
/// controller worker, picked by flow signature), its column of inject rings
/// (one per controller worker, each an SPSC it exclusively consumes), and
/// the dedup gate shared with the controller workers.
struct WorkerReactive {
    punt_rings: Vec<Arc<SpscRing<Punt>>>,
    inject_rings: Vec<Arc<SpscRing<Packet>>>,
    gate: Arc<PuntGate>,
    shared: Arc<ReactiveShared>,
}

/// Everything one worker thread needs, bundled for the spawn.
struct WorkerHandle {
    shard: usize,
    control: Arc<Control>,
    ring: Arc<SpscRing<Packet>>,
    stats: Arc<ShardStats>,
    /// Bucket-migration commands from the main dispatcher (SPSC, this shard
    /// the sole consumer); handled strictly between bursts.
    cmd: Arc<SpscRing<ShardCmd>>,
    /// Command acks back to the main dispatcher (SPSC, this shard the sole
    /// producer).
    ack: Arc<SpscRing<BucketAck>>,
    /// Shared load-telemetry slot this worker's recorder flushes into.
    load: Arc<ShardLoad>,
    sink: Option<VerdictSink>,
    reactive: Option<WorkerReactive>,
    /// This shard's private connection-tracking engine (ct launches only).
    /// Owned by the worker thread alone and threaded into the replica per
    /// burst, so it survives every epoch swap and never needs a lock.
    ct: Option<CtEngine>,
}

impl WorkerHandle {
    fn run(mut self, mut backend: Box<dyn crate::backend::ShardBackend>) {
        let mut engine = self.ct.take();
        let mut recorder = LoadRecorder::new(Arc::clone(&self.load));
        let mut burst: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
        let mut injected: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST_SIZE);
        let mut ingress = IngressSnapshot::default();
        let mut local_epoch = 0u64;
        let mut idle = 0u32;
        loop {
            self.sync_epoch(&mut backend, &mut local_epoch);

            // Bucket-migration commands, strictly between bursts: an export
            // can never split a burst, so every packet of a moved bucket the
            // dispatcher quiesced is fully processed before its connections
            // leave this engine.
            self.handle_commands(&mut backend, engine.as_mut());

            // Re-injected packet-outs first: the controller publishes the
            // install *before* queueing the packet-out, so after re-syncing
            // the epoch the packet takes the fresh rule on the fast path.
            // One ring per controller worker; each is SPSC with this shard
            // as sole consumer.
            if let Some(reactive) = &self.reactive {
                injected.clear();
                let mut n = 0;
                for ring in &reactive.inject_rings {
                    n += ring.pop_burst(&mut injected, BURST_SIZE);
                }
                if n > 0 {
                    // Injected work is work: keep the backoff at spin so the
                    // next re-injection is not penalised a scheduler quantum.
                    idle = 0;
                    self.sync_epoch(&mut backend, &mut local_epoch);
                    let started = Instant::now();
                    self.process_group(
                        &mut backend,
                        &mut injected,
                        &mut verdicts,
                        &mut ingress,
                        local_epoch,
                        engine.as_mut(),
                    );
                    // Injected bursts drain no main-ring backlog: occupancy 0.
                    recorder.record_burst(started.elapsed().as_nanos() as u64, n as u64, 0);
                    // Counted after the group's punts are enqueued, so
                    // `injected == reinjected` proves the inject flow
                    // quiescent at shutdown.
                    reactive
                        .shared
                        .stats
                        .injected
                        .fetch_add(n as u64, Ordering::Release);
                }
            }

            burst.clear();
            let n = self.ring.pop_burst(&mut burst, BURST_SIZE);
            if n == 0 {
                // `shutdown` is raised only after the dispatcher's final
                // flush (and, for reactive launches, after the controller
                // thread drained and exited), so once it reads true an
                // empty ring is final.
                if self.control.shutdown.load(Ordering::Acquire)
                    && self.ring.is_empty()
                    && self
                        .reactive
                        .as_ref()
                        .is_none_or(|r| r.inject_rings.iter().all(|ring| ring.is_empty()))
                {
                    break;
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            idle = 0;

            // Ring occupancy at this drain: the popped burst plus whatever
            // queued behind it — the telemetry high-water signal.
            let depth = (n + self.ring.len()) as u64;
            // Ingress byte accounting: before processing, which may grow or
            // shrink frames (push-VLAN and friends).
            let bytes: u64 = burst.iter().map(|p| p.len() as u64).sum();
            let started = Instant::now();
            self.process_group(
                &mut backend,
                &mut burst,
                &mut verdicts,
                &mut ingress,
                local_epoch,
                engine.as_mut(),
            );
            let busy = started.elapsed().as_nanos() as u64;
            if let Some(sink) = &self.sink {
                for (packet, verdict) in burst.iter().zip(verdicts.iter()) {
                    sink(self.shard, packet, verdict);
                }
            }
            // Processed is advanced (`Release`) only after the burst's punt
            // copies are enqueued *and* the sink observed every verdict:
            // `processed == dispatched` then proves no punt is still unborn
            // (the shutdown fixpoint's phase 1), and the dispatcher's
            // quiesce wait proves every pre-remap packet fully observed.
            self.stats.processed.record_batch(n as u64, bytes);
            recorder.record_burst(busy, n as u64, depth);
        }
    }

    /// Drains this shard's command ring — bucket exports and imports from
    /// the main dispatcher's remap handshake. Called strictly between
    /// bursts. An export drains the bucket's connections (and NAT
    /// allocators) from the private engine and invalidates the backend's
    /// cached entries for every moved flow (both directions), so post-move
    /// packets of those flows can never hit a stale EMC/megaflow verdict on
    /// this shard; the state travels back on the ack ring. An import
    /// installs a previously exported bucket. Launches without ct still ack
    /// (with empty state): stateless verdicts are placement-independent.
    fn handle_commands(
        &self,
        backend: &mut Box<dyn crate::backend::ShardBackend>,
        mut engine: Option<&mut CtEngine>,
    ) {
        while let Some(cmd) = self.cmd.pop() {
            let ack = match cmd {
                ShardCmd::Export { bucket } => {
                    let state = match engine.as_deref_mut() {
                        Some(engine) => engine.export_bucket(bucket),
                        None => conntrack::BucketExport {
                            bucket,
                            ..Default::default()
                        },
                    };
                    let mut matches = Vec::with_capacity(state.conns.len() * 2);
                    for conn in &state.conns {
                        matches.push(exact_tuple_match(&conn.orig));
                        matches.push(exact_tuple_match(&conn.reply));
                    }
                    if !matches.is_empty() {
                        backend.invalidate_flows(&matches);
                    }
                    BucketAck {
                        bucket,
                        state: Some(Box::new(state)),
                    }
                }
                ShardCmd::Import { state } => {
                    let bucket = state.bucket;
                    if let Some(engine) = engine.as_deref_mut() {
                        engine.import_bucket(*state);
                    }
                    BucketAck {
                        bucket,
                        state: None,
                    }
                }
            };
            // The handshake keeps one command in flight per shard and the
            // ack ring holds more, so this push cannot starve; retry
            // defensively rather than assert.
            let mut slot = Some(ack);
            while let Err(returned) = self.ack.push(slot.take().expect("ack present")) {
                slot = Some(returned);
                std::thread::yield_now();
            }
        }
    }

    /// One epoch check: a relaxed-cost load per call; the swap itself only
    /// happens when the control plane actually published.
    fn sync_epoch(
        &self,
        backend: &mut Box<dyn crate::backend::ShardBackend>,
        local_epoch: &mut u64,
    ) {
        let epoch = self.control.published.epoch();
        if epoch != *local_epoch {
            let published = self.control.published.load();
            // Selective invalidation is only sound when the delta window
            // covers every epoch this shard skipped; otherwise the
            // replica pays the brute-force flush.
            let deltas = published.deltas_since(*local_epoch);
            backend.apply(&published.state, deltas.as_deref());
            *local_epoch = published.epoch;
            self.stats.epoch.store(*local_epoch, Ordering::Release);
        }
    }

    /// Processes one burst through the replica and raises punt copies for
    /// every punting verdict. When the pipeline can punt at all, the ingress
    /// frames are snapshotted first so the punt copy carries the frame as
    /// received — processing rewrites the burst in place.
    ///
    /// When this shard tracks connections, the engine's clock ticks once per
    /// group here — the burst boundary — expiring idle connections before
    /// the burst's packets consult the table.
    fn process_group(
        &self,
        backend: &mut Box<dyn crate::backend::ShardBackend>,
        burst: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ingress: &mut IngressSnapshot,
        epoch: u64,
        engine: Option<&mut CtEngine>,
    ) {
        let snapshot = self.reactive.is_some() && self.control.may_punt.load(Ordering::Relaxed);
        if snapshot {
            ingress.capture(burst);
        }
        let mut no_ct = NoCt;
        let ct: &mut dyn ConnCtx = match engine {
            Some(engine) => {
                engine.tick();
                engine
            }
            None => &mut no_ct,
        };
        backend.process_batch_into(burst, verdicts, ct);
        let Some(reactive) = &self.reactive else {
            return;
        };
        for (i, verdict) in verdicts.iter().enumerate() {
            if !verdict.to_controller {
                continue;
            }
            // `may_punt` is a monotone over-approximation of the published
            // state, so a punting verdict implies the snapshot exists; fall
            // back to the processed frame defensively rather than panic.
            let packet = if snapshot {
                ingress.packet(i)
            } else {
                burst[i].clone()
            };
            self.punt(reactive, packet, verdict.punt_reason, epoch);
        }
    }

    /// Raises one punt copy through the layered admission pipeline:
    /// dedup-gate it (layer 1), charge the per-source and aggregate token
    /// buckets (layers 2–3), then enqueue onto the controller worker that
    /// owns this flow's partition — or shed it, counted by layer, if any
    /// layer refuses or the punt ring is full. Never blocks, never
    /// allocates beyond the punted packet copy itself.
    fn punt(&self, reactive: &WorkerReactive, packet: Packet, reason: PacketInReason, epoch: u64) {
        let key = FlowKey::extract(&packet);
        let flow = punt_signature(&key);
        if !reactive.gate.admit(flow) {
            // An install for this flow is already in flight: the controller
            // copy is suppressed (counted by the gate). The verdict the
            // worker already emitted stands — for a pure miss-to-controller
            // disposition that means this packet is not duplicated up, the
            // lossy upcall-queue behaviour of a real switch. The gate runs
            // *before* the buckets so duplicates never burn tokens.
            return;
        }
        // Layers 2–3: per-source bucket first (an over-rate source is shed
        // on its own budget and never drains the shared one), then the
        // aggregate controller budget. A shed re-arms the gate so a later
        // packet of the same flow retries once the source is compliant.
        match reactive
            .shared
            .admission
            .admit(source_signature(&key), reactive.shared.now_nanos())
        {
            PuntAdmit::Admitted => {}
            PuntAdmit::ShedSource => {
                reactive
                    .shared
                    .stats
                    .shed_source
                    .fetch_add(1, Ordering::Relaxed);
                reactive.gate.complete(flow);
                return;
            }
            PuntAdmit::ShedAggregate => {
                reactive
                    .shared
                    .stats
                    .shed_aggregate
                    .fetch_add(1, Ordering::Relaxed);
                reactive.gate.complete(flow);
                return;
            }
        }
        let punt = Punt {
            packet,
            key,
            flow,
            shard: self.shard,
            epoch,
            reason,
            table_id: 0,
            enqueued: Instant::now(),
        };
        // The flow signature — not the RSS hash — picks the owning
        // controller worker, so partition placement is independent of
        // shard placement.
        let partition = partition_of(flow, reactive.punt_rings.len());
        if reactive.punt_rings[partition].push(punt).is_ok() {
            reactive.shared.stats.punted.fetch_add(1, Ordering::Release);
        } else {
            // Lossless-by-policy backpressure: the punt *copy* is shed —
            // counted, and the flow re-armed so a later packet retries.
            reactive
                .shared
                .stats
                .overflow
                .fetch_add(1, Ordering::Relaxed);
            reactive.gate.complete(flow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry};
    use parking_lot::Mutex as PlMutex;
    use pkt::builder::PacketBuilder;

    fn port_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::UdpDst, 53),
            90,
            terminal_actions(vec![Action::Output(2)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn mixed_traffic(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| match i % 3 {
                0 => PacketBuilder::tcp()
                    .tcp_dst(80)
                    .tcp_src(1000 + (i % 512) as u16)
                    .build(),
                1 => PacketBuilder::udp()
                    .udp_dst(53)
                    .udp_src(1000 + (i % 512) as u16)
                    .build(),
                _ => PacketBuilder::tcp()
                    .tcp_dst(22)
                    .tcp_src(1000 + (i % 512) as u16)
                    .build(),
            })
            .collect()
    }

    #[test]
    fn drains_every_packet_before_join() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            let (switch, mut dispatcher) = ShardedSwitch::launch(
                spec,
                port_pipeline(),
                ShardedConfig {
                    workers: 2,
                    ring_capacity: 64,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            for packet in mixed_traffic(5_000) {
                dispatcher.dispatch(packet);
            }
            let report = switch.shutdown(dispatcher);
            assert_eq!(report.dispatched, 5_000, "{}", spec.label());
            assert_eq!(report.processed.packets, 5_000, "{}", spec.label());
            assert_eq!(
                report.per_shard.iter().map(|s| s.packets).sum::<u64>(),
                5_000
            );
            // RSS must actually use both shards on a mixed flow set.
            assert!(
                report.per_shard.iter().all(|s| s.packets > 0),
                "{}: some shard processed nothing: {:?}",
                spec.label(),
                report.per_shard
            );
        }
    }

    #[test]
    fn sharded_verdicts_match_reference_interpreter() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            // Collect (tcp_dst-class, decision) pairs through the sink; with
            // per-flow traffic the reference interpreter predicts them all.
            type Decisions = Arc<PlMutex<Vec<(Vec<u32>, bool, bool)>>>;
            let seen: Decisions = Arc::new(PlMutex::new(Vec::new()));
            let sink_seen = Arc::clone(&seen);
            let sink: VerdictSink = Arc::new(move |_shard, _packet: &Packet, verdict: &Verdict| {
                sink_seen.lock().push(verdict.decision());
            });
            let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
                spec,
                port_pipeline(),
                ShardedConfig {
                    workers: 3,
                    ring_capacity: 64,
                    ..ShardedConfig::default()
                },
                Some(sink),
            )
            .unwrap();

            let reference = port_pipeline();
            let traffic = mixed_traffic(900);
            let mut expected = std::collections::HashMap::new();
            for packet in &traffic {
                let mut copy = packet.clone();
                let verdict = reference.process(&mut copy);
                *expected.entry(verdict.decision()).or_insert(0u64) += 1;
            }
            for packet in traffic {
                dispatcher.dispatch(packet);
            }
            let report = switch.shutdown(dispatcher);
            assert_eq!(report.processed.packets, 900);

            let mut observed = std::collections::HashMap::new();
            for decision in seen.lock().iter() {
                *observed.entry(decision.clone()).or_insert(0u64) += 1;
            }
            assert_eq!(observed, expected, "{}", spec.label());
        }
    }

    #[test]
    fn flow_mod_reaches_idle_shards() {
        // Even with no traffic flowing, every shard converges to the newest
        // epoch (the epoch poll is part of the idle loop, not the RX path).
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(),
            ShardedConfig {
                workers: 2,
                ring_capacity: 64,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        switch
            .flow_mod(&FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 8080),
                95,
                terminal_actions(vec![Action::Output(4)]),
            ))
            .unwrap();
        assert_eq!(switch.epoch(), 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while switch.shard_epochs().iter().any(|e| *e != 1) {
            assert!(
                std::time::Instant::now() < deadline,
                "shards never converged: {:?}",
                switch.shard_epochs()
            );
            std::thread::yield_now();
        }
        let report = switch.shutdown(dispatcher);
        assert_eq!(report.epoch, 1);
    }

    fn mac_match(i: u64) -> FlowMatch {
        FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_0000 + i))
    }

    fn l2_hash_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..64u64 {
            t.insert(FlowEntry::new(
                mac_match(i),
                10,
                terminal_actions(vec![Action::Output((i % 4) as u32)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    /// The acceptance gate of the update-planner PR: hash-table rule
    /// add/delete flow-mods must publish epochs classified Incremental or
    /// PerTable — never Full — and the packets must still see the change.
    #[test]
    fn hash_rule_churn_publishes_incremental_epochs() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            l2_hash_pipeline(),
            ShardedConfig {
                workers: 2,
                ring_capacity: 64,
                ..ShardedConfig::default()
            },
        )
        .unwrap();

        // Adds and strict deletes of template-shaped MAC rules.
        for i in 100..120u64 {
            switch
                .flow_mod(&FlowMod::add(
                    0,
                    mac_match(i),
                    10,
                    terminal_actions(vec![Action::Output(3)]),
                ))
                .unwrap();
        }
        for i in 100..110u64 {
            switch
                .flow_mod(&FlowMod::delete_strict(0, mac_match(i), 10))
                .unwrap();
        }
        let classes = switch.update_classes();
        assert_eq!(classes.incremental, 30, "{classes:?}");
        assert_eq!(classes.full, 0, "{classes:?}");
        assert_eq!(switch.epoch(), 30);

        // A non-strict delete rebuilds just the one table.
        switch.flow_mod(&FlowMod::delete(0, mac_match(1))).unwrap();
        assert_eq!(switch.update_classes().per_table, 1);
        assert_eq!(switch.update_classes().full, 0);

        // A structural change (new table) is the only full recompile.
        switch
            .flow_mod(&FlowMod::add(
                5,
                FlowMatch::any(),
                1,
                terminal_actions(vec![Action::Output(1)]),
            ))
            .unwrap();
        assert_eq!(switch.update_classes().full, 1);

        // Shards converge and the surviving adds actually forward.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while switch.shard_epochs().iter().any(|e| *e != switch.epoch()) {
            assert!(std::time::Instant::now() < deadline, "no convergence");
            std::thread::yield_now();
        }
        let report = switch.shutdown(dispatcher);
        assert_eq!(report.update_classes.incremental, 30);
        assert_eq!(report.update_classes.per_table, 1);
        assert_eq!(report.update_classes.full, 1);
    }

    #[test]
    fn no_op_flow_mod_publishes_no_epoch() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            l2_hash_pipeline(),
            ShardedConfig {
                workers: 1,
                ring_capacity: 64,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        let effect = switch
            .flow_mod(&FlowMod::delete(0, mac_match(9999)))
            .unwrap();
        assert_eq!(effect.entries_touched(), 0);
        assert_eq!(switch.epoch(), 0, "no-op must not publish an epoch");
        assert_eq!(switch.update_classes().total(), 0);
        switch.shutdown(dispatcher);
    }

    #[test]
    fn full_recompile_strategy_classifies_everything_full() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            l2_hash_pipeline(),
            ShardedConfig {
                workers: 1,
                ring_capacity: 64,
                update_strategy: UpdateStrategy::FullRecompile,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        for i in 100..105u64 {
            switch
                .flow_mod(&FlowMod::add(
                    0,
                    mac_match(i),
                    10,
                    terminal_actions(vec![Action::Output(3)]),
                ))
                .unwrap();
        }
        let classes = switch.update_classes();
        assert_eq!(classes.full, 5);
        assert_eq!(classes.incremental + classes.per_table, 0);
        switch.shutdown(dispatcher);
    }

    #[test]
    fn ovs_selective_rule_adds_classify_incremental() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::ovs(),
            port_pipeline(),
            ShardedConfig {
                workers: 1,
                ring_capacity: 64,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // port_pipeline rewrites nothing, so a port-rule add ships a delta.
        switch
            .flow_mod(&FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 8080),
                95,
                terminal_actions(vec![Action::Output(4)]),
            ))
            .unwrap();
        assert_eq!(switch.update_classes().incremental, 1);
        switch.shutdown(dispatcher);
    }

    /// A stateful ACL pipeline: client→server traffic commits a connection,
    /// server→client traffic passes only when established.
    fn ct_acl_pipeline() -> Pipeline {
        use openflow::ct::CtVerb;
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Ct(CtVerb::Commit), Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpSrc, 80),
            90,
            terminal_actions(vec![Action::Ct(CtVerb::Established), Action::Output(2)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    /// The ct acceptance gate: bidirectional traffic over a multi-shard
    /// launch tracks connections strictly shard-locally. Symmetric RSS puts
    /// every reply on its request's shard (a miss would show up as a denied
    /// Established verdict), and the per-shard counters — incremented by
    /// each worker alone, no cross-shard locks — satisfy the conservation
    /// identity and sum to exactly the offered load.
    #[test]
    fn ct_state_is_shard_local_and_identities_hold() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            let (switch, mut dispatcher) = ShardedSwitch::launch(
                spec,
                ct_acl_pipeline(),
                ShardedConfig {
                    workers: 4,
                    ring_capacity: 256,
                    ct: Some(conntrack::CtConfig::default()),
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            assert!(dispatcher.is_symmetric(), "{}", spec.label());

            let flows = 512u16;
            for src in 0..flows {
                dispatcher.dispatch(
                    PacketBuilder::tcp()
                        .ipv4_src([10, 0, 0, 1])
                        .ipv4_dst([10, 0, 0, 2])
                        .tcp_src(1024 + src)
                        .tcp_dst(80)
                        .build(),
                );
            }
            dispatcher.flush();
            // Replies only after every request is processed, so no reply can
            // race its own commit through a still-staged request burst.
            while switch.stats().packets < u64::from(flows) {
                std::thread::yield_now();
            }
            for src in 0..flows {
                dispatcher.dispatch(
                    PacketBuilder::tcp()
                        .ipv4_src([10, 0, 0, 2])
                        .ipv4_dst([10, 0, 0, 1])
                        .tcp_src(80)
                        .tcp_dst(1024 + src)
                        .build(),
                );
            }
            // One unsolicited "reply" no request ever committed: denied.
            dispatcher.dispatch(
                PacketBuilder::tcp()
                    .ipv4_src([10, 9, 9, 9])
                    .ipv4_dst([10, 0, 0, 1])
                    .tcp_src(80)
                    .tcp_dst(9999)
                    .build(),
            );

            let report = switch.shutdown(dispatcher);
            assert_eq!(report.processed.packets, u64::from(flows) * 2 + 1);
            let shards = report.ct_per_shard.as_ref().expect("ct launch");
            for (shard, snap) in shards.iter().enumerate() {
                assert!(
                    snap.identity_holds(),
                    "{}: shard {shard} identity: {snap:?}",
                    spec.label()
                );
            }
            let merged = report.ct_merged().unwrap();
            assert!(merged.identity_holds(), "{}: {merged:?}", spec.label());
            assert_eq!(merged.created, u64::from(flows), "{}", spec.label());
            // Every reply found its connection on its own shard — symmetric
            // RSS at work; any cross-shard reply would be denied instead.
            assert_eq!(merged.hits, u64::from(flows), "{}", spec.label());
            assert_eq!(merged.denied, 1, "{}", spec.label());
            // The load spread: no shard tracked everything.
            assert!(
                shards.iter().filter(|s| s.created > 0).count() > 1,
                "{}: all connections landed on one shard",
                spec.label()
            );
        }
    }

    #[test]
    fn rejected_flow_mod_rolls_back() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(),
            ShardedConfig {
                workers: 1,
                ring_capacity: 64,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        // Strict-deleting from a table that does not exist is a
        // FlowModError; the epoch must not advance.
        let bogus = FlowMod::delete_strict(40, FlowMatch::any().with_exact(Field::TcpDst, 80), 100);
        assert!(switch.flow_mod(&bogus).is_err());
        assert_eq!(switch.epoch(), 0);
        switch.shutdown(dispatcher);
    }
}
