//! The sharded switch runtime: worker shards, control plane, lifecycle.
//!
//! A [`ShardedSwitch`] owns N worker threads, each draining a private SPSC
//! ring in 32-packet bursts through its datapath replica. The control plane
//! lives on whichever thread calls [`ShardedSwitch::flow_mod`]: the flow-mod
//! is applied to the canonical pipeline once, compiled once, and published as
//! an epoch-stamped [`CompiledState`] behind an atomic `Arc` swap. Workers
//! poll the epoch counter (one relaxed load) at every loop iteration and
//! swap in the published state at a burst boundary, so:
//!
//! * no worker ever blocks while the control plane recompiles,
//! * every packet is processed against exactly one epoch's state (a verdict
//!   can never mix pre- and post-update behaviour),
//! * a shard that is idle still converges to the newest epoch.
//!
//! Shutdown is drain-then-join: the dispatcher's staged packets are flushed,
//! the shutdown flag is raised, and each worker exits only once its ring is
//! observably empty — every dispatched packet is processed exactly once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};

use eswitch::compile::CompileError;
use netdev::{CounterSnapshot, Counters, SpscRing, BURST_SIZE};
use openflow::flow_mod::{apply_flow_mod, FlowModEffect, FlowModError};
use openflow::{FlowMod, Pipeline, Verdict};
use pkt::Packet;

use crate::backend::{BackendSpec, CompiledState};
use crate::rss::RssDispatcher;

/// Sharded runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of worker shards (clamped to at least 1).
    pub workers: usize,
    /// Per-shard ring capacity in packets (rounded up to a power of two).
    pub ring_capacity: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            workers: 2,
            ring_capacity: 1024,
        }
    }
}

/// Errors the control plane can return from a live flow-mod.
#[derive(Debug)]
pub enum ShardError {
    /// The flow-mod itself was invalid; nothing changed.
    FlowMod(FlowModError),
    /// The updated pipeline failed to compile; the canonical pipeline was
    /// rolled back and every shard keeps serving the previous epoch.
    Compile(CompileError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::FlowMod(e) => write!(f, "flow-mod rejected: {e:?}"),
            ShardError::Compile(e) => write!(f, "recompilation failed (rolled back): {e:?}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// An epoch-stamped published state.
struct Published {
    epoch: u64,
    state: CompiledState,
}

/// State shared between the control plane and every worker.
struct Control {
    spec: BackendSpec,
    /// The canonical pipeline; the single source of truth flow-mods mutate.
    pipeline: Mutex<Pipeline>,
    /// The latest compiled state. Workers clone the `Arc` out only when the
    /// epoch counter tells them it changed.
    published: RwLock<Arc<Published>>,
    /// Monotonic update counter; written *after* `published` (release) so a
    /// worker observing epoch N always reads state >= N.
    epoch: AtomicU64,
    shutdown: AtomicBool,
}

/// Per-shard runtime statistics, readable while the worker runs.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Packets and bytes this shard has processed.
    pub processed: Counters,
    /// The epoch this shard currently serves.
    pub epoch: AtomicU64,
}

/// Observer invoked by a worker for every verdict it produces, with the
/// shard index. Used by the update-consistency tests; `None` in production
/// and in the benchmarks.
pub type VerdictSink = Arc<dyn Fn(usize, &Verdict) + Send + Sync>;

/// Aggregate report returned by [`ShardedSwitch::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Packets handed to the dispatcher over the runtime's lifetime.
    pub dispatched: u64,
    /// Switch-wide totals (sum over shards).
    pub processed: CounterSnapshot,
    /// Per-shard totals, indexed by shard.
    pub per_shard: Vec<CounterSnapshot>,
    /// The control-plane epoch at shutdown.
    pub epoch: u64,
}

/// The sharded switch: N worker shards plus the flow-mod control plane.
pub struct ShardedSwitch {
    control: Arc<Control>,
    stats: Vec<Arc<ShardStats>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedSwitch {
    /// Compiles `pipeline`, spawns the worker shards, and returns the switch
    /// handle plus the single-producer dispatcher that feeds it.
    pub fn launch(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        Self::launch_with_sink(spec, pipeline, config, None)
    }

    /// [`ShardedSwitch::launch`] with a per-verdict observer (testing hook).
    pub fn launch_with_sink(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: ShardedConfig,
        sink: Option<VerdictSink>,
    ) -> Result<(Self, RssDispatcher), CompileError> {
        let workers_wanted = config.workers.max(1);
        let state = spec.compile_state(&pipeline)?;
        let published = Arc::new(Published { epoch: 0, state });
        let control = Arc::new(Control {
            spec,
            pipeline: Mutex::new(pipeline),
            published: RwLock::new(Arc::clone(&published)),
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });

        let mut rings = Vec::with_capacity(workers_wanted);
        let mut stats = Vec::with_capacity(workers_wanted);
        let mut workers = Vec::with_capacity(workers_wanted);
        for shard in 0..workers_wanted {
            let ring = Arc::new(SpscRing::new(config.ring_capacity));
            let shard_stats = Arc::new(ShardStats::default());
            let backend = control.spec.replica(&published.state);
            let worker = WorkerHandle {
                shard,
                control: Arc::clone(&control),
                ring: Arc::clone(&ring),
                stats: Arc::clone(&shard_stats),
                sink: sink.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shard-{shard}"))
                    .spawn(move || worker.run(backend))
                    .expect("spawn worker thread"),
            );
            rings.push(ring);
            stats.push(shard_stats);
        }

        Ok((
            ShardedSwitch {
                control,
                stats,
                workers,
            },
            RssDispatcher::new(rings),
        ))
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.stats.len()
    }

    /// Applies a flow-mod while traffic runs: the canonical pipeline is
    /// updated once, the new state compiled once on *this* thread, and the
    /// result broadcast to every shard as the next epoch. Workers swap it in
    /// at their next burst boundary without ever blocking. A compilation
    /// failure rolls the canonical pipeline back and leaves every shard
    /// serving the previous epoch.
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, ShardError> {
        // The pipeline lock is held across compile + publish so concurrent
        // flow-mods serialise and epochs stay monotonic with pipeline state.
        let mut pipeline = self.control.pipeline.lock();
        let saved = pipeline.clone();
        let effect = apply_flow_mod(&mut pipeline, fm).map_err(ShardError::FlowMod)?;
        let state = match self.control.spec.compile_state(&pipeline) {
            Ok(state) => state,
            Err(e) => {
                *pipeline = saved;
                return Err(ShardError::Compile(e));
            }
        };
        let epoch = self.control.epoch.load(Ordering::Relaxed) + 1;
        *self.control.published.write() = Arc::new(Published { epoch, state });
        self.control.epoch.store(epoch, Ordering::Release);
        Ok(effect)
    }

    /// Read access to the canonical pipeline.
    pub fn with_pipeline<R>(&self, f: impl FnOnce(&Pipeline) -> R) -> R {
        f(&self.control.pipeline.lock())
    }

    /// The control-plane epoch (number of published updates).
    pub fn epoch(&self) -> u64 {
        self.control.epoch.load(Ordering::Acquire)
    }

    /// The epoch each shard currently serves (trails [`ShardedSwitch::epoch`]
    /// until the shard's next burst boundary).
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.epoch.load(Ordering::Acquire))
            .collect()
    }

    /// Per-shard statistics handle (live; counters keep advancing).
    pub fn shard_stats(&self, shard: usize) -> &ShardStats {
        &self.stats[shard]
    }

    /// Switch-wide totals: the sum of every shard's counters at this instant.
    pub fn stats(&self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for s in &self.stats {
            let snap = s.processed.snapshot();
            total.packets += snap.packets;
            total.bytes += snap.bytes;
            total.drops += snap.drops;
        }
        total
    }

    /// Drains and stops the runtime: flushes the dispatcher's staged
    /// packets, raises the shutdown flag, waits for every shard to empty its
    /// ring, and joins the workers. Every dispatched packet is processed
    /// before this returns.
    pub fn shutdown(mut self, mut dispatcher: RssDispatcher) -> ShutdownReport {
        dispatcher.flush();
        self.control.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        let per_shard: Vec<CounterSnapshot> =
            self.stats.iter().map(|s| s.processed.snapshot()).collect();
        let mut processed = CounterSnapshot::default();
        for snap in &per_shard {
            processed.packets += snap.packets;
            processed.bytes += snap.bytes;
            processed.drops += snap.drops;
        }
        ShutdownReport {
            dispatched: dispatcher.dispatched(),
            processed,
            per_shard,
            epoch: self.control.epoch.load(Ordering::Acquire),
        }
    }
}

impl Drop for ShardedSwitch {
    /// Dropping the switch without [`ShardedSwitch::shutdown`] (a panicking
    /// test, an early return) must not leak spinning worker threads: raise
    /// the shutdown flag and join. Packets still staged in the (separately
    /// owned) dispatcher are lost in this path — orderly code goes through
    /// `shutdown`, which flushes first.
    fn drop(&mut self) {
        self.control.shutdown.store(true, Ordering::Release);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Everything one worker thread needs, bundled for the spawn.
struct WorkerHandle {
    shard: usize,
    control: Arc<Control>,
    ring: Arc<SpscRing<Packet>>,
    stats: Arc<ShardStats>,
    sink: Option<VerdictSink>,
}

impl WorkerHandle {
    fn run(self, mut backend: Box<dyn crate::backend::ShardBackend>) {
        let mut burst: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST_SIZE);
        let mut local_epoch = 0u64;
        let mut idle = 0u32;
        loop {
            // Epoch check: one relaxed load per iteration; the swap itself
            // happens only when the control plane actually published.
            let epoch = self.control.epoch.load(Ordering::Acquire);
            if epoch != local_epoch {
                let published = Arc::clone(&self.control.published.read());
                backend.apply(&published.state);
                local_epoch = published.epoch;
                self.stats.epoch.store(local_epoch, Ordering::Release);
            }

            burst.clear();
            let n = self.ring.pop_burst(&mut burst, BURST_SIZE);
            if n == 0 {
                // `shutdown` is raised only after the dispatcher's final
                // flush, so once it reads true an empty ring is final.
                if self.control.shutdown.load(Ordering::Acquire) && self.ring.is_empty() {
                    break;
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            idle = 0;

            // Ingress byte accounting: before processing, which may grow or
            // shrink frames (push-VLAN and friends).
            let bytes: u64 = burst.iter().map(|p| p.len() as u64).sum();
            backend.process_batch_into(&mut burst, &mut verdicts);
            self.stats.processed.record_batch(n as u64, bytes);
            if let Some(sink) = &self.sink {
                for verdict in &verdicts {
                    sink(self.shard, verdict);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry};
    use parking_lot::Mutex as PlMutex;
    use pkt::builder::PacketBuilder;

    fn port_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::UdpDst, 53),
            90,
            terminal_actions(vec![Action::Output(2)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn mixed_traffic(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| match i % 3 {
                0 => PacketBuilder::tcp()
                    .tcp_dst(80)
                    .tcp_src(1000 + (i % 512) as u16)
                    .build(),
                1 => PacketBuilder::udp()
                    .udp_dst(53)
                    .udp_src(1000 + (i % 512) as u16)
                    .build(),
                _ => PacketBuilder::tcp()
                    .tcp_dst(22)
                    .tcp_src(1000 + (i % 512) as u16)
                    .build(),
            })
            .collect()
    }

    #[test]
    fn drains_every_packet_before_join() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            let (switch, mut dispatcher) = ShardedSwitch::launch(
                spec,
                port_pipeline(),
                ShardedConfig {
                    workers: 2,
                    ring_capacity: 64,
                },
            )
            .unwrap();
            for packet in mixed_traffic(5_000) {
                dispatcher.dispatch(packet);
            }
            let report = switch.shutdown(dispatcher);
            assert_eq!(report.dispatched, 5_000, "{}", spec.label());
            assert_eq!(report.processed.packets, 5_000, "{}", spec.label());
            assert_eq!(
                report.per_shard.iter().map(|s| s.packets).sum::<u64>(),
                5_000
            );
            // RSS must actually use both shards on a mixed flow set.
            assert!(
                report.per_shard.iter().all(|s| s.packets > 0),
                "{}: some shard processed nothing: {:?}",
                spec.label(),
                report.per_shard
            );
        }
    }

    #[test]
    fn sharded_verdicts_match_reference_interpreter() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            // Collect (tcp_dst-class, decision) pairs through the sink; with
            // per-flow traffic the reference interpreter predicts them all.
            type Decisions = Arc<PlMutex<Vec<(Vec<u32>, bool, bool)>>>;
            let seen: Decisions = Arc::new(PlMutex::new(Vec::new()));
            let sink_seen = Arc::clone(&seen);
            let sink: VerdictSink = Arc::new(move |_shard, verdict: &Verdict| {
                sink_seen.lock().push(verdict.decision());
            });
            let (switch, mut dispatcher) = ShardedSwitch::launch_with_sink(
                spec,
                port_pipeline(),
                ShardedConfig {
                    workers: 3,
                    ring_capacity: 64,
                },
                Some(sink),
            )
            .unwrap();

            let reference = port_pipeline();
            let traffic = mixed_traffic(900);
            let mut expected = std::collections::HashMap::new();
            for packet in &traffic {
                let mut copy = packet.clone();
                let verdict = reference.process(&mut copy);
                *expected.entry(verdict.decision()).or_insert(0u64) += 1;
            }
            for packet in traffic {
                dispatcher.dispatch(packet);
            }
            let report = switch.shutdown(dispatcher);
            assert_eq!(report.processed.packets, 900);

            let mut observed = std::collections::HashMap::new();
            for decision in seen.lock().iter() {
                *observed.entry(decision.clone()).or_insert(0u64) += 1;
            }
            assert_eq!(observed, expected, "{}", spec.label());
        }
    }

    #[test]
    fn flow_mod_reaches_idle_shards() {
        // Even with no traffic flowing, every shard converges to the newest
        // epoch (the epoch poll is part of the idle loop, not the RX path).
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(),
            ShardedConfig {
                workers: 2,
                ring_capacity: 64,
            },
        )
        .unwrap();
        switch
            .flow_mod(&FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 8080),
                95,
                terminal_actions(vec![Action::Output(4)]),
            ))
            .unwrap();
        assert_eq!(switch.epoch(), 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while switch.shard_epochs().iter().any(|e| *e != 1) {
            assert!(
                std::time::Instant::now() < deadline,
                "shards never converged: {:?}",
                switch.shard_epochs()
            );
            std::thread::yield_now();
        }
        let report = switch.shutdown(dispatcher);
        assert_eq!(report.epoch, 1);
    }

    #[test]
    fn rejected_flow_mod_rolls_back() {
        let (switch, dispatcher) = ShardedSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(),
            ShardedConfig {
                workers: 1,
                ring_capacity: 64,
            },
        )
        .unwrap();
        // Strict-deleting from a table that does not exist is a
        // FlowModError; the epoch must not advance.
        let bogus = FlowMod::delete_strict(40, FlowMatch::any().with_exact(Field::TcpDst, 80), 100);
        assert!(switch.flow_mod(&bogus).is_err());
        assert_eq!(switch.epoch(), 0);
        switch.shutdown(dispatcher);
    }
}
