//! # shard — sharded multi-worker switch runtime with a live control plane
//!
//! The paper's Fig. 19 runs the switch on 1–5 packet-processing cores and
//! shows both architectures scaling linearly; its §3.4 update machinery only
//! matters when flow-mods race live traffic. This crate is the runtime that
//! makes both real, mirroring the deployment shape of OVS's per-PMD-thread
//! datapath (and of a DPDK ESWITCH instance):
//!
//! * **RSS dispatch** ([`rss`]) — each packet's flow tuple is hashed with the
//!   extraction-time miniflow hash and the hash picks a worker shard, so one
//!   flow always lands on one shard (per-shard caches stay warm, no
//!   cross-shard flow state). Packets travel over per-shard
//!   [`netdev::SpscRing`]s, published burst-at-a-time.
//! * **Worker shards** ([`backend`], [`runtime`]) — each shard owns a
//!   datapath replica behind the [`ShardBackend`] trait: the compiled ESWITCH
//!   datapath (shared read-only, as compiled code is) or an OVS replica with
//!   *private* microflow/megaflow caches, exactly like OVS PMD threads. A
//!   shard drains its ring in 32-packet bursts through the zero-allocation
//!   `process_batch_into` fast path.
//! * **Control plane** ([`runtime::ShardedSwitch::flow_mod`]) — flow-mods are
//!   applied to the canonical [`openflow::Pipeline`] once, compiled once on
//!   the control thread, and broadcast as an epoch-stamped state via atomic
//!   `Arc` swap. Workers pick the new epoch up at their next burst boundary:
//!   no worker ever blocks on recompilation, every packet is processed
//!   against exactly one epoch's state, and a failed compilation rolls the
//!   canonical pipeline back, leaving every shard on the old epoch.
//! * **Stats & shutdown** — per-shard [`netdev::Counters`] aggregate into
//!   switch-wide totals; shutdown flushes the dispatcher, lets every shard
//!   drain its ring, and only then joins the workers, so no packet is lost.

pub mod backend;
pub mod rss;
pub mod runtime;

pub use backend::{BackendSpec, CompiledState, ShardBackend};
pub use rss::{rss_hash, shard_of, RssDispatcher};
pub use runtime::{
    ShardError, ShardStats, ShardedConfig, ShardedSwitch, ShutdownReport, VerdictSink,
};
