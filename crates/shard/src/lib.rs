//! # shard — sharded multi-worker switch runtime with a live control plane
//!
//! The paper's Fig. 19 runs the switch on 1–5 packet-processing cores and
//! shows both architectures scaling linearly; its §3.4 update machinery only
//! matters when flow-mods race live traffic. This crate is the runtime that
//! makes both real, mirroring the deployment shape of OVS's per-PMD-thread
//! datapath (and of a DPDK ESWITCH instance):
//!
//! * **RSS dispatch** ([`rss`], [`remap`]) — each packet's flow tuple is
//!   hashed with the extraction-time miniflow hash and the hash steers
//!   through a NIC-style 256-entry *indirection table*
//!   ([`remap::RemapTable`]) whose entries name worker shards, so one flow
//!   always lands on one shard (per-shard caches stay warm, no cross-shard
//!   flow state) and the hash rides the packet for downstream reuse.
//!   Packets travel over per-shard [`netdev::SpscRing`]s, published
//!   burst-at-a-time.
//! * **Elastic scheduling** ([`telemetry`], [`remap`],
//!   [`rss::RssDispatcher::remap_bucket`]) — workers flush batched load
//!   telemetry (busy time, pps, ring high-water); on sustained imbalance the
//!   dispatcher's rebalancer re-homes the hottest flow buckets away from the
//!   overloaded shard through a quiesce/export/import handshake that drains
//!   the old owner, migrates the bucket's conntrack and NAT state,
//!   invalidates the old replica's cached entries for exactly the moved
//!   flows, and publishes the new table epoch — no reordering within any
//!   flow, no lost connection state, no locks on the dispatch path.
//! * **Worker shards** ([`backend`], [`runtime`]) — each shard owns a
//!   datapath replica behind the [`ShardBackend`] trait: the compiled ESWITCH
//!   datapath (shared read-only, as compiled code is) or an OVS replica with
//!   *private* microflow/megaflow caches, exactly like OVS PMD threads. A
//!   shard drains its ring in 32-packet bursts through the zero-allocation
//!   `process_batch_into` fast path.
//! * **Control plane** ([`runtime::ShardedSwitch::flow_mod`]) — flow-mods are
//!   applied to the canonical [`openflow::Pipeline`] once, classified by the
//!   shared §3.4 update planner ([`eswitch::update`]) on the control thread,
//!   and broadcast as an epoch-stamped state via atomic `Arc` swap. An
//!   incremental edit publishes in O(1) through the touched table's
//!   trampoline; a per-table rebuild publishes a datapath that structurally
//!   shares every untouched table; only structural changes recompile the
//!   whole state. OVS epochs carry the changed rules' matches when provably
//!   selective-safe, so replicas flush only overlapping megaflows and keep
//!   disjoint EMC entries. Workers pick the new epoch up at their next burst
//!   boundary: no worker ever blocks on recompilation, and a failed
//!   compilation replays the flow-mod's undo log, leaving every shard on the
//!   old epoch.
//! * **Reactive slow path** ([`controller`]) — worker shards run punted
//!   packets through a layered admission pipeline (per-flow
//!   [`eswitch::reactive::PuntGate`], per-source and aggregate token
//!   buckets — [`eswitch::reactive::PuntAdmission`]) and enqueue the
//!   admitted punt copies (ingress frame + key + shard + epoch) onto a
//!   matrix of SPSC punt rings; N controller workers, partitioned by flow
//!   signature ([`controller::partition_of`]), each drain their own slice
//!   into the shared [`openflow::Controller`] application and route the
//!   answers back: flow-mods publish through the §3.4 planner as
//!   incremental epochs, `OFPP_TABLE` packet-outs re-inject through each
//!   worker's private RSS dispatcher so the triggering packet takes the
//!   fresh rule on the fast path. A full punt ring or an over-rate source
//!   sheds the punt *copy* (counted by reason — that packet is not
//!   duplicated up, like a real switch's bounded upcall queue, but its
//!   verdict stands) — workers never block on the controller.
//! * **Stats & shutdown** — per-shard [`netdev::Counters`] aggregate into
//!   switch-wide totals; shutdown flushes the dispatcher, lets every shard
//!   drain its ring, runs the punt flow to a provable fixpoint (every punt
//!   answered, every re-injection processed), and only then joins the
//!   controller thread and the workers, so no packet — and no punt — is
//!   lost or double-counted.

pub mod backend;
pub mod controller;
pub mod epoch;
pub mod multiport;
pub mod remap;
pub mod rss;
pub mod runtime;
pub mod telemetry;

pub use backend::{BackendSpec, CompiledState, ShardBackend};
pub use controller::{
    partition_of, ControllerWorkerSnapshot, Punt, ReactiveSnapshot, ReactiveStats,
};
pub use multiport::{MultiPortConfig, MultiPortReport, MultiPortSwitch};
// The admission-policy types callers need to configure a hardened launch.
pub use conntrack::{CtConfig, CtSnapshot, CtTimeouts, EvictionPolicy, LbGroup};
pub use epoch::EpochSlot;
pub use eswitch::reactive::{PuntPolicy, RateLimit};
pub use remap::{RebalanceConfig, RemapShared, RemapTable};
pub use rss::{rss_hash, rss_hash_symmetric, shard_of, RssDispatcher};
pub use runtime::{
    ShardError, ShardStats, ShardedConfig, ShardedSwitch, ShutdownReport, UpdateClassCounts,
    UpdateClassStats, UpdateStrategy, VerdictSink,
};
pub use telemetry::{LoadSnapshot, ShardLoad};
