//! RSS-style dispatch: hash a packet's flow tuple onto a worker shard.
//!
//! A NIC with receive-side scaling hashes each packet's 5-tuple in hardware
//! and steers it to a per-core RX queue; the host CPU never pays for the
//! hash. This module is that stage in software: [`rss_hash`] reuses the
//! extraction-time miniflow grouping hash (the same multiply-rotate mix the
//! cache hot paths key on), [`shard_of`] maps it onto a shard index, and
//! [`RssDispatcher`] stages packets per shard and publishes them to the
//! worker rings burst-at-a-time via [`netdev::SpscRing::push_burst`] — one
//! tail release per burst, not one per packet.
//!
//! Hashing the flow tuple (not round-robin) is what keeps one flow on one
//! shard: per-shard EMC/megaflow caches stay warm and no flow ever needs
//! cross-shard state. Harnesses that replay a fixed flow set can precompute
//! each prototype's shard once ([`RssDispatcher::shard_for`]) and use
//! [`RssDispatcher::dispatch_to`], mirroring the hardware split where the
//! hash costs the host nothing.

use std::sync::Arc;

use netdev::{fx_mix, SpscRing, BURST_SIZE};
use openflow::ct::CtTuple;
use openflow::FlowKey;
use ovsdp::MiniKey;
use pkt::parser::{parse, ParseDepth};
use pkt::Packet;

/// The RSS hash of a packet: the extraction-time miniflow grouping hash over
/// the packet's flow tuple.
pub fn rss_hash(packet: &Packet) -> u64 {
    let headers = parse(packet.data(), ParseDepth::L4);
    let key = FlowKey::from_parsed(packet, &headers);
    MiniKey::group_hash(&key)
}

/// Direction-insensitive RSS: both directions of one connection hash to the
/// same value, so a stateful (conntrack) pipeline sees a flow's requests
/// *and* replies on the same shard — the property that lets connection
/// state stay strictly shard-local with no cross-shard locks. Mirrors NIC
/// symmetric-RSS configurations (e.g. the symmetric Toeplitz key): the
/// endpoints are ordered canonically before mixing, so `A→B` and `B→A`
/// collapse to one input. Non-IP or non-TCP/UDP frames (which conntrack
/// ignores) fall back to the ordinary [`rss_hash`].
pub fn rss_hash_symmetric(packet: &Packet) -> u64 {
    let headers = parse(packet.data(), ParseDepth::L4);
    match CtTuple::from_frame(packet.data(), &headers) {
        Some(t) => {
            let a = (u64::from(t.src_ip) << 16) | u64::from(t.src_port);
            let b = (u64::from(t.dst_ip) << 16) | u64::from(t.dst_port);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            fx_mix(fx_mix(fx_mix(0, lo), hi), u64::from(t.proto))
        }
        None => rss_hash(packet),
    }
}

/// Maps an RSS hash onto one of `shards` indices. Multiply-shift on the high
/// bits instead of a modulo: the grouping hash mixes its entropy into the
/// high word, and the reduction stays bias-free for any shard count.
pub fn shard_of(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((u128::from(hash) * shards as u128) >> 64) as usize
}

/// The single producer feeding every worker ring.
///
/// Owns the producer side of each shard's SPSC ring plus a per-shard staging
/// buffer. Packets accumulate in the staging buffer until a full burst is
/// ready, then the burst is published with one tail release. Delivery is
/// lossless: when a ring is full the dispatcher spins briefly, then yields
/// until the worker drains it (backpressure, not drops).
pub struct RssDispatcher {
    rings: Vec<Arc<SpscRing<Packet>>>,
    staged: Vec<Vec<Packet>>,
    dispatched: u64,
    symmetric: bool,
}

impl RssDispatcher {
    pub(crate) fn new(rings: Vec<Arc<SpscRing<Packet>>>) -> Self {
        let staged = rings
            .iter()
            .map(|_| Vec::with_capacity(BURST_SIZE))
            .collect();
        RssDispatcher {
            rings,
            staged,
            dispatched: 0,
            symmetric: false,
        }
    }

    /// Switches this dispatcher to [`rss_hash_symmetric`] steering. The
    /// sharded launch enables it whenever the pipeline contains a conntrack
    /// action, so both directions of every connection land on one shard.
    pub(crate) fn with_symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Whether this dispatcher steers with the direction-insensitive hash.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Number of worker shards this dispatcher feeds.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Packets handed to `dispatch`/`dispatch_to` so far (staged or
    /// published).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// The shard `packet` steers to under this dispatcher's shard count.
    pub fn shard_for(&self, packet: &Packet) -> usize {
        let hash = if self.symmetric {
            rss_hash_symmetric(packet)
        } else {
            rss_hash(packet)
        };
        shard_of(hash, self.rings.len())
    }

    /// Hashes `packet`'s flow tuple and stages it for its shard, publishing
    /// the shard's staging buffer when it reaches a full burst.
    pub fn dispatch(&mut self, packet: Packet) {
        let shard = self.shard_for(&packet);
        self.dispatch_to(shard, packet);
    }

    /// Stages `packet` for an explicitly chosen shard — the precomputed-RSS
    /// path for harnesses replaying a fixed flow set (hardware RSS computes
    /// the hash off the host CPU; precomputing it per prototype is the
    /// software equivalent).
    pub fn dispatch_to(&mut self, shard: usize, packet: Packet) {
        self.dispatched += 1;
        self.staged[shard].push(packet);
        if self.staged[shard].len() >= BURST_SIZE {
            Self::publish(&self.rings[shard], &mut self.staged[shard]);
        }
    }

    /// Publishes every staged packet to its ring, blocking (spin, then
    /// yield) on full rings until the workers drain them.
    pub fn flush(&mut self) {
        for shard in 0..self.rings.len() {
            Self::publish(&self.rings[shard], &mut self.staged[shard]);
        }
    }

    fn publish(ring: &Arc<SpscRing<Packet>>, staged: &mut Vec<Packet>) {
        let mut idle = 0u32;
        while !staged.is_empty() {
            if ring.push_burst(staged) == 0 {
                // Ring full: the worker on the other side needs CPU time —
                // on an undersubscribed host, yielding beats spinning. If
                // the worker is *gone* (panicked, or the switch was dropped
                // without `shutdown`), nothing will ever drain the ring:
                // only this dispatcher still holds the ring, so fail loudly
                // instead of hanging the producer thread forever.
                if idle > 64 && Arc::strong_count(ring) == 1 {
                    panic!("shard worker is gone; dispatching would hang");
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            } else {
                idle = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn tcp(src: u16) -> Packet {
        PacketBuilder::tcp().tcp_dst(80).tcp_src(src).build()
    }

    #[test]
    fn same_flow_same_shard() {
        for shards in [1usize, 2, 3, 4, 7] {
            for src in 0..64u16 {
                let a = shard_of(rss_hash(&tcp(src)), shards);
                let b = shard_of(rss_hash(&tcp(src)), shards);
                assert_eq!(a, b, "flow affinity must be deterministic");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn symmetric_hash_is_direction_insensitive() {
        for src in 0..256u16 {
            let forward = PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 1])
                .ipv4_dst([10, 0, 0, 2])
                .tcp_src(src)
                .tcp_dst(80)
                .build();
            let reply = PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 2])
                .ipv4_dst([10, 0, 0, 1])
                .tcp_src(80)
                .tcp_dst(src)
                .build();
            assert_eq!(
                rss_hash_symmetric(&forward),
                rss_hash_symmetric(&reply),
                "src={src}"
            );
        }
        // Distinct connections still spread.
        let mut counts = [0usize; 4];
        for src in 0..1024u16 {
            let p = PacketBuilder::tcp().tcp_src(src).tcp_dst(80).build();
            counts[shard_of(rss_hash_symmetric(&p), 4)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (128..=512).contains(count),
                "shard {shard} got {count} of 1024 flows"
            );
        }
    }

    #[test]
    fn flows_spread_over_shards() {
        let shards = 4usize;
        let mut counts = vec![0usize; shards];
        for src in 0..1024u16 {
            counts[shard_of(rss_hash(&tcp(src)), shards)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            // A uniform spread is 256 per shard; require each within 2x.
            assert!(
                (128..=512).contains(count),
                "shard {shard} got {count} of 1024 flows"
            );
        }
    }

    #[test]
    fn dispatcher_stages_bursts_and_flushes_remainder() {
        let rings: Vec<_> = (0..2).map(|_| Arc::new(SpscRing::new(256))).collect();
        let mut dispatcher = RssDispatcher::new(rings.clone());
        // Force-steer to shard 0: below a burst nothing is published.
        for i in 0..(BURST_SIZE - 1) {
            dispatcher.dispatch_to(0, tcp(i as u16));
        }
        assert_eq!(rings[0].len(), 0);
        dispatcher.dispatch_to(0, tcp(999));
        assert_eq!(rings[0].len(), BURST_SIZE, "full burst publishes");
        // A partial stage is only published by flush.
        dispatcher.dispatch_to(1, tcp(7));
        assert_eq!(rings[1].len(), 0);
        dispatcher.flush();
        assert_eq!(rings[1].len(), 1);
        assert_eq!(dispatcher.dispatched(), BURST_SIZE as u64 + 1);
    }
}
