//! RSS-style dispatch: hash a packet's flow tuple through the indirection
//! table onto a worker shard.
//!
//! A NIC with receive-side scaling hashes each packet's 5-tuple in hardware
//! and steers it through a small indirection table (Intel's RETA) to a
//! per-core RX queue; the host CPU never pays for the hash, and the host
//! can re-spread load by rewriting table entries. This module is that stage
//! in software: [`rss_hash`] reuses the extraction-time miniflow grouping
//! hash (the same multiply-rotate mix the cache hot paths key on), the
//! hash indexes a [`crate::remap::RemapTable`] bucket whose entry names the
//! shard, and [`RssDispatcher`] stages packets per shard and publishes them
//! to the worker rings burst-at-a-time via [`netdev::SpscRing::push_burst`]
//! — one tail release per burst, not one per packet.
//!
//! The computed hash is not discarded: the dispatcher stamps it onto the
//! packet ([`pkt::Packet::set_rss_hash`]) so downstream stages that need a
//! flow-grouping hash (the OVS burst path's phase-1 grouping) reuse it
//! instead of re-deriving one from a second parse — the software analogue
//! of a NIC delivering its RSS hash in the RX descriptor.
//!
//! Hashing the flow tuple (not round-robin) is what keeps one flow on one
//! shard: per-shard EMC/megaflow caches stay warm and no flow ever needs
//! cross-shard state. A *bucket remap* moves that ownership deliberately:
//! [`RssDispatcher::remap_bucket`] runs the quiesce handshake — flush and
//! drain the old owner, export the bucket's connection state, publish the
//! new table, import on the new owner — so a flow's packets are never in
//! flight to two shards at once (no reordering) and its conntrack/NAT state
//! arrives before its first packet does. Harnesses that replay a fixed flow
//! set can precompute each prototype's hash once and use
//! [`RssDispatcher::dispatch_hashed`], mirroring the hardware split where
//! the hash costs the host nothing.

use std::sync::Arc;

use conntrack::{bucket_of, FLOW_BUCKETS};
use netdev::{SpscRing, BURST_SIZE};
use openflow::ct::CtTuple;
use openflow::FlowKey;
use ovsdp::MiniKey;
use pkt::parser::{parse, ParseDepth};
use pkt::Packet;

use crate::remap::{BucketAck, RebalanceConfig, Rebalancer, RemapShared, RemapTable, ShardCmd};
use crate::runtime::ShardStats;
use crate::telemetry::ShardLoad;

/// The RSS hash of a packet: the extraction-time miniflow grouping hash over
/// the packet's flow tuple.
pub fn rss_hash(packet: &Packet) -> u64 {
    let headers = parse(packet.data(), ParseDepth::L4);
    let key = FlowKey::from_parsed(packet, &headers);
    MiniKey::group_hash(&key)
}

/// Direction-insensitive RSS: both directions of one connection hash to the
/// same value, so a stateful (conntrack) pipeline sees a flow's requests
/// *and* replies on the same shard — the property that lets connection
/// state stay strictly shard-local with no cross-shard locks. Mirrors NIC
/// symmetric-RSS configurations (e.g. the symmetric Toeplitz key). The mix
/// itself is [`conntrack::symmetric_tuple_hash`] — the *same* function that
/// defines the flow-bucket migration unit, so a connection's dispatch
/// bucket and its conntrack bucket agree by construction and a bucket
/// export moves exactly the connections the table steers. Non-IP or
/// non-TCP/UDP frames (which conntrack ignores) fall back to the ordinary
/// [`rss_hash`].
pub fn rss_hash_symmetric(packet: &Packet) -> u64 {
    let headers = parse(packet.data(), ParseDepth::L4);
    match CtTuple::from_frame(packet.data(), &headers) {
        Some(t) => conntrack::symmetric_tuple_hash(&t),
        None => rss_hash(packet),
    }
}

/// Maps an RSS hash directly onto one of `shards` indices. Multiply-shift
/// on the high bits instead of a modulo: the grouping hash mixes its
/// entropy into the high word, and the reduction stays bias-free for any
/// shard count. The *dispatcher* steers through the indirection table
/// instead; this direct reduction remains for hash-partitioning jobs with
/// no table (controller-worker partitioning, tests).
pub fn shard_of(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((u128::from(hash) * shards as u128) >> 64) as usize
}

/// The elastic-scheduling side of a launched main dispatcher: the shared
/// table slot it publishes remaps through, the per-shard command/ack rings
/// the quiesce handshake rides on, the per-shard stats (the quiesce
/// progress signal) and load telemetry (the rebalance trigger), and the
/// optional rebalancer.
pub(crate) struct Elastic {
    pub(crate) shared: Arc<RemapShared>,
    pub(crate) cmd: Vec<Arc<SpscRing<ShardCmd>>>,
    pub(crate) ack: Vec<Arc<SpscRing<BucketAck>>>,
    pub(crate) stats: Vec<Arc<ShardStats>>,
    pub(crate) loads: Vec<Arc<ShardLoad>>,
    pub(crate) rebalancer: Option<Rebalancer>,
    pub(crate) remaps: u64,
}

/// The single producer feeding every worker ring.
///
/// Owns the producer side of each shard's SPSC ring plus a per-shard staging
/// buffer. Packets accumulate in the staging buffer until a full burst is
/// ready, then the burst is published with one tail release. Delivery is
/// lossless: when a ring is full the dispatcher spins briefly, then yields
/// until the worker drains it (backpressure, not drops).
pub struct RssDispatcher {
    rings: Vec<Arc<SpscRing<Packet>>>,
    staged: Vec<Vec<Packet>>,
    dispatched: u64,
    /// Packets handed to each shard (staged or published) — the quiesce
    /// handshake's per-shard progress target.
    dispatched_to: Vec<u64>,
    symmetric: bool,
    /// The current indirection table (bucket → owning shard).
    table: Arc<RemapTable>,
    table_epoch: u64,
    /// Reader role: refresh `table` from this slot when its epoch advances
    /// (the controller workers' re-inject dispatchers).
    reader: Option<Arc<RemapShared>>,
    /// Writer role: the elastic machinery of a launched main dispatcher.
    elastic: Option<Elastic>,
    /// Per-bucket packets dispatched in the current observation window.
    bucket_counts: Vec<u64>,
    /// Packets since the last rebalance check.
    since_check: u64,
}

impl RssDispatcher {
    pub(crate) fn new(rings: Vec<Arc<SpscRing<Packet>>>) -> Self {
        let staged = rings
            .iter()
            .map(|_| Vec::with_capacity(BURST_SIZE))
            .collect();
        let shards = rings.len();
        RssDispatcher {
            rings,
            staged,
            dispatched: 0,
            dispatched_to: vec![0; shards],
            symmetric: false,
            table: Arc::new(RemapTable::uniform(shards)),
            table_epoch: 0,
            reader: None,
            elastic: None,
            bucket_counts: vec![0; FLOW_BUCKETS],
            since_check: 0,
        }
    }

    /// Switches this dispatcher to [`rss_hash_symmetric`] steering. The
    /// sharded launch enables it whenever the pipeline contains a conntrack
    /// action, so both directions of every connection land on one shard.
    pub(crate) fn with_symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Reader role: follow `shared`'s table publications (re-inject
    /// dispatchers). The epoch is polled at dispatch and flush boundaries —
    /// one `Acquire` load; the table itself is only reloaded on a change.
    pub(crate) fn with_reader(mut self, shared: Arc<RemapShared>) -> Self {
        self.table = shared.load();
        self.table_epoch = shared.epoch();
        self.reader = Some(shared);
        self
    }

    /// Writer role: arm the elastic machinery (the launched main
    /// dispatcher). `rebalance` enables the automatic rebalancer;
    /// [`RssDispatcher::remap_bucket`] works either way.
    pub(crate) fn with_elastic(
        mut self,
        shared: Arc<RemapShared>,
        cmd: Vec<Arc<SpscRing<ShardCmd>>>,
        ack: Vec<Arc<SpscRing<BucketAck>>>,
        stats: Vec<Arc<ShardStats>>,
        loads: Vec<Arc<ShardLoad>>,
        rebalance: Option<RebalanceConfig>,
    ) -> Self {
        self.table = shared.load();
        self.table_epoch = shared.epoch();
        let shards = self.rings.len();
        self.elastic = Some(Elastic {
            shared,
            cmd,
            ack,
            stats,
            loads,
            rebalancer: rebalance.map(|config| Rebalancer::new(config, shards)),
            remaps: 0,
        });
        self
    }

    /// Whether this dispatcher steers with the direction-insensitive hash.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Number of worker shards this dispatcher feeds.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Packets handed to `dispatch`/`dispatch_to` so far (staged or
    /// published).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Bucket remaps executed so far (manual and rebalancer-driven).
    pub fn remaps(&self) -> u64 {
        self.elastic.as_ref().map_or(0, |e| e.remaps)
    }

    /// The current indirection-table epoch this dispatcher steers by.
    pub fn table_epoch(&self) -> u64 {
        self.table_epoch
    }

    /// The indirection table currently steering dispatch.
    pub fn table(&self) -> &RemapTable {
        &self.table
    }

    /// The shard `packet` steers to under the current indirection table.
    pub fn shard_for(&self, packet: &Packet) -> usize {
        let hash = if self.symmetric {
            rss_hash_symmetric(packet)
        } else {
            rss_hash(packet)
        };
        self.table.shard_of_hash(hash)
    }

    /// Hashes `packet`'s flow tuple and stages it for its shard, publishing
    /// the shard's staging buffer when it reaches a full burst.
    pub fn dispatch(&mut self, packet: Packet) {
        let hash = if self.symmetric {
            rss_hash_symmetric(&packet)
        } else {
            rss_hash(&packet)
        };
        self.dispatch_hashed(hash, packet);
    }

    /// Dispatches with a precomputed RSS hash — the replay path for
    /// harnesses with a fixed flow set (hardware RSS computes the hash off
    /// the host CPU; precomputing it per prototype is the software
    /// equivalent). The hash is stamped on the packet and the indirection
    /// table picks the shard, so replayed traffic follows live remaps.
    pub fn dispatch_hashed(&mut self, hash: u64, mut packet: Packet) {
        packet.set_rss_hash(hash);
        self.refresh_table();
        let bucket = bucket_of(hash);
        self.bucket_counts[bucket] += 1;
        let shard = self.table.owner(bucket);
        self.dispatch_to(shard, packet);
        self.maybe_rebalance();
    }

    /// Dispatches to an explicitly chosen shard while still stamping the
    /// packet's RSS hash — the classifier-steered path. A
    /// [`netdev::classify::ClassifyAction::Steer`] decision overrides the
    /// indirection table for shard *placement*, but downstream consumers
    /// (per-flow telemetry, differential harnesses keyed by hash) still need
    /// the flow hash on the packet, so it is computed and stamped exactly as
    /// [`RssDispatcher::dispatch`] would.
    pub fn dispatch_steered(&mut self, shard: usize, mut packet: Packet) {
        let hash = if self.symmetric {
            rss_hash_symmetric(&packet)
        } else {
            rss_hash(&packet)
        };
        packet.set_rss_hash(hash);
        self.refresh_table();
        self.dispatch_to(shard, packet);
    }

    /// Stages `packet` for an explicitly chosen shard, bypassing the hash
    /// and the indirection table entirely (fixed-placement harnesses).
    pub fn dispatch_to(&mut self, shard: usize, packet: Packet) {
        self.dispatched += 1;
        self.dispatched_to[shard] += 1;
        self.staged[shard].push(packet);
        if self.staged[shard].len() >= BURST_SIZE {
            Self::publish(&self.rings[shard], &mut self.staged[shard]);
        }
    }

    /// Publishes every staged packet to its ring, blocking (spin, then
    /// yield) on full rings until the workers drain them.
    pub fn flush(&mut self) {
        self.refresh_table();
        for shard in 0..self.rings.len() {
            Self::publish(&self.rings[shard], &mut self.staged[shard]);
        }
    }

    /// Moves flow bucket `bucket` to shard `to`, running the full quiesce
    /// handshake so the move is invisible to every flow it carries:
    ///
    /// 1. **Flush + quiesce the old owner** — its staged packets are
    ///    published and the dispatcher waits until the shard's processed
    ///    counter reaches everything dispatched to it. The counter is
    ///    advanced `Release` *after* the worker's sink calls and punt
    ///    enqueues, so reaching the target proves every pre-move packet is
    ///    fully observed — no packet of the bucket is left in the ring or
    ///    mid-burst (in-flow ordering across the move).
    /// 2. **Export** — the old owner, strictly between bursts, drains the
    ///    bucket's connections and NAT allocators out of its engine,
    ///    invalidates its backend's cached entries for the moved flows
    ///    (EMC/megaflow on OVS), and acks with the state.
    /// 3. **Publish** — the new table (differing in exactly this bucket)
    ///    is published through the shared epoch slot; this dispatcher and
    ///    every reader now steer the bucket to `to`.
    /// 4. **Import** — the state lands in the new owner's engine, and the
    ///    dispatcher waits for the ack *before dispatching anything more*,
    ///    so the bucket's first post-move packet finds its connections (and
    ///    its NAT allocator's exact continuation) already resident.
    ///
    /// Established flows keep their verdicts and translations across the
    /// move; only the moved bucket changes owner.
    pub fn remap_bucket(&mut self, bucket: usize, to: usize) {
        assert!(bucket < FLOW_BUCKETS, "bucket out of range");
        assert!(to < self.rings.len(), "target shard out of range");
        assert!(
            self.elastic.is_some(),
            "remap_bucket on a dispatcher without the elastic machinery"
        );
        let from = self.table.owner(bucket);
        if from == to {
            return;
        }
        // 1. Quiesce the old owner.
        Self::publish(&self.rings[from], &mut self.staged[from]);
        self.wait_processed(from);
        // 2. Export the bucket's state.
        let state = {
            let elastic = self.elastic.as_ref().expect("asserted above");
            Self::command(&elastic.cmd[from], ShardCmd::Export { bucket });
            let ack = Self::await_ack(&elastic.ack[from]);
            debug_assert_eq!(ack.bucket, bucket);
            ack.state.expect("export ack carries the bucket state")
        };
        // 3. Publish the remap.
        let next = Arc::new(self.table.with_owner(bucket, to));
        self.table_epoch += 1;
        self.table = Arc::clone(&next);
        let elastic = self.elastic.as_mut().expect("asserted above");
        elastic.shared.publish(self.table_epoch, next);
        // 4. Import on the new owner; only after its ack may the bucket's
        //    packets flow again (this method returns, dispatch resumes).
        Self::command(&elastic.cmd[to], ShardCmd::Import { state });
        let ack = Self::await_ack(&elastic.ack[to]);
        debug_assert_eq!(ack.bucket, bucket);
        elastic.remaps += 1;
    }

    /// Reader-role staleness check: one `Acquire` load; reload the table
    /// only when the epoch moved.
    fn refresh_table(&mut self) {
        if let Some(shared) = &self.reader {
            let epoch = shared.epoch();
            if epoch != self.table_epoch {
                self.table = shared.load();
                self.table_epoch = epoch;
            }
        }
    }

    /// Closes an observation window every `check_packets` dispatches:
    /// reads the busy-time telemetry, lets the rebalancer plan, and
    /// executes the plan's moves.
    fn maybe_rebalance(&mut self) {
        self.since_check += 1;
        let Some(elastic) = &mut self.elastic else {
            return;
        };
        let Some(rebalancer) = &mut elastic.rebalancer else {
            return;
        };
        if self.since_check < rebalancer.config.check_packets {
            return;
        }
        self.since_check = 0;
        let mut busy = Vec::with_capacity(elastic.loads.len());
        for load in &elastic.loads {
            busy.push(load.busy_nanos());
        }
        let moves = rebalancer.plan(&self.table, &busy, &self.bucket_counts);
        for count in self.bucket_counts.iter_mut() {
            *count = 0;
        }
        for (bucket, to) in moves {
            self.remap_bucket(bucket, to);
        }
    }

    /// Blocks until `shard`'s processed counter covers everything this
    /// dispatcher handed it. `Counters::record_batch` is `Release` and the
    /// read here `Acquire`, so covering the count implies observing every
    /// side effect (sink calls, punt enqueues) of every covered packet.
    fn wait_processed(&self, shard: usize) {
        let elastic = self.elastic.as_ref().expect("elastic dispatcher");
        let target = self.dispatched_to[shard];
        let mut idle = 0u32;
        while elastic.stats[shard].processed.packets() < target {
            // Mirror `publish`'s escape hatch: if the worker is gone, the
            // counter will never advance — fail loudly instead of hanging.
            if idle > 64 && Arc::strong_count(&self.rings[shard]) == 1 {
                panic!("shard worker is gone; quiescing would hang");
            }
            idle += 1;
            if idle < 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Pushes one command onto a shard's command ring. The handshake keeps
    /// at most one command in flight per shard, and the ring holds more, so
    /// a full ring means the worker died mid-handshake.
    fn command(ring: &Arc<SpscRing<ShardCmd>>, cmd: ShardCmd) {
        let mut slot = Some(cmd);
        let mut idle = 0u32;
        while let Err(returned) = ring.push(slot.take().expect("command present")) {
            slot = Some(returned);
            if idle > 64 && Arc::strong_count(ring) == 1 {
                panic!("shard worker is gone; command ring will never drain");
            }
            idle += 1;
            std::thread::yield_now();
        }
    }

    /// Waits for a worker's command ack.
    fn await_ack(ring: &Arc<SpscRing<BucketAck>>) -> BucketAck {
        let mut idle = 0u32;
        loop {
            if let Some(ack) = ring.pop() {
                return ack;
            }
            if idle > 64 && Arc::strong_count(ring) == 1 {
                panic!("shard worker is gone; ack will never arrive");
            }
            idle += 1;
            if idle < 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn publish(ring: &Arc<SpscRing<Packet>>, staged: &mut Vec<Packet>) {
        let mut idle = 0u32;
        while !staged.is_empty() {
            if ring.push_burst(staged) == 0 {
                // Ring full: the worker on the other side needs CPU time —
                // on an undersubscribed host, yielding beats spinning. If
                // the worker is *gone* (panicked, or the switch was dropped
                // without `shutdown`), nothing will ever drain the ring:
                // only this dispatcher still holds the ring, so fail loudly
                // instead of hanging the producer thread forever.
                if idle > 64 && Arc::strong_count(ring) == 1 {
                    panic!("shard worker is gone; dispatching would hang");
                }
                idle += 1;
                if idle < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            } else {
                idle = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn tcp(src: u16) -> Packet {
        PacketBuilder::tcp().tcp_dst(80).tcp_src(src).build()
    }

    #[test]
    fn same_flow_same_shard_across_instances() {
        // Determinism must hold across *independently built* packets of the
        // same flow AND across dispatcher instances — a restarted (or
        // parallel) dispatcher must agree on placement, or a flow's packets
        // would straddle shards after a failover.
        for shards in [1usize, 2, 3, 4, 7] {
            let d1 = RssDispatcher::new((0..shards).map(|_| Arc::new(SpscRing::new(64))).collect());
            let d2 = RssDispatcher::new((0..shards).map(|_| Arc::new(SpscRing::new(64))).collect());
            for src in 0..64u16 {
                let a = shard_of(rss_hash(&tcp(src)), shards);
                let b = shard_of(rss_hash(&tcp(src)), shards);
                assert_eq!(a, b, "flow affinity must be deterministic");
                assert!(a < shards);
                let p = tcp(src);
                assert_eq!(
                    d1.shard_for(&p),
                    d2.shard_for(&p),
                    "placement must agree across dispatcher instances"
                );
            }
        }
    }

    #[test]
    fn symmetric_hash_is_direction_insensitive() {
        for src in 0..256u16 {
            let forward = PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 1])
                .ipv4_dst([10, 0, 0, 2])
                .tcp_src(src)
                .tcp_dst(80)
                .build();
            let reply = PacketBuilder::tcp()
                .ipv4_src([10, 0, 0, 2])
                .ipv4_dst([10, 0, 0, 1])
                .tcp_src(80)
                .tcp_dst(src)
                .build();
            assert_eq!(
                rss_hash_symmetric(&forward),
                rss_hash_symmetric(&reply),
                "src={src}"
            );
        }
        // Distinct connections still spread.
        let mut counts = [0usize; 4];
        for src in 0..1024u16 {
            let p = PacketBuilder::tcp().tcp_src(src).tcp_dst(80).build();
            counts[shard_of(rss_hash_symmetric(&p), 4)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (128..=512).contains(count),
                "shard {shard} got {count} of 1024 flows"
            );
        }
    }

    #[test]
    fn flows_spread_over_shards() {
        let shards = 4usize;
        let mut counts = vec![0usize; shards];
        for src in 0..1024u16 {
            counts[shard_of(rss_hash(&tcp(src)), shards)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            // A uniform spread is 256 per shard; require each within 2x.
            assert!(
                (128..=512).contains(count),
                "shard {shard} got {count} of 1024 flows"
            );
        }
    }

    #[test]
    fn table_steering_spreads_and_follows_the_table() {
        let rings: Vec<_> = (0..4).map(|_| Arc::new(SpscRing::new(2048))).collect();
        let mut d = RssDispatcher::new(rings.clone());
        let mut counts = [0usize; 4];
        for src in 0..1024u16 {
            counts[d.shard_for(&tcp(src))] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (128..=512).contains(count),
                "shard {shard} got {count} of 1024 flows through the table"
            );
        }
        // Steering actually consults the table: after rewriting it so one
        // shard owns everything, every packet lands there.
        d.table = Arc::new(RemapTable::uniform(1));
        for src in 0..64u16 {
            assert_eq!(d.shard_for(&tcp(src)), 0);
            d.dispatch(tcp(src));
        }
        d.flush();
        assert_eq!(rings[0].len(), 64);
        assert!(rings[1..].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn dispatch_stamps_the_rss_hash() {
        let rings: Vec<_> = (0..2).map(|_| Arc::new(SpscRing::new(256))).collect();
        let mut d = RssDispatcher::new(rings.clone());
        let p = tcp(42);
        let expected = rss_hash(&p);
        assert_eq!(p.rss_hash(), None, "fresh packets carry no stamp");
        let shard = d.shard_for(&p);
        d.dispatch(p);
        d.flush();
        let got = rings[shard].pop().expect("dispatched packet");
        assert_eq!(
            got.rss_hash(),
            Some(expected),
            "the dispatch hash rides the packet"
        );
    }

    #[test]
    fn dispatch_steered_overrides_placement_but_stamps_the_hash() {
        let rings: Vec<_> = (0..4).map(|_| Arc::new(SpscRing::new(256))).collect();
        let mut d = RssDispatcher::new(rings.clone());
        let p = tcp(42);
        let expected = rss_hash(&p);
        let natural = d.shard_for(&p);
        let steered = (natural + 1) % 4;
        d.dispatch_steered(steered, p);
        d.flush();
        assert!(rings[natural].is_empty() || natural == steered);
        let got = rings[steered].pop().expect("steered packet");
        assert_eq!(
            got.rss_hash(),
            Some(expected),
            "steering must not lose the flow hash"
        );
    }

    #[test]
    fn reader_follows_published_remaps() {
        let shared = Arc::new(RemapShared::new(2));
        let rings: Vec<_> = (0..2).map(|_| Arc::new(SpscRing::new(256))).collect();
        let mut d = RssDispatcher::new(rings.clone()).with_reader(Arc::clone(&shared));
        let p = tcp(1);
        let before = d.shard_for(&p);
        // Move every bucket to the other shard and publish.
        let mut table = RemapTable::uniform(2);
        for b in 0..FLOW_BUCKETS {
            table = table.with_owner(b, 1 - before);
        }
        shared.publish(1, Arc::new(table));
        // The reader refreshes at the next dispatch boundary.
        d.dispatch(p.clone());
        d.flush();
        assert_eq!(d.table_epoch(), 1);
        assert_eq!(rings[1 - before].len(), 1);
        assert!(rings[before].is_empty());
    }

    #[test]
    fn dispatcher_stages_bursts_and_flushes_remainder() {
        let rings: Vec<_> = (0..2).map(|_| Arc::new(SpscRing::new(256))).collect();
        let mut dispatcher = RssDispatcher::new(rings.clone());
        // Force-steer to shard 0: below a burst nothing is published.
        for i in 0..(BURST_SIZE - 1) {
            dispatcher.dispatch_to(0, tcp(i as u16));
        }
        assert_eq!(rings[0].len(), 0);
        dispatcher.dispatch_to(0, tcp(999));
        assert_eq!(rings[0].len(), BURST_SIZE, "full burst publishes");
        // A partial stage is only published by flush.
        dispatcher.dispatch_to(1, tcp(7));
        assert_eq!(rings[1].len(), 0);
        dispatcher.flush();
        assert_eq!(rings[1].len(), 1);
        assert_eq!(dispatcher.dispatched(), BURST_SIZE as u64 + 1);
    }
}
