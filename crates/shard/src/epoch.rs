//! The epoch-swap publication primitive the control plane broadcasts
//! through.
//!
//! [`EpochSlot`] is the extracted core of the runtime's "publish an
//! epoch-stamped state behind an atomic `Arc` swap" protocol, kept free of
//! pipeline/compilation types so the loom suite (`tests/loom_epoch.rs`) can
//! model-check it exhaustively:
//!
//! * the write-side critical section is a pointer swap only — publishers
//!   never hold the lock across planning or compilation;
//! * a reader that observed epoch `N` from [`EpochSlot::epoch`] is
//!   guaranteed to [`EpochSlot::load`] a state published at epoch `>= N`
//!   (the counter is stored `Release` *after* the swap, and readers load it
//!   `Acquire` before taking the read lock);
//! * the cheap-poll path is a single `Acquire` load — workers call
//!   [`EpochSlot::epoch`] every loop iteration and only touch the lock when
//!   the counter moved.

use std::sync::Arc;

use netdev::sync::atomic::{AtomicU64, Ordering};
use netdev::sync::RwLock;

/// An epoch-stamped shared state slot: single-pointer-swap publication with
/// a lock-free staleness probe.
///
/// The epoch counter deliberately lives *outside* the lock: it may briefly
/// trail the slot (a reader can see newer state than the counter promised),
/// but never lead it — the safe direction for convergence checks.
#[derive(Debug)]
pub struct EpochSlot<T> {
    slot: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochSlot<T> {
    /// Creates the slot holding `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochSlot {
            slot: RwLock::new(initial),
            epoch: AtomicU64::new(0),
        }
    }

    /// The latest published epoch — the single-load staleness probe.
    ///
    /// Observing `N` here guarantees a subsequent [`EpochSlot::load`]
    /// returns state published at epoch `>= N`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones out the current state.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.read())
    }

    /// Publishes `value` as epoch `epoch`. The critical section is the
    /// pointer swap only; the counter is advanced after the swap so readers
    /// can never observe an epoch whose state is not yet loadable.
    ///
    /// Callers serialise publications externally (the control plane holds
    /// its pipeline lock across plan + publish), which is what keeps epochs
    /// monotonic; the slot itself only orders counter against state.
    pub fn publish(&self, epoch: u64, value: Arc<T>) {
        *self.slot.write() = value;
        self.epoch.store(epoch, Ordering::Release);
    }
}
