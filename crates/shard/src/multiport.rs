//! Multi-port NIC front end: per-port dispatchers over a strictly-SPSC
//! ring matrix, with batched vectored egress.
//!
//! [`crate::runtime::ShardedSwitch`] models the *compute* side of the paper's
//! deployment — N worker shards behind one dispatcher — but its single
//! dispatcher looks nothing like the multi-queue NIC a real switch sits on.
//! [`MultiPortSwitch`] adds the I/O side: one RSS dispatcher thread per
//! ingress [`netdev::Port`], polling the port with the allocation-free
//! `rx_burst_into` API and steering each frame into a matrix of
//! per-(port, shard) [`SpscRing`]s. Every ring has exactly one producer (its
//! port's dispatcher) and one consumer (its shard's worker), so the ingress
//! path carries no MPSC contention anywhere — the same discipline as the
//! reactive runtime's punt matrix. All dispatchers read the *shared*
//! indirection-table epoch slot ([`RemapShared`]), so one bucket remap
//! retargets every ingress port at once.
//!
//! Before RSS, each dispatcher runs the port's pre-shard
//! [`Classifier`] (the software `SO_REUSEPORT` + eBPF analogue): a
//! [`ClassifyAction::Steer`] decision pins the frame to a designated shard
//! (controller-bound traffic, LB VIPs), everything else takes the normal
//! hash → indirection-table path.
//!
//! On the way out, workers stage each verdict's output frames per
//! destination port and flush each port's staging buffer with one vectored
//! [`netdev::Port::tx_burst`] per drain pass — the `sendmmsg` shape — instead
//! of paying a ring reservation and two stats RMWs per packet. The realised
//! batch factor is observable per shard via
//! [`LoadSnapshot::egress_batch_factor`].
//!
//! This runtime is deliberately *stateless*: shards replicate a fixed
//! compiled pipeline (no flow-mod control plane, no conntrack — workers
//! thread [`NoCt`]). The full control plane, reactive slow path and ct
//! engine remain in [`crate::runtime::ShardedSwitch`]; the multi-port
//! front end is about the I/O architecture, and the differential suite
//! (`tests/multiport_equivalence.rs`) proves the two front ends produce
//! identical per-flow verdicts.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use netdev::classify::{Classifier, ClassifyAction};
use netdev::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use netdev::{Counters, Port, PortSet, SpscRing, BURST_SIZE};
use netdev::{PORT_CONTROLLER, PORT_DROP, PORT_FLOOD, PORT_IN_PORT};
use openflow::ct::NoCt;
use openflow::{Pipeline, Verdict};
use pkt::Packet;

use eswitch::compile::CompileError;

use crate::backend::BackendSpec;
use crate::remap::{RemapShared, RemapTable};
use crate::rss::RssDispatcher;
use crate::runtime::VerdictSink;
use crate::telemetry::{LoadRecorder, LoadSnapshot, ShardLoad};

/// Configuration for a [`MultiPortSwitch`] launch.
#[derive(Clone)]
pub struct MultiPortConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Per-(port, shard) ring capacity in packets (rounded up to a power of
    /// two by the ring).
    pub ring_capacity: usize,
    /// Stage verdict outputs per destination port and flush with one
    /// vectored `tx_burst` per drain pass (`true`, the default), or pay a
    /// per-packet `tx` — the baseline the `fig_io` benchmark compares
    /// against.
    pub egress_batching: bool,
    /// The pre-shard match program every dispatcher runs before RSS. Empty
    /// by default: every frame hashes normally.
    pub classifier: Classifier,
}

impl Default for MultiPortConfig {
    fn default() -> Self {
        MultiPortConfig {
            shards: 2,
            ring_capacity: 1024,
            egress_batching: true,
            classifier: Classifier::new(),
        }
    }
}

/// Final accounting returned by [`MultiPortSwitch::shutdown`].
#[derive(Debug, Clone)]
pub struct MultiPortReport {
    /// Frames handed to the ring matrix across all port dispatchers.
    pub dispatched: u64,
    /// Per-shard processed totals, indexed by shard.
    pub per_shard: Vec<netdev::CounterSnapshot>,
    /// Per-shard load telemetry (busy time, bursts, egress batching).
    pub load_per_shard: Vec<LoadSnapshot>,
    /// Controller-bound verdicts observed (counted, not forwarded — this
    /// runtime has no reactive channel).
    pub controller_punts: u64,
    /// The indirection-table epoch at shutdown.
    pub epoch: u64,
}

/// Shared flags coordinating the dispatcher/worker threads.
struct Shared {
    /// Dispatchers stop polling RX and drain out.
    stop_dispatch: AtomicBool,
    /// Workers exit once their rings run dry.
    stop_workers: AtomicBool,
    /// Remap barrier: dispatchers park between bursts while set.
    pause: AtomicBool,
}

/// One ingress dispatcher thread's shared face.
struct DispatcherSlot {
    /// Frames published to the ring matrix so far (monotonic; `Release`
    /// after the publishing flush, so the quiesce wait's `Acquire` read
    /// observes the published packets).
    dispatched: AtomicU64,
    /// Set while the dispatcher is parked at the remap barrier.
    parked: AtomicBool,
}

/// The multi-port switch: one dispatcher thread per ingress port, one
/// worker thread per shard, wired by a strictly-SPSC ring matrix.
pub struct MultiPortSwitch {
    shared: Arc<Shared>,
    remap: Arc<RemapShared>,
    slots: Vec<Arc<DispatcherSlot>>,
    stats: Vec<Arc<Counters>>,
    loads: Vec<Arc<ShardLoad>>,
    punts: Vec<Arc<AtomicU64>>,
    dispatchers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    epoch: u64,
}

impl MultiPortSwitch {
    /// Compiles `pipeline`, spawns one dispatcher per port in `ports` and
    /// one worker per shard, and starts forwarding.
    pub fn launch(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: MultiPortConfig,
        ports: Arc<PortSet>,
    ) -> Result<MultiPortSwitch, CompileError> {
        Self::launch_with_sink(spec, pipeline, config, ports, None)
    }

    /// [`MultiPortSwitch::launch`] with a per-verdict observer (testing
    /// hook). The sink runs *before* the shard's processed counter advances
    /// past the burst, so the remap barrier's quiesce wait observes every
    /// sink effect of every pre-remap packet.
    pub fn launch_with_sink(
        spec: BackendSpec,
        pipeline: Pipeline,
        config: MultiPortConfig,
        ports: Arc<PortSet>,
        sink: Option<VerdictSink>,
    ) -> Result<MultiPortSwitch, CompileError> {
        assert!(!ports.is_empty(), "a multi-port switch needs ports");
        let shards = config.shards.max(1);
        let state = spec.compile_state(&pipeline)?;
        let shared = Arc::new(Shared {
            stop_dispatch: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            pause: AtomicBool::new(false),
        });
        let remap = Arc::new(RemapShared::new(shards));

        // The ring matrix: matrix[port][shard], each strictly SPSC (one
        // dispatcher produces, one worker consumes).
        let matrix: Vec<Vec<Arc<SpscRing<Packet>>>> = (0..ports.len())
            .map(|_| {
                (0..shards)
                    .map(|_| Arc::new(SpscRing::new(config.ring_capacity)))
                    .collect()
            })
            .collect();

        let stats: Vec<_> = (0..shards).map(|_| Arc::new(Counters::default())).collect();
        let loads: Vec<_> = (0..shards)
            .map(|_| Arc::new(ShardLoad::default()))
            .collect();
        let punts: Vec<_> = (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();

        // Worker threads: shard s exclusively consumes matrix column s.
        let port_list: Vec<Arc<Port>> = ports.iter().map(Arc::clone).collect();
        let workers = (0..shards)
            .map(|s| {
                let column: Vec<_> = matrix.iter().map(|row| Arc::clone(&row[s])).collect();
                let mut worker = Worker {
                    shard: s,
                    backend: spec.replica(&state),
                    column,
                    ports: port_list.clone(),
                    egress_batching: config.egress_batching,
                    stats: Arc::clone(&stats[s]),
                    recorder: LoadRecorder::new(Arc::clone(&loads[s])),
                    punts: Arc::clone(&punts[s]),
                    sink: sink.clone(),
                    shared: Arc::clone(&shared),
                };
                std::thread::Builder::new()
                    .name(format!("mp-shard-{s}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker")
            })
            .collect();

        // Dispatcher threads: one per ingress port, each the sole producer
        // of its matrix row.
        let slots: Vec<_> = (0..ports.len())
            .map(|_| {
                Arc::new(DispatcherSlot {
                    dispatched: AtomicU64::new(0),
                    parked: AtomicBool::new(false),
                })
            })
            .collect();
        let dispatchers = matrix
            .into_iter()
            .zip(port_list.iter())
            .zip(slots.iter())
            .map(|((row, port), slot)| {
                let mut dispatcher = PortDispatcher {
                    port: Arc::clone(port),
                    rss: RssDispatcher::new(row).with_reader(Arc::clone(&remap)),
                    classifier: config.classifier.clone(),
                    shards,
                    slot: Arc::clone(slot),
                    shared: Arc::clone(&shared),
                };
                std::thread::Builder::new()
                    .name(format!("mp-port-{}", port.id()))
                    .spawn(move || dispatcher.run())
                    .expect("spawn dispatcher")
            })
            .collect();

        Ok(MultiPortSwitch {
            shared,
            remap,
            slots,
            stats,
            loads,
            punts,
            dispatchers,
            workers,
            epoch: 0,
        })
    }

    /// Frames published to the ring matrix so far, across all ports.
    pub fn dispatched(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.dispatched.load(Ordering::Acquire))
            .sum()
    }

    /// Packets fully processed (verdict delivered, egress flushed), across
    /// all shards.
    pub fn processed(&self) -> u64 {
        self.stats.iter().map(|c| c.packets()).sum()
    }

    /// Per-shard processed counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<netdev::CounterSnapshot> {
        self.stats.iter().map(|c| c.snapshot()).collect()
    }

    /// Per-shard load telemetry snapshots, indexed by shard.
    pub fn shard_loads(&self) -> Vec<LoadSnapshot> {
        self.loads.iter().map(|l| l.snapshot()).collect()
    }

    /// The current indirection table (diagnostics / tests).
    pub fn table(&self) -> Arc<RemapTable> {
        self.remap.load()
    }

    /// Re-homes flow bucket `bucket` to shard `to` across *every* ingress
    /// port at once, via a barrier quiesce:
    ///
    /// 1. every dispatcher parks between bursts (staged packets flushed),
    /// 2. the workers drain the whole matrix (`processed == dispatched` —
    ///    and because sink calls and egress flushes happen before the
    ///    processed counter advances, every pre-remap packet is fully
    ///    observed),
    /// 3. the new table publishes through the shared epoch slot,
    /// 4. the dispatchers resume; their next dispatch picks up the epoch.
    ///
    /// No conntrack state migrates — this runtime is stateless by design
    /// (see the module docs); in-flow ordering still holds because the old
    /// owner finished everything before the new owner sees a packet.
    pub fn remap_bucket(&mut self, bucket: usize, to: usize) {
        assert!(to < self.stats.len(), "target shard out of range");
        self.shared.pause.store(true, Ordering::Release);
        for slot in &self.slots {
            while !slot.parked.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        while self.processed() < self.dispatched() {
            std::thread::yield_now();
        }
        let table = self.remap.load().with_owner(bucket, to);
        self.epoch += 1;
        self.remap.publish(self.epoch, Arc::new(table));
        self.shared.pause.store(false, Ordering::Release);
    }

    /// Stops dispatch, drains the matrix to a fixpoint, joins every thread
    /// and returns the final accounting.
    pub fn shutdown(mut self) -> MultiPortReport {
        // Phase 1: dispatchers drain their ports' RX queues and exit.
        self.shared.stop_dispatch.store(true, Ordering::Release);
        for handle in self.dispatchers.drain(..) {
            handle.join().expect("dispatcher panicked");
        }
        // Phase 2: workers drain the matrix until everything dispatched is
        // processed, then exit.
        while self.processed() < self.dispatched() {
            std::thread::yield_now();
        }
        self.shared.stop_workers.store(true, Ordering::Release);
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        MultiPortReport {
            dispatched: self.dispatched(),
            per_shard: self.shard_stats(),
            load_per_shard: self.shard_loads(),
            controller_punts: self.punts.iter().map(|p| p.load(Ordering::Acquire)).sum(),
            epoch: self.epoch,
        }
    }
}

/// One ingress port's dispatcher: polls RX, classifies, steers into its
/// matrix row.
struct PortDispatcher {
    port: Arc<Port>,
    rss: RssDispatcher,
    classifier: Classifier,
    shards: usize,
    slot: Arc<DispatcherSlot>,
    shared: Arc<Shared>,
}

impl PortDispatcher {
    fn run(&mut self) {
        let mut burst: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
        loop {
            if self.shared.stop_dispatch.load(Ordering::Acquire) {
                break;
            }
            if self.shared.pause.load(Ordering::Acquire) {
                self.publish();
                self.slot.parked.store(true, Ordering::Release);
                while self.shared.pause.load(Ordering::Acquire)
                    && !self.shared.stop_dispatch.load(Ordering::Acquire)
                {
                    std::thread::yield_now();
                }
                self.slot.parked.store(false, Ordering::Release);
                continue;
            }
            if self.port.rx_burst_into(&mut burst, BURST_SIZE) == 0 {
                self.publish();
                std::thread::yield_now();
                continue;
            }
            self.steer(&mut burst);
            self.publish();
        }
        // Shutdown drain: everything already injected must reach the matrix.
        loop {
            if self.port.rx_burst_into(&mut burst, BURST_SIZE) == 0 {
                break;
            }
            self.steer(&mut burst);
        }
        self.publish();
    }

    /// Classifies and dispatches one received burst.
    fn steer(&mut self, burst: &mut Vec<Packet>) {
        let in_port = self.port.id();
        for packet in burst.drain(..) {
            match self.classifier.classify(in_port, packet.data()) {
                ClassifyAction::Steer(shard) => {
                    self.rss.dispatch_steered(shard % self.shards, packet);
                }
                ClassifyAction::Hash => self.rss.dispatch(packet),
            }
        }
    }

    /// Flushes staged packets to the rings and publishes the dispatched
    /// count for the quiesce waits.
    fn publish(&mut self) {
        self.rss.flush();
        self.slot
            .dispatched
            .store(self.rss.dispatched(), Ordering::Release);
    }
}

/// One shard's worker: drains its matrix column, processes bursts through
/// the replica, and egresses verdict outputs with vectored TX.
struct Worker {
    shard: usize,
    backend: Box<dyn crate::backend::ShardBackend>,
    /// This shard's matrix column: one ring per ingress port.
    column: Vec<Arc<SpscRing<Packet>>>,
    /// All ports, in [`PortSet`] insertion order; egress staging is indexed
    /// by position in this list.
    ports: Vec<Arc<Port>>,
    egress_batching: bool,
    stats: Arc<Counters>,
    recorder: LoadRecorder,
    punts: Arc<AtomicU64>,
    sink: Option<VerdictSink>,
    shared: Arc<Shared>,
}

impl Worker {
    fn run(&mut self) {
        let mut batch: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
        let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST_SIZE);
        let mut staged: Vec<Vec<Packet>> = self
            .ports
            .iter()
            .map(|_| Vec::with_capacity(BURST_SIZE))
            .collect();
        // Reused per-packet scratch: indices (into `ports`) of the
        // destinations one verdict fans out to.
        let mut emit: Vec<usize> = Vec::with_capacity(self.ports.len());
        let mut no_ct = NoCt;
        loop {
            let mut pass_packets = 0u64;
            let mut pass_bytes = 0u64;
            for ring in &self.column {
                batch.clear();
                let popped = ring.pop_burst(&mut batch, BURST_SIZE);
                if popped == 0 {
                    continue;
                }
                let queued_behind = ring.len() as u64;
                let start = Instant::now();
                self.backend
                    .process_batch_into(&mut batch, &mut verdicts, &mut no_ct);
                for (packet, verdict) in batch.drain(..).zip(verdicts.iter()) {
                    if let Some(sink) = &self.sink {
                        sink(self.shard, &packet, verdict);
                    }
                    pass_packets += 1;
                    pass_bytes += packet.len() as u64;
                    self.route(packet, verdict, &mut staged, &mut emit);
                }
                self.recorder.record_burst(
                    start.elapsed().as_nanos() as u64,
                    popped as u64,
                    popped as u64 + queued_behind,
                );
            }
            if pass_packets > 0 {
                if self.egress_batching {
                    for (idx, buffer) in staged.iter_mut().enumerate() {
                        if !buffer.is_empty() {
                            let frames = buffer.len() as u64;
                            self.ports[idx].tx_burst(buffer);
                            self.recorder.record_egress(frames);
                        }
                    }
                }
                // Advance the processed counter only after the sink calls
                // and the egress flush: the quiesce waits key off this.
                self.stats.record_batch(pass_packets, pass_bytes);
            } else {
                if self.shared.stop_workers.load(Ordering::Acquire) {
                    break;
                }
                std::thread::yield_now();
            }
        }
        self.recorder.flush();
    }

    /// Resolves one verdict into destination ports and either stages the
    /// frame (batched egress) or transmits it immediately (per-packet
    /// baseline). Single-destination verdicts move the packet; fan-out
    /// clones per extra destination.
    fn route(
        &self,
        packet: Packet,
        verdict: &Verdict,
        staged: &mut [Vec<Packet>],
        emit: &mut Vec<usize>,
    ) {
        if verdict.to_controller {
            self.punts.fetch_add(1, Ordering::Release);
        }
        emit.clear();
        if verdict.flood {
            self.fan_flood(packet.in_port, emit);
        }
        for &out in verdict.outputs.as_slice() {
            match out {
                PORT_DROP | PORT_CONTROLLER => {}
                PORT_FLOOD => self.fan_flood(packet.in_port, emit),
                PORT_IN_PORT => self.push_port(packet.in_port, emit),
                id => self.push_port(id, emit),
            }
        }
        let Some((&last, rest)) = emit.split_last() else {
            return;
        };
        for &idx in rest {
            self.emit_frame(packet.clone(), idx, staged);
        }
        self.emit_frame(packet, last, staged);
    }

    /// Appends every port except the ingress one to `emit`.
    fn fan_flood(&self, in_port: u32, emit: &mut Vec<usize>) {
        for (idx, port) in self.ports.iter().enumerate() {
            if port.id() != in_port {
                emit.push(idx);
            }
        }
    }

    /// Appends the position of port `id` to `emit`; unknown ids are dropped
    /// silently (the pipeline referenced a port this switch doesn't have).
    fn push_port(&self, id: u32, emit: &mut Vec<usize>) {
        if let Some(idx) = self.ports.iter().position(|p| p.id() == id) {
            emit.push(idx);
        }
    }

    /// Hands one frame to destination `idx`: staged for the vectored flush,
    /// or transmitted immediately in per-packet mode.
    fn emit_frame(&self, frame: Packet, idx: usize, staged: &mut [Vec<Packet>]) {
        if self.egress_batching {
            staged[idx].push(frame);
        } else {
            self.ports[idx].tx(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry};
    use pkt::builder::PacketBuilder;

    /// A one-table pipeline steering by TCP destination port: 1000+i →
    /// Output(i % out_ports), catch-all drop.
    fn port_pipeline(out_ports: u32) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        for i in 0..16u16 {
            t.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::TcpDst, u128::from(1000 + i)),
                100,
                terminal_actions(vec![Action::Output(u32::from(i) % out_ports)]),
            ));
        }
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn flow_packet(flow: u16, src: u16) -> Packet {
        PacketBuilder::tcp()
            .tcp_dst(1000 + (flow % 16))
            .tcp_src(src)
            .build()
    }

    #[test]
    fn forwards_across_ports_and_shards() {
        let ports = Arc::new(PortSet::with_ports(4));
        let switch = MultiPortSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(4),
            MultiPortConfig {
                shards: 2,
                ..MultiPortConfig::default()
            },
            Arc::clone(&ports),
        )
        .unwrap();
        let mut injected = 0u64;
        for src in 0..256u16 {
            let port = ports.get(u32::from(src % 4)).unwrap();
            if port.inject(flow_packet(src, src)) {
                injected += 1;
            }
        }
        let report = switch.shutdown();
        assert_eq!(report.dispatched, injected);
        let processed: u64 = report.per_shard.iter().map(|s| s.packets).sum();
        assert_eq!(processed, injected);
        // Every flow maps to some output port; drops only come from the
        // catch-all, which none of these flows hit.
        let egressed: u64 = ports.iter().map(|p| p.stats().tx.packets()).sum();
        assert_eq!(egressed, injected);
        // Both shards saw work (256 flows over 2 shards).
        assert!(report.per_shard.iter().all(|s| s.packets > 0));
        // Batched egress actually batched.
        let flushes: u64 = report.load_per_shard.iter().map(|l| l.egress_flushes).sum();
        let frames: u64 = report.load_per_shard.iter().map(|l| l.egress_frames).sum();
        assert_eq!(frames, injected);
        assert!(flushes > 0 && flushes < frames, "no batching realised");
    }

    #[test]
    fn per_packet_mode_still_forwards() {
        let ports = Arc::new(PortSet::with_ports(2));
        let switch = MultiPortSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(2),
            MultiPortConfig {
                shards: 2,
                egress_batching: false,
                ..MultiPortConfig::default()
            },
            Arc::clone(&ports),
        )
        .unwrap();
        for src in 0..64u16 {
            assert!(ports
                .get(u32::from(src % 2))
                .unwrap()
                .inject(flow_packet(src, src)));
        }
        let report = switch.shutdown();
        assert_eq!(report.dispatched, 64);
        let egressed: u64 = ports.iter().map(|p| p.stats().tx.packets()).sum();
        assert_eq!(egressed, 64);
        let flushes: u64 = report.load_per_shard.iter().map(|l| l.egress_flushes).sum();
        assert_eq!(flushes, 0, "per-packet mode must not report egress flushes");
    }

    #[test]
    fn classifier_steers_to_designated_shard() {
        use std::sync::Mutex;
        let ports = Arc::new(PortSet::with_ports(2));
        let seen: Arc<Mutex<Vec<(usize, u16)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let sink: VerdictSink = Arc::new(move |shard, packet, _verdict| {
            let hdrs = pkt::parse(packet.data(), pkt::ParseDepth::L4);
            let dst = hdrs.l4_dst(packet.data()).unwrap_or(0);
            sink_seen.lock().unwrap().push((shard, dst));
        });
        let classifier = Classifier::new().rule(
            netdev::MatchSpec::any().ip_proto(6).l4_dst(6653),
            ClassifyAction::Steer(3),
        );
        let switch = MultiPortSwitch::launch_with_sink(
            BackendSpec::eswitch(),
            port_pipeline(2),
            MultiPortConfig {
                shards: 4,
                classifier,
                ..MultiPortConfig::default()
            },
            Arc::clone(&ports),
            Some(sink),
        )
        .unwrap();
        for src in 0..128u16 {
            let port = ports.get(u32::from(src % 2)).unwrap();
            assert!(port.inject(PacketBuilder::tcp().tcp_dst(6653).tcp_src(src).build()));
            assert!(port.inject(flow_packet(src, src)));
        }
        switch.shutdown();
        let seen = seen.lock().unwrap();
        let steered: Vec<_> = seen.iter().filter(|(_, dst)| *dst == 6653).collect();
        assert_eq!(steered.len(), 128);
        assert!(
            steered.iter().all(|(shard, _)| *shard == 3),
            "controller-bound traffic leaked off its designated shard"
        );
        // The rest spread over all shards (sanity that steering is the
        // exception, not the rule).
        assert!(seen.iter().any(|(shard, dst)| *dst != 6653 && *shard != 3));
    }

    #[test]
    fn remap_bucket_retargets_every_port() {
        use crate::rss::rss_hash;
        use conntrack::bucket_of;

        let ports = Arc::new(PortSet::with_ports(2));
        let mut switch = MultiPortSwitch::launch(
            BackendSpec::eswitch(),
            port_pipeline(2),
            MultiPortConfig {
                shards: 2,
                ..MultiPortConfig::default()
            },
            Arc::clone(&ports),
        )
        .unwrap();
        // The RSS hash covers `in_port`, so the same frame arriving on
        // different ports occupies different buckets — pin them all to one
        // shard (as the rebalancer would when re-homing a hot flow group).
        let mut buckets: Vec<usize> = (0..2u32)
            .map(|pid| {
                let mut probe = flow_packet(0, 7);
                probe.in_port = pid;
                bucket_of(rss_hash(&probe))
            })
            .collect();
        buckets.dedup();
        let target = 1 - switch.table().owner(buckets[0]);
        let mut epochs = 0;
        for &bucket in &buckets {
            if switch.table().owner(bucket) != target {
                switch.remap_bucket(bucket, target);
                epochs += 1;
            }
            assert_eq!(switch.table().owner(bucket), target);
        }
        // Traffic injected after the remap lands on the new owner via every
        // ingress port.
        for port in ports.iter() {
            assert!(port.inject(flow_packet(0, 7)));
        }
        let report = switch.shutdown();
        assert_eq!(report.epoch, epochs);
        assert_eq!(report.per_shard[target].packets, 2);
        assert_eq!(report.per_shard[1 - target].packets, 0);
    }
}
