//! Shared workload definitions for the conntrack throughput and capacity
//! harness (the `fig_conntrack` binary).
//!
//! Three questions the committed `BENCH_conntrack.json` answers:
//!
//! 1. **What does statefulness cost on the fast path?** The stateless
//!    baseline is the OVS cache hierarchy in its EMC-hit regime (active
//!    flows ≪ EMC capacity) on a two-port forwarding pipeline; the stateful
//!    runs are the same traffic through the conntrack-enabled twin — every
//!    measured packet is an established-path hit (one index probe + LRU
//!    touch + wheel re-arm). The headline metric is the established/
//!    stateless pps ratio.
//! 2. **Do NAT and LB rewrites stay cheap?** Same regime over the
//!    `snat_edge` and `l4_lb` use cases, where every established-path hit
//!    also rewrites the packet from the stored tuples.
//! 3. **Does the table hold a million connections and reclaim them?** A
//!    fill run against a ≥ 2²⁰-capacity engine: distinct UDP flows are
//!    committed until well past one million are live at once, then virtual
//!    time advances past the idle timeout and the wheel must hand every
//!    one of them back. Memory is reported from the engine's own
//!    fixed-at-construction accounting.

use conntrack::{CtConfig, CtEngine, CtTimeouts};
use openflow::ct::CtVerb;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline, Verdict};
use pkt::builder::PacketBuilder;
use pkt::{Packet, TcpFlags};
use workloads::usecases::{PORT_NET, PORT_USER};

/// Burst size of the measurement loops (DPDK's conventional rx burst); the
/// engine ticks once per burst, as the sharded worker loop does.
pub const BURST: usize = 32;

/// The stateless twin of the stateful-ACL pipeline: the same two-port
/// forwarding shape with the ct verbs removed. Identical traffic, identical
/// cache regime — the throughput delta against this is the cost of
/// statefulness alone.
pub fn stateless_pipeline() -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "stateless-acl".to_string();
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_USER)),
        300,
        terminal_actions(vec![Action::Output(PORT_NET)]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_NET)),
        200,
        terminal_actions(vec![Action::Output(PORT_USER)]),
    ));
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// `flows` established-direction data packets (client → server, ACK set),
/// one per connection, padded to a whole number of bursts. The same ring
/// warms the table (each packet's first pass commits its connection) and is
/// then replayed for the timed loop, so every measured packet is an
/// established-path hit.
pub fn data_ring(flows: usize, in_port: u32) -> Vec<Packet> {
    let n = flows.max(BURST).div_ceil(BURST) * BURST;
    (0..n)
        .map(|f| {
            let f = f % flows.max(1);
            PacketBuilder::tcp()
                .ipv4_src([10, 0, (f >> 8) as u8, f as u8])
                .ipv4_dst([198, 51, 100, (f % 200) as u8 + 1])
                .tcp_src(1024 + (f % 30_000) as u16)
                .tcp_dst(80)
                .tcp_flags(TcpFlags {
                    ack: true,
                    ..TcpFlags::default()
                })
                .in_port(in_port)
                .build()
        })
        .collect()
}

/// Warms every connection of `ring` to the established state: one forward
/// pass creates the connections, then each *forwarded* frame is answered
/// (tuple-swapped, arriving on `reply_port`) so the reverse direction is
/// seen too. Works for translating pipelines as well because the reply
/// answers the frame as it left the datapath.
pub fn warm_established(
    dp: &ovsdp::OvsDatapath,
    engine: &mut CtEngine,
    ring: &[Packet],
    reply_port: u32,
) {
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST);
    for packet in ring {
        let mut forward = packet.clone();
        dp.process_batch_into_ct(std::slice::from_mut(&mut forward), &mut verdicts, engine);
        if let Some(mut reply) = workloads::reply_to(&forward, reply_port) {
            dp.process_batch_into_ct(std::slice::from_mut(&mut reply), &mut verdicts, engine);
        }
    }
}

/// The engine configuration of the capacity fill: a slab of `capacity`
/// connections, a wide wheel, and refuse-new admission so the run proves
/// the table *holds* the load rather than churning through it.
pub fn capacity_config(capacity: usize) -> CtConfig {
    CtConfig {
        capacity,
        wheel_slots: 4096,
        eviction: conntrack::EvictionPolicy::RefuseNew,
        timeouts: CtTimeouts::default(),
        lb_groups: Vec::new(),
    }
}

/// The single-rule commit pipeline of the capacity fill.
pub fn capacity_pipeline() -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "capacity-fill".to_string();
    table.insert(FlowEntry::new(
        FlowMatch::any(),
        10,
        terminal_actions(vec![Action::Ct(CtVerb::Commit), Action::Output(PORT_NET)]),
    ));
    pipeline
}

/// The `i`-th distinct UDP flow of the capacity fill (22 bits of address
/// entropy plus the ports, so multi-million fills stay collision-free).
pub fn capacity_packet(i: usize) -> Packet {
    PacketBuilder::udp()
        .ipv4_src([10, (i >> 14) as u8, (i >> 6) as u8, i as u8])
        .ipv4_dst([192, 0, 2, 1])
        .udp_src(1024 + (i % 4096) as u16)
        .udp_dst(53)
        .in_port(PORT_USER)
        .build()
}

/// Outcome of the million-connection fill-and-reclaim run.
#[derive(Debug, Clone, Copy)]
pub struct CapacityReport {
    /// Slab capacity of the engine under test.
    pub capacity: usize,
    /// Distinct flows offered.
    pub offered: usize,
    /// Live connections after the fill (the concurrency claim).
    pub live_peak: usize,
    /// Live connections after advancing past the idle timeout.
    pub live_after_timeout: usize,
    /// Engine memory in bytes — fixed at construction, load-independent.
    pub memory_bytes: usize,
    /// Idle-timeout reclamations the wheel performed.
    pub evicted_idle: u64,
    /// Whether the stats identity held at the end of the run.
    pub identity_holds: bool,
}

/// Commits `offered` distinct UDP flows against a fresh engine of the given
/// capacity (no ticks during the fill, so nothing idles out), then advances
/// virtual time past the idle timeout and checks the wheel returned every
/// connection.
pub fn run_capacity(capacity: usize, offered: usize) -> CapacityReport {
    let pipeline = capacity_pipeline();
    let config = capacity_config(capacity);
    let mut engine = CtEngine::new(&config);
    for i in 0..offered {
        let mut packet = capacity_packet(i);
        std::hint::black_box(pipeline.process_ct(&mut packet, &mut engine));
    }
    let live_peak = engine.live();
    // Idle reclamation: everything is UDP-new; one sweep past the timeout
    // (plus the wheel's lazy re-arm slack) must return every connection.
    let deadline = engine.now() + config.timeouts.udp_new + config.wheel_slots as u64 + 1;
    engine.advance_to(deadline);
    let snapshot = engine.stats().snapshot();
    CapacityReport {
        capacity,
        offered,
        live_peak,
        live_after_timeout: engine.live(),
        memory_bytes: engine.memory_bytes(),
        evicted_idle: snapshot.evicted_idle,
        identity_holds: snapshot.identity_holds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::ct::NoCt;
    use ovsdp::OvsDatapath;
    use workloads::stateful_acl_gateway as acl;

    #[test]
    fn warmed_ring_replays_as_established_hits() {
        let dp = OvsDatapath::new(acl::build_pipeline(&acl::StatefulAclConfig::default()));
        let mut engine = CtEngine::new(&acl::ct_config());
        let ring = data_ring(64, PORT_USER);
        warm_established(&dp, &mut engine, &ring, PORT_NET);
        // Hits are batched per tick; flush before snapshotting.
        engine.advance_to(engine.now());
        let created = engine.stats().snapshot().created;
        assert_eq!(created, 64);

        let before = engine.stats().snapshot().hits;
        let mut replay: Vec<Packet> = ring.clone();
        let mut verdicts = Vec::with_capacity(BURST);
        for chunk in replay.chunks_mut(BURST) {
            engine.tick();
            dp.process_batch_into_ct(chunk, &mut verdicts, &mut engine);
            assert!(verdicts.iter().all(|v| v.outputs == vec![PORT_NET]));
        }
        engine.advance_to(engine.now());
        let hits = engine.stats().snapshot().hits - before;
        assert_eq!(hits, ring.len() as u64);
        assert_eq!(engine.stats().snapshot().created, created);
    }

    #[test]
    fn stateless_twin_forwards_the_same_ring() {
        let dp = OvsDatapath::new(stateless_pipeline());
        let mut ring = data_ring(64, PORT_USER);
        let mut verdicts = Vec::with_capacity(BURST);
        for chunk in ring.chunks_mut(BURST) {
            dp.process_batch_into_ct(chunk, &mut verdicts, &mut NoCt);
            assert!(verdicts.iter().all(|v| v.outputs == vec![PORT_NET]));
        }
    }

    #[test]
    fn capacity_run_fills_and_reclaims() {
        let report = run_capacity(1 << 12, 3 << 10);
        assert_eq!(report.live_peak, 3 << 10);
        assert_eq!(report.live_after_timeout, 0);
        assert_eq!(report.evicted_idle, (3 << 10) as u64);
        assert!(report.identity_holds);
        assert!(report.memory_bytes > 0);
    }
}
