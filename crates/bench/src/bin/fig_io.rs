//! fig_io — multi-port ingress/egress harness for `BENCH_io.json`.
//!
//! Sweeps the [`shard::MultiPortSwitch`] front end over a 1/2/4-port ×
//! 1/2/4-shard matrix with feeder/drainer threads on every port, then runs
//! the two targeted comparisons the PR claims:
//!
//! * **Egress batching** — the full switch with vectored per-port flushes
//!   versus the per-packet `Port::tx` baseline, plus a single-threaded
//!   TX-ring microbench of the same two styles (one reservation, one tail
//!   publication and one counter RMW per *burst* versus per *frame*). The
//!   microbench is the batching-speedup evidence: it is deterministic on a
//!   time-sliced host, where end-to-end wall pps is scheduler noise.
//! * **Classifier steering** — hash-only dispatch versus a pre-shard
//!   program pinning one destination port's flows to shard 0.
//!
//! The JSON embeds the machine's logical CPU count; on a host with fewer
//! cores than threads (dispatchers + workers + wire threads) the matrix
//! rows time-slice and only the microbench ratios carry signal.
//! `ESWITCH_BENCH_QUICK=1` shrinks the windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::io::{measure_io_throughput, measure_tx_styles, steering_classifier, IoConfig};
use bench_harness::print_header;
use netdev::classify::Classifier;
use shard::BackendSpec;

/// Port and shard counts swept in the matrix.
const SWEEP: [usize; 3] = [1, 2, 4];

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        80
    } else {
        400
    }
}

fn warmup_ms() -> u64 {
    if bench_harness::quick_mode() {
        20
    } else {
        100
    }
}

fn tx_frames() -> usize {
    if bench_harness::quick_mode() {
        200_000
    } else {
        2_000_000
    }
}

fn base_config(ports: usize, shards: usize) -> IoConfig {
    IoConfig {
        ports: ports as u32,
        shards,
        egress_batching: true,
        classifier: Classifier::new(),
        flows: 256,
        warmup_ms: warmup_ms(),
        duration_ms: duration_ms(),
    }
}

struct Cell {
    ports: usize,
    shards: usize,
    pps: f64,
    batch_factor: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_io.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "io",
        "multi-port dispatchers, vectored egress, pre-shard classifier (BENCH_io.json)",
    );

    // Port × shard matrix, vectored egress, eswitch backend.
    let mut matrix: Vec<Cell> = Vec::new();
    for &ports in &SWEEP {
        for &shards in &SWEEP {
            let result = measure_io_throughput(BackendSpec::eswitch(), &base_config(ports, shards));
            println!(
                "matrix {ports} port(s) x {shards} shard(s)  {:>12.0} pps  egress batch {:>5.1} frames/flush",
                result.pps, result.egress_batch_factor
            );
            matrix.push(Cell {
                ports,
                shards,
                pps: result.pps,
                batch_factor: result.egress_batch_factor,
            });
        }
    }

    // Egress batching vs per-packet TX: full switch (2 ports x 2 shards)…
    let batched = measure_io_throughput(BackendSpec::eswitch(), &base_config(2, 2));
    let per_packet = measure_io_throughput(
        BackendSpec::eswitch(),
        &IoConfig {
            egress_batching: false,
            ..base_config(2, 2)
        },
    );
    println!(
        "egress  batched {:>12.0} pps vs per-packet {:>12.0} pps (wall, time-sliced)",
        batched.pps, per_packet.pps
    );
    // …and the deterministic TX-ring microbench of the same two styles.
    let tx = measure_tx_styles(tx_frames());
    println!(
        "egress  tx ring: per-packet {:.1} ns/frame, vectored {:.1} ns/frame  ({:.2}x)",
        tx.per_packet_ns, tx.vectored_ns, tx.speedup
    );

    // Classifier: hash-only vs steering 1/16th of flows to shard 0.
    let hash_only = measure_io_throughput(BackendSpec::eswitch(), &base_config(2, 4));
    let steered = measure_io_throughput(
        BackendSpec::eswitch(),
        &IoConfig {
            classifier: steering_classifier(),
            ..base_config(2, 4)
        },
    );
    println!(
        "classifier  hash-only {:>12.0} pps vs steered {:>12.0} pps",
        hash_only.pps, steered.pps
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"io\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"burst_size\": {},", netdev::BURST_SIZE);
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_ms\": {},", warmup_ms());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"matrix pps needs logical_cpus > dispatchers + shards + wire threads; \
         on smaller hosts the rows time-slice and tx_styles carries the batching signal\",\n",
    );
    json.push_str("  \"matrix\": [\n");
    for (i, cell) in matrix.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"ports\": {}, \"shards\": {}, \"backend\": \"eswitch\", \"pps\": {:.0}, \"egress_frames_per_flush\": {:.2}}}",
            cell.ports, cell.shards, cell.pps, cell.batch_factor
        );
        json.push_str(if i + 1 < matrix.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"egress_batching\": {\n");
    let _ = writeln!(
        json,
        "    \"switch_wall\": {{\"ports\": 2, \"shards\": 2, \"batched_pps\": {:.0}, \"per_packet_pps\": {:.0}, \"batched_frames_per_flush\": {:.2}}},",
        batched.pps, per_packet.pps, batched.egress_batch_factor
    );
    let _ = writeln!(
        json,
        "    \"tx_styles\": {{\"frames\": {}, \"per_packet_ns_per_frame\": {:.2}, \"vectored_ns_per_frame\": {:.2}, \"speedup\": {:.2}}}",
        tx_frames(),
        tx.per_packet_ns,
        tx.vectored_ns,
        tx.speedup
    );
    json.push_str("  },\n");
    json.push_str("  \"classifier\": {\n");
    let _ = writeln!(json, "    \"hash_only_pps\": {:.0},", hash_only.pps);
    let _ = writeln!(json, "    \"steered_pps\": {:.0},", steered.pps);
    json.push_str(
        "    \"program\": \"tcp dst 1000 -> Steer(0); 1/16th of flows pinned off the hash\"\n",
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
