//! Fig. 17 — total time to set up the load-balancer pipeline as the number of
//! web services grows, for ESWITCH and OVS, via the "CLI" path (flow-mods
//! applied directly, back to back) and via a modelled controller path (per
//! flow-mod overhead added, standing in for the OpenFlow channel round trip).
//!
//! Expected shape (paper): both switches scale linearly in the number of
//! rules; ESWITCH is ~5× faster on the CLI path, and the two are
//! indistinguishable through a controller because the controller itself is
//! the bottleneck.

use std::time::Instant;

use bench_harness::{print_header, quick_mode, render_series_table, AnySwitch, Series, SwitchKind};
use openflow::{FlowMod, Pipeline};
use workloads::load_balancer::{self, LoadBalancerConfig};

/// Per-flow-mod overhead of the controller path (serialisation + channel
/// round trip), a conservative constant standing in for Ryu/OpenDaylight.
const CONTROLLER_OVERHEAD_PER_MOD_SECS: f64 = 200e-6;

/// Derives the list of flow-mods that builds the load-balancer table from an
/// empty pipeline — the "setup" the figure times.
fn setup_mods(config: &LoadBalancerConfig) -> Vec<FlowMod> {
    let reference = load_balancer::build_pipeline(config);
    let table = reference.table(0).expect("single table");
    table
        .entries()
        .iter()
        .map(|e| FlowMod::add(0, e.flow_match.clone(), e.priority, e.instructions.clone()))
        .collect()
}

fn time_setup(kind: SwitchKind, mods: &[FlowMod]) -> f64 {
    // Start from an empty single-table pipeline, as ovs-ofctl would.
    let switch = AnySwitch::build(kind, Pipeline::with_tables(1));
    let start = Instant::now();
    for fm in mods {
        switch.flow_mod(fm);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    print_header(
        "Figure 17",
        "time to install the load-balancer pipeline vs number of services (CLI and controller paths)",
    );
    let services_sweep: Vec<usize> = if quick_mode() {
        vec![1, 10, 100]
    } else {
        vec![1, 10, 100, 1_000, 10_000]
    };

    let mut es_cli = Series::new("ES (CLI)");
    let mut ovs_cli = Series::new("OVS (CLI)");
    let mut es_ctrl = Series::new("ES (ctrl)");
    let mut ovs_ctrl = Series::new("OVS (ctrl)");
    for &services in &services_sweep {
        let config = LoadBalancerConfig {
            services,
            seed: 0x17,
        };
        let mods = setup_mods(&config);
        let es = time_setup(SwitchKind::Eswitch, &mods);
        let ovs = time_setup(SwitchKind::Ovs, &mods);
        let controller_overhead = CONTROLLER_OVERHEAD_PER_MOD_SECS * mods.len() as f64;
        es_cli.push(services as f64, es);
        ovs_cli.push(services as f64, ovs);
        es_ctrl.push(services as f64, es + controller_overhead);
        ovs_ctrl.push(services as f64, ovs + controller_overhead);
        println!(
            "  {services:>6} services = {:>6} flow-mods: ES {:.4}s, OVS {:.4}s",
            mods.len(),
            es,
            ovs
        );
    }

    println!("\ntotal setup time [seconds]\n");
    println!(
        "{}",
        render_series_table("web services", &[es_cli, ovs_cli, es_ctrl, ovs_ctrl])
    );
}
