//! Fig. 13 — packet rate for the access-gateway use case (10 CEs, 20
//! users/CE, 10K prefixes) as the active flow set grows to 1M, together with
//! the analytic model's lower and upper bounds.
//!
//! Expected shape (paper): ESWITCH stays above ~9 Mpps-equivalent across the
//! whole sweep and sits between the model bounds; OVS collapses by roughly
//! two orders of magnitude once the flow set overwhelms its caches.

use bench_harness::{
    flow_sweep, measure::rate_sweep, packets_per_point, print_header, render_series_table,
    warmup_packets, Series, SwitchKind,
};
use eswitch::perfmodel::{CacheLevelCosts, PerformanceModel};
use eswitch::runtime::EswitchRuntime;
use workloads::gateway::{self, GatewayConfig};

fn main() {
    print_header(
        "Figure 13",
        "gateway packet rate vs active flows, with model-lb/model-ub bounds",
    );
    let config = GatewayConfig::default();
    let sweep = flow_sweep(true);

    // Measured series for both architectures.
    let mut all_series = rate_sweep(
        "gateway",
        &[SwitchKind::Eswitch, SwitchKind::Ovs],
        &sweep,
        || gateway::build_pipeline(&config),
        |flows| gateway::build_traffic(&config, flows),
        warmup_packets(),
        packets_per_point(),
    );

    // Analytic bounds from the performance model over the compiled datapath,
    // along the user→network walk (table 0 → per-CE table → routing table).
    let runtime = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
    let datapath = runtime.datapath();
    let model = PerformanceModel::new();
    let walk = [0, gateway::ce_table(0), gateway::ROUTING_TABLE];
    let estimate = model.estimate_walk(&datapath, &walk);
    let costs = CacheLevelCosts::default();
    let (ub, lb) = estimate.rate_bounds(&costs);
    let mut ub_series = Series::new("ES(model-ub)");
    let mut lb_series = Series::new("ES(model-lb)");
    for &flows in &sweep {
        ub_series.push(flows as f64, ub);
        lb_series.push(flows as f64, lb);
    }
    all_series.insert(0, ub_series);
    all_series.push(lb_series);

    println!("packet rate [pps]\n");
    println!("{}", render_series_table("active flows", &all_series));
    println!("model walk: table 0 -> per-CE NAT -> routing table (user-to-network direction)");
    println!("{}", estimate.render_table());
}
