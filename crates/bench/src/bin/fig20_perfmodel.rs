//! Fig. 20 — the per-stage cycle model for the gateway use case, plus the
//! derived best/typical/worst-case throughput estimates of §4.4.

use bench_harness::print_header;
use eswitch::perfmodel::{CacheAssumption, CacheLevelCosts, PerformanceModel};
use eswitch::runtime::EswitchRuntime;
use workloads::gateway::{self, GatewayConfig};

fn main() {
    print_header(
        "Figure 20",
        "per-stage cycle model for the gateway pipeline (user-to-network walk)",
    );
    let config = GatewayConfig::default();
    let runtime = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
    let datapath = runtime.datapath();

    println!("compiled templates per table:");
    for (id, kind) in datapath.template_kinds() {
        let entries = datapath.slot(id).map(|s| s.table.read().len()).unwrap_or(0);
        println!("  table {id:>3}: {kind:?} ({entries} entries)");
    }

    let model = PerformanceModel::new();
    let estimate = model.estimate_walk(
        &datapath,
        &[0, gateway::ce_table(0), gateway::ROUTING_TABLE],
    );
    println!("\n{}", estimate.render_table());

    let costs = CacheLevelCosts::default();
    for (label, assumption) in [
        (
            "all accesses from L1 (optimistic upper bound)",
            CacheAssumption::AllL1,
        ),
        (
            "all accesses from L2 (~1K active flows)",
            CacheAssumption::AllL2,
        ),
        (
            "all accesses from L3 (pessimistic lower bound)",
            CacheAssumption::AllL3,
        ),
    ] {
        println!(
            "{label}: {:.0} cycles/packet -> {:.2} Mpps",
            estimate.cycles_per_packet(&costs, assumption),
            estimate.packet_rate(&costs, assumption) / 1e6
        );
    }
    println!(
        "\npaper reference: 178 cycles / 11.2 Mpps, 202 cycles / 9.9 Mpps, 253 cycles / 7.9 Mpps"
    );
}
