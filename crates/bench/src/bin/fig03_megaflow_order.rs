//! Fig. 3 — megaflow cache contents depend on the packet arrival sequence.
//!
//! The paper's example sends the same seven TCP destination ports through the
//! same flow table in two different orders and observes 7 megaflow entries in
//! one case and 1 in the other. Our slow path uses *sound* mask construction
//! (a matched rule always pins its full mask), under which the megaflow a
//! packet generates is a pure function of (packet, table); the entry counts
//! are therefore order-independent, but the *set of masks generated per
//! packet*, and how early later packets are absorbed by earlier megaflows,
//! still depends on arrival order. This harness reports both orders so the
//! difference (and the divergence from the paper's 7-vs-1 count, documented
//! in EXPERIMENTS.md) is visible.

use bench_harness::print_header;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use ovsdp::OvsDatapath;
use pkt::builder::PacketBuilder;
use pkt::Packet;

/// The Fig. 3a-style flow table: a single exact rule on tcp_dst = 191
/// (binary 10111111) over a catch-all.
fn fig3_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::TcpDst, 191),
        100,
        terminal_actions(vec![Action::Output(1)]),
    ));
    t.insert(FlowEntry::new(
        FlowMatch::any(),
        1,
        terminal_actions(vec![Action::Output(2)]),
    ));
    p
}

fn packet(port: u16) -> Packet {
    PacketBuilder::tcp().tcp_dst(port).tcp_src(40_000).build()
}

fn run_sequence(label: &str, ports: &[u16]) {
    let dp = OvsDatapath::new(fig3_pipeline());
    for &port in ports {
        dp.process(&mut packet(port));
    }
    println!("\nsequence {label}: ports {ports:?}");
    println!(
        "  megaflow entries: {}   (slow-path classifications: {})",
        dp.megaflow_count(),
        dp.stats.slowpath_hits.packets()
    );
}

fn main() {
    print_header(
        "Figure 3",
        "megaflow cache contents vs packet arrival order (tcp_dst table)",
    );
    // The seven ports of the figure: 191 with one additional zero bit each,
    // plus 191 itself.
    let seq1: Vec<u16> = vec![190, 189, 187, 183, 175, 159, 191];
    let mut seq2 = seq1.clone();
    seq2.rotate_right(1); // 191 arrives first

    run_sequence("1 (191 last)", &seq1);
    run_sequence("2 (191 first)", &seq2);

    // Show the megaflow masks one representative run produced, to make the
    // unwildcarding visible.
    let dp = OvsDatapath::new(fig3_pipeline());
    for &port in &seq1 {
        dp.process(&mut packet(port));
    }
    println!("\nper-packet megaflow masks (sequence 1):");
    println!("  tcp_dst unwildcarded bits per megaflow reflect how far the");
    println!("  classifier had to look to prove a mismatch with port 191;");
    println!("  see EXPERIMENTS.md for the comparison with the paper's 7-vs-1 count.");
}
