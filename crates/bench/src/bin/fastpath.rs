//! fastpath — throughput harness for the batched cache hierarchy.
//!
//! Measures burst-mode (32-packet, DPDK-style) throughput of the cache
//! hierarchy on four steady-state workloads and records the results to
//! `BENCH_fastpath.json` so the performance trajectory of the repo is a
//! committed artifact rather than folklore:
//!
//! * `megaflow_hit`  — OVS-default cache config with twice as many active
//!   flows as the EMC holds: the EMC thrashes and ~80% of packets are
//!   answered by tuple-space search over four subtables. This is the
//!   paper's Fig. 14 mid-range regime and the headline workload of the
//!   `BENCH_fastpath.json` trajectory;
//! * `microflow_hit` — same pipeline with an active-flow count that fits the
//!   EMC: steady state is exact-match hits;
//! * `tss_no_emc`    — microflow cache disabled entirely, isolating pure
//!   tuple-space-search cost;
//! * `eswitch_l2`    — the compiled datapath on the L2 use case, as the
//!   compiled-fast-path comparison point.
//!
//! Pass `--baseline name=pps` (repeatable) and `--baseline-git <rev>` to
//! embed the pre-change numbers measured with this same harness; the JSON
//! then records both and the improvement ratio. `ESWITCH_BENCH_QUICK=1`
//! shrinks the packet counts for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use bench_harness::fastpath::{build_ring, port_pipeline, port_traffic, BURST};
use bench_harness::print_header;
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::Packet;
use workloads::l2::{self, L2Config};

fn measured_packets() -> usize {
    if bench_harness::quick_mode() {
        200_000
    } else {
        1_000_000
    }
}

/// One measured workload result.
struct WorkloadResult {
    name: &'static str,
    pps: f64,
    ns_per_packet: f64,
    /// `(microflow, megaflow, slowpath)` hit fractions over the timed run
    /// (OVS workloads only) — evidence the workload measures what it claims.
    hit_fractions: Option<(f64, f64, f64)>,
}

/// Runs one burst through the OVS datapath into a reused verdict buffer.
/// This is the measured call.
fn ovs_burst(dp: &OvsDatapath, chunk: &mut [Packet], verdicts: &mut Vec<openflow::Verdict>) {
    dp.process_batch_into(chunk, verdicts);
    std::hint::black_box(verdicts.len());
}

fn flows_override(default: usize) -> usize {
    std::env::var("ESWITCH_FASTPATH_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn measure_ovs(name: &'static str, use_microflow: bool, flows: usize) -> WorkloadResult {
    let flows = flows_override(flows);
    let config = OvsConfig {
        use_microflow,
        ..OvsConfig::default()
    };
    let dp = OvsDatapath::with_config(
        port_pipeline(),
        config,
        Box::new(openflow::NullController::new()),
    );
    let traffic = port_traffic(flows);
    let mut ring = build_ring(&traffic);

    // Warm-up: two full passes fill the megaflow cache (and the EMC when
    // enabled) so the timed loop measures steady-state hits only.
    let mut verdicts = Vec::with_capacity(BURST);
    for _ in 0..2 {
        for chunk in ring.chunks_mut(BURST) {
            ovs_burst(&dp, chunk, &mut verdicts);
        }
    }
    let warm_micro = dp.stats.microflow_hits.packets();
    let warm_mega = dp.stats.megaflow_hits.packets();
    let warm_slow = dp.stats.slowpath_hits.packets();

    let target = measured_packets();
    let mut done = 0usize;
    let start = Instant::now();
    while done < target {
        for chunk in ring.chunks_mut(BURST) {
            ovs_burst(&dp, chunk, &mut verdicts);
        }
        done += ring.len();
    }
    let elapsed = start.elapsed();
    let ns_per_packet = elapsed.as_nanos() as f64 / done as f64;

    let micro = dp.stats.microflow_hits.packets() - warm_micro;
    let mega = dp.stats.megaflow_hits.packets() - warm_mega;
    let slow = dp.stats.slowpath_hits.packets() - warm_slow;
    let total = (micro + mega + slow).max(1) as f64;
    WorkloadResult {
        name,
        pps: 1e9 / ns_per_packet,
        ns_per_packet,
        hit_fractions: Some((
            micro as f64 / total,
            mega as f64 / total,
            slow as f64 / total,
        )),
    }
}

fn measure_eswitch(name: &'static str, flows: usize) -> WorkloadResult {
    let config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 1,
    };
    let switch = eswitch::runtime::EswitchRuntime::compile(l2::build_pipeline(&config))
        .expect("pipeline compiles");
    let traffic = l2::build_traffic(&config, flows);
    let mut ring = build_ring(&traffic);
    let mut verdicts = Vec::with_capacity(BURST);
    for chunk in ring.chunks_mut(BURST) {
        switch.process_batch_into(chunk, &mut verdicts);
        std::hint::black_box(verdicts.len());
    }
    let target = measured_packets();
    let mut done = 0usize;
    let start = Instant::now();
    while done < target {
        for chunk in ring.chunks_mut(BURST) {
            switch.process_batch_into(chunk, &mut verdicts);
            std::hint::black_box(verdicts.len());
        }
        done += ring.len();
    }
    let elapsed = start.elapsed();
    let ns_per_packet = elapsed.as_nanos() as f64 / done as f64;
    WorkloadResult {
        name,
        pps: 1e9 / ns_per_packet,
        ns_per_packet,
        hit_fractions: None,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_fastpath.json");
    let mut baselines: Vec<(String, f64)> = Vec::new();
    let mut baseline_git = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--baseline" => {
                let spec = args.next().expect("--baseline takes name=pps");
                let (name, pps) = spec.split_once('=').expect("--baseline name=pps");
                baselines.push((name.to_string(), pps.parse().expect("pps is a number")));
            }
            "--baseline-git" => baseline_git = args.next().expect("--baseline-git takes a rev"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "fastpath",
        "burst-mode cache-hierarchy throughput (BENCH_fastpath.json)",
    );

    let results = [
        measure_ovs("megaflow_hit", true, 16_384),
        measure_ovs("microflow_hit", true, 1_024),
        measure_ovs("tss_no_emc", false, 8_192),
        measure_eswitch("eswitch_l2", 8_192),
    ];

    for r in &results {
        print!(
            "{:<14} {:>12.0} pps  {:>8.1} ns/pkt",
            r.name, r.pps, r.ns_per_packet
        );
        if let Some((micro, mega, slow)) = r.hit_fractions {
            print!("  hits: micro {micro:.3} mega {mega:.3} slow {slow:.3}");
        }
        println!();
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fastpath\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"burst_size\": {BURST},");
    let _ = writeln!(json, "  \"measured_packets\": {},", measured_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"pps\": {:.0}, \"ns_per_packet\": {:.2}",
            r.name, r.pps, r.ns_per_packet
        );
        if let Some((micro, mega, slow)) = r.hit_fractions {
            let _ = write!(
                json,
                ", \"hit_fractions\": {{\"microflow\": {micro:.4}, \"megaflow\": {mega:.4}, \"slowpath\": {slow:.4}}}"
            );
        }
        json.push('}');
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    if baselines.is_empty() {
        json.push_str("  \"baseline\": null\n");
    } else {
        json.push_str("  \"baseline\": {\n");
        let _ = writeln!(json, "    \"git\": \"{baseline_git}\",");
        json.push_str("    \"note\": \"pre-change numbers measured with this same harness\",\n");
        json.push_str("    \"pps\": {");
        for (i, (name, pps)) in baselines.iter().enumerate() {
            let _ = write!(json, "\"{name}\": {pps:.0}");
            if i + 1 < baselines.len() {
                json.push_str(", ");
            }
        }
        json.push_str("}\n  },\n");
        json.push_str("  \"improvement\": {");
        let mut first = true;
        for (name, base) in &baselines {
            if let Some(r) = results.iter().find(|r| r.name == name) {
                if !first {
                    json.push_str(", ");
                }
                let _ = write!(json, "\"{name}\": {:.2}", r.pps / base);
                first = false;
            }
        }
        json.push_str("}\n");
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
