//! Fig. 9 — per-lookup running time of the direct code, compound hash and
//! linked list templates as the number of flow entries grows from 1 to 9.
//!
//! This is the measurement the paper uses to calibrate the direct-code
//! fallback constant (4 entries): direct code wins for very small tables,
//! the hash template's constant-time lookup wins beyond that, and the linked
//! list is consistently the slowest.

use std::time::Instant;

use bench_harness::{print_header, quick_mode, render_series_table, Series};
use eswitch::analysis::CompilerConfig;
use eswitch::compile::compile;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;

/// The paper's synthetic table: entry N matches
/// `vlan_vid=3, ip_src=10.0.0.3, ip_proto=17, udp_dst=N`.
fn synthetic_pipeline(entries: usize) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for n in 1..=entries as u16 {
        t.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::VlanVid, 3)
                .with_exact(
                    Field::Ipv4Src,
                    u128::from(u32::from_be_bytes([10, 0, 0, 3])),
                )
                .with_exact(Field::IpProto, 17)
                .with_exact(Field::UdpDst, u128::from(n)),
            100,
            terminal_actions(vec![Action::Output(u32::from(n) % 4)]),
        ));
    }
    p
}

/// Compiles the synthetic table while forcing a specific template via the
/// direct-code limit knob (`usize::MAX` forces direct code; 0 disables it).
fn forced_config(template: &str) -> CompilerConfig {
    match template {
        "direct" => CompilerConfig {
            direct_code_limit: usize::MAX,
            ..CompilerConfig::default()
        },
        _ => CompilerConfig {
            direct_code_limit: 0,
            ..CompilerConfig::default()
        },
    }
}

fn measure_lookup_cycles(pipeline: &Pipeline, config: &CompilerConfig, force_linked: bool) -> f64 {
    let datapath = compile(pipeline, config).expect("compiles");
    if force_linked {
        // Rebuild the single table as a linked list by re-compiling its spec
        // with the hash/LPM prerequisites artificially bypassed: simply wrap
        // the direct entries into the linked-list template.
        use eswitch::templates::table::{CompiledTable, LinkedListTable};
        let slot = datapath.slot(0).expect("table 0");
        let entries = {
            let table = slot.table.read();
            match &*table {
                CompiledTable::DirectCode(t) => t.entries().to_vec(),
                CompiledTable::LinkedList(t) => t.entries().to_vec(),
                _ => Vec::new(),
            }
        };
        if !entries.is_empty() {
            *slot.table.write() = CompiledTable::LinkedList(LinkedListTable::new(entries));
        }
    }
    // Measure lookups of the last (worst-case) entry, as the paper does with
    // its increasing-N tables.
    let n = pipeline.table(0).expect("table 0").len() as u16;
    let mut packet = PacketBuilder::udp()
        .vlan(3)
        .ipv4_src([10, 0, 0, 3])
        .udp_dst(n)
        .build();
    let iterations = if quick_mode() { 20_000 } else { 400_000 };
    // Warm up.
    for _ in 0..iterations / 10 {
        std::hint::black_box(datapath.process(&mut packet));
    }
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(datapath.process(&mut packet));
    }
    let ns = start.elapsed().as_nanos() as f64 / iterations as f64;
    ns * cpumodel::SystemProfile::paper_sut().clock_hz / 1e9
}

fn main() {
    print_header(
        "Figure 9",
        "flow lookup cost per template vs number of flow entries (1..9)",
    );
    let mut direct = Series::new("direct code");
    let mut hash = Series::new("hash");
    let mut linked = Series::new("linked list");
    for entries in 1..=9usize {
        let pipeline = synthetic_pipeline(entries);
        direct.push(
            entries as f64,
            measure_lookup_cycles(&pipeline, &forced_config("direct"), false),
        );
        hash.push(
            entries as f64,
            measure_lookup_cycles(&pipeline, &forced_config("hash"), false),
        );
        linked.push(
            entries as f64,
            measure_lookup_cycles(&pipeline, &forced_config("direct"), true),
        );
    }
    println!("running time [CPU cycles at the 2 GHz reference clock]\n");
    println!(
        "{}",
        render_series_table("flow entries", &[direct.clone(), hash.clone(), linked])
    );

    // Report the calibrated crossover, i.e. the direct-code fallback constant.
    let crossover = (1..=9)
        .find(|n| {
            let x = *n as f64;
            matches!((direct.y_at(x), hash.y_at(x)), (Some(d), Some(h)) if d > h)
        })
        .map(|n| n - 1)
        .unwrap_or(9);
    println!("calibrated direct-code fallback constant: {crossover} entries (paper: 4)");
}
