//! multicore — throughput harness for the sharded multi-worker runtime.
//!
//! Runs the PR-2 fastpath workloads through the `shard` runtime (RSS
//! dispatcher → per-worker SPSC rings → per-shard datapath replicas draining
//! 32-packet bursts) at 1, 2 and 4 worker shards, and records the results to
//! `BENCH_multicore.json` so the multi-core trajectory of the repo is a
//! committed artifact, like `BENCH_fastpath.json` is for the single-core
//! fast path:
//!
//! * `megaflow_hit`  — OVS backend, EMC thrashing, tuple-space-search bound;
//! * `microflow_hit` — OVS backend, active flows fit the per-shard EMCs;
//! * `tss_no_emc`    — OVS backend with the EMC disabled on every shard;
//! * `eswitch_l2`    — compiled ESWITCH datapath replicas on the L2 use case.
//!
//! The JSON embeds the machine's logical CPU count: the scaling ratios are
//! only meaningful when the host actually has more cores than shards (on a
//! 1-CPU container the workers time-slice and ratios hover around 1.0).
//! `ESWITCH_BENCH_QUICK=1` shrinks the measurement windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::fastpath::{port_pipeline, port_traffic};
use bench_harness::multicore::SHARD_RING_CAPACITY;
use bench_harness::{measure_sharded_throughput, print_header};
use openflow::Pipeline;
use ovsdp::OvsConfig;
use shard::BackendSpec;
use workloads::l2::{self, L2Config};
use workloads::FlowSet;

/// Worker-shard counts swept per workload.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        120
    } else {
        500
    }
}

fn warmup_packets() -> usize {
    if bench_harness::quick_mode() {
        5_000
    } else {
        25_000
    }
}

/// One of the PR-2 fastpath workloads, sharded.
struct Workload {
    name: &'static str,
    spec: BackendSpec,
    pipeline: Pipeline,
    traffic: FlowSet,
}

fn workloads() -> Vec<Workload> {
    let l2_config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 1,
    };
    vec![
        Workload {
            name: "megaflow_hit",
            spec: BackendSpec::ovs(),
            pipeline: port_pipeline(),
            traffic: port_traffic(16_384),
        },
        Workload {
            name: "microflow_hit",
            spec: BackendSpec::ovs(),
            pipeline: port_pipeline(),
            traffic: port_traffic(1_024),
        },
        Workload {
            name: "tss_no_emc",
            spec: BackendSpec::Ovs(OvsConfig {
                use_microflow: false,
                ..OvsConfig::default()
            }),
            pipeline: port_pipeline(),
            traffic: port_traffic(8_192),
        },
        Workload {
            name: "eswitch_l2",
            spec: BackendSpec::eswitch(),
            pipeline: l2::build_pipeline(&l2_config),
            traffic: l2::build_traffic(&l2_config, 8_192),
        },
    ]
}

struct Point {
    workload: &'static str,
    backend: &'static str,
    workers: usize,
    pps: f64,
}

fn main() {
    let mut out_path = String::from("BENCH_multicore.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "multicore",
        "sharded-runtime throughput, 1/2/4 worker shards (BENCH_multicore.json)",
    );

    let mut points: Vec<Point> = Vec::new();
    for workload in workloads() {
        for &workers in &WORKER_SWEEP {
            let pps = measure_sharded_throughput(
                workload.spec,
                workload.pipeline.clone(),
                &workload.traffic,
                workers,
                warmup_packets(),
                duration_ms(),
            );
            println!(
                "{:<14} {:>2} worker{}  {:>12.0} pps  {:>8.1} ns/pkt",
                workload.name,
                workers,
                if workers == 1 { " " } else { "s" },
                pps,
                1e9 / pps
            );
            points.push(Point {
                workload: workload.name,
                backend: workload.spec.label(),
                workers,
                pps,
            });
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"multicore\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"burst_size\": {},", netdev::BURST_SIZE);
    let _ = writeln!(json, "  \"ring_capacity\": {},", SHARD_RING_CAPACITY);
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_packets\": {},", warmup_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"scaling ratios need logical_cpus > workers; with fewer cores the shards time-slice\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"workers\": {}, \"pps\": {:.0}, \"ns_per_packet\": {:.2}}}",
            p.workload, p.backend, p.workers, p.pps, 1e9 / p.pps
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling_vs_1_worker\": {\n");
    let names: Vec<&str> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.workload) {
                seen.push(p.workload);
            }
        }
        seen
    };
    for (wi, name) in names.iter().enumerate() {
        let base = points
            .iter()
            .find(|p| p.workload == *name && p.workers == 1)
            .map(|p| p.pps)
            .unwrap_or(1.0);
        let _ = write!(json, "    \"{name}\": {{");
        let mut first = true;
        for p in points
            .iter()
            .filter(|p| p.workload == *name && p.workers > 1)
        {
            if !first {
                json.push_str(", ");
            }
            let _ = write!(json, "\"{}\": {:.2}", p.workers, p.pps / base);
            first = false;
        }
        json.push('}');
        json.push_str(if wi + 1 < names.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
