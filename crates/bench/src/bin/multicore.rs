//! multicore — throughput harness for the sharded multi-worker runtime.
//!
//! Runs the PR-2 fastpath workloads through the `shard` runtime (RSS
//! dispatcher → per-worker SPSC rings → per-shard datapath replicas draining
//! 32-packet bursts) at 1, 2 and 4 worker shards, and records the results to
//! `BENCH_multicore.json` so the multi-core trajectory of the repo is a
//! committed artifact, like `BENCH_fastpath.json` is for the single-core
//! fast path:
//!
//! * `megaflow_hit`  — OVS backend, EMC thrashing, tuple-space-search bound;
//! * `microflow_hit` — OVS backend, active flows fit the per-shard EMCs;
//! * `tss_no_emc`    — OVS backend with the EMC disabled on every shard;
//! * `eswitch_l2`    — compiled ESWITCH datapath replicas on the L2 use case.
//!
//! Schema v2 adds the `skew` section: a Zipfian elephant-flow workload with
//! the heavy hitters pinned to shard 0's buckets, offered three ways —
//! static indirection table, elastic rebalancer, and a uniform no-skew
//! reference. Each entry reports wall pps, the *modeled* aggregate
//! (packets over the busiest shard's busy time — the balance signal that
//! stays valid on an undersubscribed host), the busiest shard's busy-time
//! share, and the remap count.
//!
//! The JSON embeds the machine's logical CPU count: the scaling ratios are
//! only meaningful when the host actually has more cores than shards (on a
//! 1-CPU container the workers time-slice and ratios hover around 1.0).
//! `ESWITCH_BENCH_QUICK=1` shrinks the measurement windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::fastpath::{port_pipeline, port_traffic};
use bench_harness::multicore::SHARD_RING_CAPACITY;
use bench_harness::{measure_sharded_throughput, measure_skewed_throughput, print_header};
use bench_harness::{SkewConfig, SkewResult};
use openflow::Pipeline;
use ovsdp::OvsConfig;
use shard::BackendSpec;
use workloads::l2::{self, L2Config};
use workloads::FlowSet;

/// Worker-shard counts swept per workload.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        120
    } else {
        500
    }
}

fn warmup_packets() -> usize {
    if bench_harness::quick_mode() {
        5_000
    } else {
        25_000
    }
}

/// One of the PR-2 fastpath workloads, sharded.
struct Workload {
    name: &'static str,
    spec: BackendSpec,
    pipeline: Pipeline,
    traffic: FlowSet,
}

fn workloads() -> Vec<Workload> {
    let l2_config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 1,
    };
    vec![
        Workload {
            name: "megaflow_hit",
            spec: BackendSpec::ovs(),
            pipeline: port_pipeline(),
            traffic: port_traffic(16_384),
        },
        Workload {
            name: "microflow_hit",
            spec: BackendSpec::ovs(),
            pipeline: port_pipeline(),
            traffic: port_traffic(1_024),
        },
        Workload {
            name: "tss_no_emc",
            spec: BackendSpec::Ovs(OvsConfig {
                use_microflow: false,
                ..OvsConfig::default()
            }),
            pipeline: port_pipeline(),
            traffic: port_traffic(8_192),
        },
        Workload {
            name: "eswitch_l2",
            spec: BackendSpec::eswitch(),
            pipeline: l2::build_pipeline(&l2_config),
            traffic: l2::build_traffic(&l2_config, 8_192),
        },
    ]
}

struct Point {
    workload: &'static str,
    backend: &'static str,
    workers: usize,
    pps: f64,
}

/// One skew-section entry: a backend × scheduling-mode cell.
struct SkewPoint {
    backend: &'static str,
    mode: &'static str,
    result: SkewResult,
}

/// The three scheduling modes of the skew experiment, per backend.
fn skew_points() -> (SkewConfig, Vec<SkewPoint>) {
    let base = SkewConfig {
        workers: 2,
        flows: 256,
        zipf_s: 1.3,
        elephants: 8,
        warmup_packets: warmup_packets(),
        duration_ms: duration_ms(),
        rebalance: None,
        uniform: false,
    };
    let modes: [(&'static str, Option<shard::RebalanceConfig>, bool); 3] = [
        ("uniform", None, true),
        ("static", None, false),
        ("rebalanced", Some(SkewConfig::rebalance_profile()), false),
    ];
    let mut points = Vec::new();
    for (backend, spec) in [
        ("ovs", BackendSpec::ovs()),
        ("eswitch", BackendSpec::eswitch()),
    ] {
        for (mode, rebalance, uniform) in modes {
            let result = measure_skewed_throughput(
                spec,
                port_pipeline(),
                &SkewConfig {
                    rebalance,
                    uniform,
                    ..base
                },
            );
            println!(
                "skew {:<8} {:<10}  model {:>12.0} pps  busy-share {:.2}  remaps {:>3}",
                backend, mode, result.pps_model, result.max_busy_share, result.remaps
            );
            points.push(SkewPoint {
                backend,
                mode,
                result,
            });
        }
    }
    (base, points)
}

fn main() {
    let mut out_path = String::from("BENCH_multicore.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "multicore",
        "sharded-runtime throughput, 1/2/4 worker shards (BENCH_multicore.json)",
    );

    let mut points: Vec<Point> = Vec::new();
    for workload in workloads() {
        for &workers in &WORKER_SWEEP {
            let pps = measure_sharded_throughput(
                workload.spec,
                workload.pipeline.clone(),
                &workload.traffic,
                workers,
                warmup_packets(),
                duration_ms(),
            );
            println!(
                "{:<14} {:>2} worker{}  {:>12.0} pps  {:>8.1} ns/pkt",
                workload.name,
                workers,
                if workers == 1 { " " } else { "s" },
                pps,
                1e9 / pps
            );
            points.push(Point {
                workload: workload.name,
                backend: workload.spec.label(),
                workers,
                pps,
            });
        }
    }

    let (skew_config, skew) = skew_points();

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"multicore\",\n");
    json.push_str("  \"schema_version\": 2,\n");
    let _ = writeln!(json, "  \"burst_size\": {},", netdev::BURST_SIZE);
    let _ = writeln!(json, "  \"ring_capacity\": {},", SHARD_RING_CAPACITY);
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_packets\": {},", warmup_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"scaling ratios need logical_cpus > workers; with fewer cores the shards time-slice\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"workers\": {}, \"pps\": {:.0}, \"ns_per_packet\": {:.2}}}",
            p.workload, p.backend, p.workers, p.pps, 1e9 / p.pps
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling_vs_1_worker\": {\n");
    let names: Vec<&str> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.workload) {
                seen.push(p.workload);
            }
        }
        seen
    };
    for (wi, name) in names.iter().enumerate() {
        let base = points
            .iter()
            .find(|p| p.workload == *name && p.workers == 1)
            .map(|p| p.pps)
            .unwrap_or(1.0);
        let _ = write!(json, "    \"{name}\": {{");
        let mut first = true;
        for p in points
            .iter()
            .filter(|p| p.workload == *name && p.workers > 1)
        {
            if !first {
                json.push_str(", ");
            }
            let _ = write!(json, "\"{}\": {:.2}", p.workers, p.pps / base);
            first = false;
        }
        json.push('}');
        json.push_str(if wi + 1 < names.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    json.push_str("  \"skew\": {\n");
    let profile = SkewConfig::rebalance_profile();
    let _ = writeln!(
        json,
        "    \"workload\": {{\"workers\": {}, \"flows\": {}, \"zipf_s\": {}, \"elephants\": {}, \"elephant_placement\": \"pinned to shard 0 buckets\"}},",
        skew_config.workers, skew_config.flows, skew_config.zipf_s, skew_config.elephants
    );
    let _ = writeln!(
        json,
        "    \"rebalance_profile\": {{\"check_packets\": {}, \"imbalance_ratio\": {}, \"sustain\": {}, \"max_moves\": {}}},",
        profile.check_packets, profile.imbalance_ratio, profile.sustain, profile.max_moves
    );
    json.push_str(
        "    \"note\": \"pps_model = packets / busiest shard's busy time: the aggregate a core-per-shard host would sustain; valid where wall pps only measures time-slicing\",\n",
    );
    json.push_str("    \"results\": [\n");
    for (i, p) in skew.iter().enumerate() {
        let busy: Vec<String> = p
            .result
            .per_shard_busy_ms
            .iter()
            .map(|ms| format!("{ms:.1}"))
            .collect();
        let _ = write!(
            json,
            "      {{\"backend\": \"{}\", \"mode\": \"{}\", \"pps_wall\": {:.0}, \"pps_model\": {:.0}, \"max_busy_share\": {:.3}, \"remaps\": {}, \"per_shard_busy_ms\": [{}]}}",
            p.backend,
            p.mode,
            p.result.pps_wall,
            p.result.pps_model,
            p.result.max_busy_share,
            p.result.remaps,
            busy.join(", ")
        );
        json.push_str(if i + 1 < skew.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    json.push_str("    \"model_recovery_vs_uniform\": {\n");
    for (bi, backend) in ["ovs", "eswitch"].iter().enumerate() {
        let of = |mode: &str| {
            skew.iter()
                .find(|p| p.backend == *backend && p.mode == mode)
                .map(|p| p.result.pps_model)
                .unwrap_or(0.0)
        };
        let uniform = of("uniform").max(1.0);
        let _ = write!(
            json,
            "      \"{backend}\": {{\"static\": {:.2}, \"rebalanced\": {:.2}}}",
            of("static") / uniform,
            of("rebalanced") / uniform
        );
        json.push_str(if bi == 0 { ",\n" } else { "\n" });
    }
    json.push_str("    }\n");
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
