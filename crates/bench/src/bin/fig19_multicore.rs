//! Fig. 19 — packet rate as the number of packet-processing cores grows
//! (1–5), L3 routing over 2K prefixes, with 100 / 10K / 500K active flows.
//!
//! Expected shape (paper): both architectures scale close to linearly with
//! cores (per-core datapath state, no shared locks on the fast path), ESWITCH
//! roughly 5× above OVS, and the gap widening as the active flow set grows
//! because OVS's per-core caches thrash while the compiled LPM does not care.
//!
//! This harness drives the `shard` runtime end-to-end: an RSS dispatcher
//! hashes each packet's flow tuple onto a worker shard, packets cross SPSC
//! rings in bursts, and every shard drains 32-packet bursts through its own
//! datapath replica. On a host with fewer cores than workers the shards
//! time-slice and the curve flattens — the headline numbers need real cores.

use bench_harness::{
    measure_sharded_throughput, print_header, quick_mode, render_series_table, Series,
};
use shard::BackendSpec;
use workloads::l3::{self, L3Config};

fn main() {
    print_header(
        "Figure 19",
        "packet rate vs worker shards (L3 routing, 2K prefixes, 100/10K/500K flows)",
    );
    let config = L3Config {
        prefixes: 2_000,
        next_hops: 8,
        seed: 0x19,
    };
    let flow_counts: Vec<usize> = if quick_mode() {
        vec![100, 10_000]
    } else {
        vec![100, 10_000, 500_000]
    };
    let cores_sweep: Vec<usize> = (1..=5).collect();
    let duration_ms = if quick_mode() { 150 } else { 600 };
    let warmup = if quick_mode() { 5_000 } else { 30_000 };

    let mut series = Vec::new();
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        for &flows in &flow_counts {
            let traffic = l3::build_traffic(&config, flows);
            let mut s = Series::new(format!("{}({} flows)", spec.label(), flows));
            for &cores in &cores_sweep {
                let rate = measure_sharded_throughput(
                    spec,
                    l3::build_pipeline(&config),
                    &traffic,
                    cores,
                    warmup,
                    duration_ms,
                );
                s.push(cores as f64, rate);
            }
            series.push(s);
        }
    }

    println!("aggregate packet rate [pps], sharded runtime\n");
    println!("{}", render_series_table("worker shards", &series));
}
