//! Fig. 16 — mean per-packet processing latency (CPU cycles at the reference
//! 2 GHz clock) on the gateway pipeline as the active flow set grows, with
//! the analytic model's lower and upper bounds.
//!
//! Expected shape (paper): ESWITCH stays around 200 cycles/packet (~0.1 µs)
//! independent of the flow count and inside the model bounds; OVS varies from
//! a few hundred cycles up to thousands once its caches stop covering the
//! traffic.

use bench_harness::{
    flow_sweep, measure_latency_cycles, packets_per_point, print_header, render_series_table,
    warmup_packets, AnySwitch, Series, SwitchKind,
};
use eswitch::perfmodel::{CacheAssumption, CacheLevelCosts, PerformanceModel};
use eswitch::runtime::EswitchRuntime;
use workloads::gateway::{self, GatewayConfig};

fn main() {
    print_header(
        "Figure 16",
        "per-packet latency (cycles) vs active flows (gateway use case)",
    );
    let config = GatewayConfig::default();
    let sweep = flow_sweep(true);

    let mut es = Series::new("ES");
    let mut ovs = Series::new("OVS");
    for &flows in &sweep {
        let traffic = gateway::build_traffic(&config, flows);
        let es_switch = AnySwitch::build(SwitchKind::Eswitch, gateway::build_pipeline(&config));
        es.push(
            flows as f64,
            measure_latency_cycles(&es_switch, &traffic, warmup_packets(), packets_per_point()),
        );
        let ovs_switch = AnySwitch::build(SwitchKind::Ovs, gateway::build_pipeline(&config));
        ovs.push(
            flows as f64,
            measure_latency_cycles(&ovs_switch, &traffic, warmup_packets(), packets_per_point()),
        );
    }

    // Model bounds along the upstream walk.
    let runtime = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
    let estimate = PerformanceModel::new().estimate_walk(
        &runtime.datapath(),
        &[0, gateway::ce_table(0), gateway::ROUTING_TABLE],
    );
    let costs = CacheLevelCosts::default();
    let mut ub = Series::new("ES(model-ub)");
    let mut lb = Series::new("ES(model-lb)");
    for &flows in &sweep {
        // Upper latency bound = pessimistic (all-L3) cycles; lower = all-L1.
        ub.push(
            flows as f64,
            estimate.cycles_per_packet(&costs, CacheAssumption::AllL3),
        );
        lb.push(
            flows as f64,
            estimate.cycles_per_packet(&costs, CacheAssumption::AllL1),
        );
    }

    println!("CPU cycles per packet (reference 2 GHz clock)\n");
    println!(
        "{}",
        render_series_table("active flows", &[lb, es, ub, ovs])
    );
}
