//! Fig. 10 — packet rate for L2 switching over MAC tables of size 1, 10, 100
//! and 1K entries, as the active flow set grows.
//!
//! Expected shape (paper): ESWITCH stays flat near the platform limit for
//! every table size; OVS starts comparable but loses roughly half its rate by
//! ~100 active flows and keeps degrading as the flow set outgrows its caches.

use bench_harness::{
    flow_sweep, measure::rate_sweep, packets_per_point, print_header, render_series_table,
    warmup_packets, SwitchKind,
};
use workloads::l2::{self, L2Config};

fn main() {
    print_header(
        "Figure 10",
        "L2 switching packet rate vs active flows (table sizes 1/10/100/1K)",
    );
    let kinds = [SwitchKind::Eswitch, SwitchKind::Ovs];
    let sweep = flow_sweep(false);
    let mut all_series = Vec::new();
    for table_size in [1usize, 10, 100, 1_000] {
        let config = L2Config {
            table_size,
            ports: 4,
            seed: 0x10 + table_size as u64,
        };
        let series = rate_sweep(
            &format!("{table_size}"),
            &kinds,
            &sweep,
            || l2::build_pipeline(&config),
            |flows| l2::build_traffic(&config, flows),
            warmup_packets(),
            packets_per_point(),
        );
        all_series.extend(series);
    }
    println!("packet rate [pps]\n");
    println!("{}", render_series_table("active flows", &all_series));
}
