//! Utility: compile any of the built-in use cases and dump the generated
//! datapath — the template chosen per table, the pseudo-assembly listing, the
//! action-set sharing statistics and the Fig. 20-style cost estimate.
//!
//! Usage: `cargo run -p eswitch-bench --bin show_datapath -- [l2|l3|lb|gateway]`

use bench_harness::print_header;
use eswitch::perfmodel::PerformanceModel;
use eswitch::runtime::EswitchRuntime;
use openflow::Pipeline;

fn pipeline_for(name: &str) -> Pipeline {
    match name {
        "l2" => workloads::l2::build_pipeline(&workloads::l2::L2Config {
            table_size: 16,
            ports: 4,
            seed: 1,
        }),
        "l3" => workloads::l3::build_pipeline(&workloads::l3::L3Config {
            prefixes: 32,
            next_hops: 4,
            seed: 1,
        }),
        "lb" => workloads::load_balancer::build_pipeline(
            &workloads::load_balancer::LoadBalancerConfig {
                services: 4,
                seed: 1,
            },
        ),
        _ => workloads::gateway::build_pipeline(&workloads::gateway::GatewayConfig {
            ces: 2,
            users_per_ce: 3,
            routing_prefixes: 64,
            seed: 1,
            preinstall_users: true,
        }),
    }
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gateway".to_string());
    print_header(
        "show_datapath",
        &format!("compiled datapath dump for the '{which}' use case"),
    );
    let pipeline = pipeline_for(&which);
    println!(
        "input pipeline: {} tables, {} entries",
        pipeline.table_count(),
        pipeline.entry_count()
    );
    let runtime = EswitchRuntime::compile(pipeline).expect("use case compiles");
    let datapath = runtime.datapath();

    println!("\ntemplates:");
    for (id, kind) in datapath.template_kinds() {
        let entries = datapath.slot(id).map(|s| s.table.read().len()).unwrap_or(0);
        println!("  table {id:>3}: {kind:?} ({entries} entries)");
    }
    println!(
        "\ndata-structure footprint: {} bytes",
        datapath.memory_footprint()
    );

    let estimate = PerformanceModel::new().estimate(&datapath);
    println!("\n{}", estimate.render_table());

    println!("--- generated datapath (pseudo-assembly) ---");
    println!("{}", datapath.disassemble());
}
