//! Fig. 12 — packet rate for the load-balancer use case over 1, 10 and 100
//! web services, as the active flow set grows.
//!
//! The controller-emitted pipeline is a single heterogeneous table (Fig. 7a);
//! ESWITCH is run with table decomposition enabled so the compiler promotes
//! it to the multi-stage form (Fig. 7b). The paper's shape: ESWITCH flat,
//! OVS degrading with the flow count.

use bench_harness::{
    flow_sweep, measure::rate_sweep, packets_per_point, print_header, render_series_table,
    warmup_packets, SwitchKind,
};
use workloads::load_balancer::{self, LoadBalancerConfig};

fn main() {
    print_header(
        "Figure 12",
        "load balancer packet rate vs active flows (1/10/100 services)",
    );
    let kinds = [SwitchKind::EswitchDecomposed, SwitchKind::Ovs];
    let sweep = flow_sweep(false);
    let mut all_series = Vec::new();
    for services in [1usize, 10, 100] {
        let config = LoadBalancerConfig {
            services,
            seed: 0x12 + services as u64,
        };
        let series = rate_sweep(
            &format!("{services}"),
            &kinds,
            &sweep,
            || load_balancer::build_pipeline(&config),
            |flows| load_balancer::build_traffic(&config, flows),
            warmup_packets(),
            packets_per_point(),
        );
        all_series.extend(series);
    }
    println!("packet rate [pps]\n");
    println!("{}", render_series_table("active flows", &all_series));
}
