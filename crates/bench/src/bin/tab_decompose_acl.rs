//! §3.2 decomposition stress test — decomposing an arbitrarily wildcarded
//! five-tuple ACL ("snort community rules, stripped to OpenFlow compatible
//! rules") into single-field exact-match tables.
//!
//! Paper reference points: 72 active rules decompose into 50 tables; 369
//! rules (with obsolete ones) into 197 tables. The rule set here is a
//! synthetic equivalent with the same structure (exact-or-wildcard
//! five-tuples), so the absolute counts differ, but the qualitative result —
//! table count stays within a small factor of the rule count and each
//! resulting table is template friendly — is what the experiment checks.

use bench_harness::print_header;
use eswitch::analysis::{select_template, CompilerConfig, TemplateKind};
use eswitch::decompose::{decompose_pipeline_with, DecomposeStats};
use openflow::Pipeline;
use workloads::acl::{generate_acl_table, AclConfig};

fn run(rules: usize) -> DecomposeStats {
    let table = generate_acl_table(&AclConfig {
        rules,
        ..AclConfig::default()
    });
    let mut pipeline = Pipeline::new();
    pipeline.add_table(table);
    let config = CompilerConfig {
        enable_decomposition: true,
        ..CompilerConfig::default()
    };
    let result = decompose_pipeline_with(&pipeline, &config);
    result
        .pipeline
        .validate()
        .expect("decomposed pipeline is well formed");

    // Every resulting table must fit a fast template.
    let mut linked = 0;
    for t in result.pipeline.tables() {
        if select_template(t, &config) == TemplateKind::LinkedList {
            linked += 1;
        }
    }
    assert_eq!(linked, 0, "decomposition left linked-list tables behind");
    result.stats
}

fn main() {
    print_header(
        "Table (§3.2)",
        "flow-table decomposition of a five-tuple ACL into exact-match stages",
    );
    println!(
        "{:<12}{:>16}{:>16}{:>18}",
        "ACL rules", "tables out", "entries out", "paper reference"
    );
    for (rules, reference) in [(72usize, "50 tables"), (369, "197 tables")] {
        let stats = run(rules);
        println!(
            "{:<12}{:>16}{:>16}{:>18}",
            rules, stats.output_tables, stats.output_entries, reference
        );
    }
    println!("\n(each output table is single-field and template friendly; the synthetic");
    println!(" rule set reproduces the structure, not the exact contents, of the snort set)");
}
