//! Fig. 14 — fraction of packets forwarded at each level of the OVS cache
//! hierarchy (microflow cache, megaflow cache, `vswitchd` slow path) as the
//! active flow set grows, on the gateway use case.
//!
//! Expected shape (paper): with few flows essentially everything is answered
//! by the microflow cache; as the flow set grows processing shifts first to
//! the megaflow cache and then increasingly to the slow path.

use bench_harness::{
    flow_sweep, packets_per_point, print_header, render_series_table, warmup_packets, Series,
};
use ovsdp::OvsDatapath;
use workloads::gateway::{self, GatewayConfig};

fn main() {
    print_header(
        "Figure 14",
        "OVS cache-hierarchy hit fractions vs active flows (gateway use case)",
    );
    let config = GatewayConfig::default();
    let sweep = flow_sweep(true);

    let mut micro = Series::new("microflow");
    let mut mega = Series::new("megaflow");
    let mut slow = Series::new("vswitchd");
    for &flows in &sweep {
        let dp = OvsDatapath::new(gateway::build_pipeline(&config));
        let traffic = gateway::build_traffic(&config, flows);
        // Warm up, then reset the statistics so only steady state is counted.
        for i in 0..warmup_packets() {
            dp.process(&mut traffic.packet(i));
        }
        dp.stats.microflow_hits.reset();
        dp.stats.megaflow_hits.reset();
        dp.stats.slowpath_hits.reset();
        for i in 0..packets_per_point() {
            dp.process(&mut traffic.packet(warmup_packets() + i));
        }
        let (m, g, s) = dp.stats.hit_fractions();
        micro.push(flows as f64, m);
        mega.push(flows as f64, g);
        slow.push(flows as f64, s);
        println!(
            "  flows {:>8}: megaflows cached = {}, microflow entries = {}",
            flows,
            dp.megaflow_count(),
            dp.microflow_count()
        );
    }
    println!("\ncache hit fraction per packet\n");
    println!(
        "{}",
        render_series_table("active flows", &[micro, mega, slow])
    );
}
