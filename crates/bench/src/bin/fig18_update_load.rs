//! Fig. 18 — packet rate under a concurrent flow-update load, normalised to
//! the unloaded rate, on the gateway use case with 1K active flows.
//!
//! The update stream modifies the last-level routing table (table 110), as in
//! the paper. Expected shape: ESWITCH keeps ≥80–95 % of its unloaded rate
//! even at very high update intensities because updates are per-table and
//! mostly non-destructive; OVS loses most of its throughput already at
//! moderate intensities because every update invalidates the entire megaflow
//! cache and the traffic has to be re-classified through the slow path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_harness::{print_header, quick_mode, render_series_table, AnySwitch, Series, SwitchKind};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowMod};
use workloads::gateway::{self, GatewayConfig};

const ACTIVE_FLOWS: usize = 1_000;

/// Measures packets/second while a second thread applies `updates_per_sec`
/// route add/delete operations against the routing table.
fn rate_under_updates(kind: SwitchKind, updates_per_sec: u64, duration_ms: u64) -> f64 {
    let config = GatewayConfig::default();
    let switch = Arc::new(AnySwitch::build(kind, gateway::build_pipeline(&config)));
    let traffic = gateway::build_traffic(&config, ACTIVE_FLOWS);

    // Warm up.
    for i in 0..20_000 {
        switch.process(&mut traffic.packet(i));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));
    let updater = {
        let switch = Arc::clone(&switch);
        let stop = Arc::clone(&stop);
        let applied = Arc::clone(&applied);
        std::thread::spawn(move || {
            if updates_per_sec == 0 {
                return;
            }
            let interval = Duration::from_secs_f64(1.0 / updates_per_sec as f64);
            let mut next = Instant::now();
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let prefix = u32::from_be_bytes([203, 0, (i % 250) as u8, 0]);
                let add = FlowMod::add(
                    gateway::ROUTING_TABLE,
                    FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(prefix), 24),
                    134,
                    terminal_actions(vec![Action::Output(1)]),
                );
                switch.flow_mod(&add);
                applied.fetch_add(1, Ordering::Relaxed);
                i += 1;
                next += interval;
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                } else {
                    next = now;
                }
            }
        })
    };

    let start = Instant::now();
    let mut processed = 0u64;
    let mut i = 20_000usize;
    while start.elapsed() < Duration::from_millis(duration_ms) {
        for _ in 0..256 {
            let mut packet = traffic.packet(i);
            std::hint::black_box(switch.process(&mut packet));
            i += 1;
            processed += 1;
        }
    }
    let rate = processed as f64 / start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    updater.join().expect("updater thread");
    rate
}

fn main() {
    print_header(
        "Figure 18",
        "normalised packet rate vs flow-update intensity (gateway, 1K active flows)",
    );
    let duration_ms = if quick_mode() { 250 } else { 1_000 };
    let intensities: Vec<u64> = if quick_mode() {
        vec![0, 10, 100, 1_000]
    } else {
        vec![0, 1, 10, 100, 1_000, 10_000, 100_000]
    };

    let mut series = Vec::new();
    for kind in [SwitchKind::Eswitch, SwitchKind::Ovs] {
        let unloaded = rate_under_updates(kind, 0, duration_ms);
        let mut s = Series::new(kind.label());
        for &ups in &intensities {
            let rate = if ups == 0 {
                unloaded
            } else {
                rate_under_updates(kind, ups, duration_ms)
            };
            s.push(ups.max(1) as f64, rate / unloaded);
        }
        println!(
            "  {} unloaded rate: {:.2} Mpps-equivalent",
            kind.label(),
            unloaded / 1e6
        );
        series.push(s);
    }

    println!("\nnormalised packet rate (relative to the unloaded case)\n");
    println!("{}", render_series_table("updates per second", &series));
}
