//! Fig. 11 — packet rate for L3 routing over 1, 10 and 1K IP prefixes, as the
//! active flow set grows.
//!
//! Expected shape (paper): ESWITCH compiles the routing table into the LPM
//! template and stays flat; OVS degrades with the active flow count because
//! its megaflow cache cannot express longest-prefix aggregates compactly.

use bench_harness::{
    flow_sweep, measure::rate_sweep, packets_per_point, print_header, render_series_table,
    warmup_packets, SwitchKind,
};
use workloads::l3::{self, L3Config};

fn main() {
    print_header(
        "Figure 11",
        "L3 routing packet rate vs active flows (1/10/1K prefixes)",
    );
    let kinds = [SwitchKind::Eswitch, SwitchKind::Ovs];
    let sweep = flow_sweep(false);
    let mut all_series = Vec::new();
    for prefixes in [1usize, 10, 1_000] {
        let config = L3Config {
            prefixes,
            next_hops: 8,
            seed: 0x11 + prefixes as u64,
        };
        let series = rate_sweep(
            &format!("{prefixes}"),
            &kinds,
            &sweep,
            || l3::build_pipeline(&config),
            |flows| l3::build_traffic(&config, flows),
            warmup_packets(),
            packets_per_point(),
        );
        all_series.extend(series);
    }
    println!("packet rate [pps]\n");
    println!("{}", render_series_table("active flows", &all_series));
}
