//! fig_reactive — the reactive slow path of the sharded runtime under a
//! miss storm, recorded to `BENCH_reactive.json`.
//!
//! The classic reactive workload: a seeded MAC table whose misses punt to a
//! controller that installs the missing rule. On the sharded runtime the
//! punts travel the asynchronous controller channel — per-shard punt rings,
//! a controller thread, flow-mods published through the §3.4 planner, and
//! packet-outs re-injected through RSS. Per backend, three phases over the
//! same feeds:
//!
//! * **quiescent** — known flows only (the pps baseline);
//! * **storm** — a set of never-seen flows joins until every one is
//!   installed and stops punting: reactive flow-setup rate, punt round-trip
//!   latency and pps retained under the storm;
//! * **converged** — the known feed again: pps retained once the punt
//!   machinery is idle (the acceptance gate: ≥90% of quiescent).
//!
//! `ESWITCH_BENCH_QUICK=1` shrinks the windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::print_header;
use bench_harness::reactive::{
    measure_reactive_load, ReactiveLoadConfig, ReactiveLoadPoint, RING_CAPACITY,
};
use shard::BackendSpec;

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        120
    } else {
        600
    }
}

fn warmup_packets() -> usize {
    if bench_harness::quick_mode() {
        4_000
    } else {
        20_000
    }
}

fn storm_flows() -> usize {
    if bench_harness::quick_mode() {
        128
    } else {
        512
    }
}

struct Point {
    backend: &'static str,
    result: ReactiveLoadPoint,
}

fn main() {
    let mut out_path = String::from("BENCH_reactive.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "Reactive slow path",
        "async controller channel: punt RTT, flow-setup rate, pps under miss storms (BENCH_reactive.json)",
    );

    let workers = 2usize;
    let known_flows = 1_024usize;
    let mut points: Vec<Point> = Vec::new();
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        let result = measure_reactive_load(
            spec,
            ReactiveLoadConfig {
                workers,
                known_flows,
                storm_flows: storm_flows(),
                warmup: warmup_packets(),
                duration_ms: duration_ms(),
            },
        );
        println!(
            "{:<4} quiescent {:>12.0} pps | storm {:>12.0} pps ({:>5.1}%) | converged {:>12.0} pps ({:>5.1}%) | {:>7.0} setups/s | punt RTT mean {:>7.1}µs max {:>8.1}µs",
            spec.label(),
            result.quiescent_pps,
            result.storm_pps,
            result.retained_storm() * 100.0,
            result.converged_pps,
            result.retained_converged() * 100.0,
            result.flow_setup_per_sec,
            result.rtt_mean_us(),
            result.rtt_max_us(),
        );
        let r = result.reactive;
        println!(
            "     punts: {} punted, {} suppressed, {} overflow, {} answered, {} flow-mods; classes {}/{}/{}",
            r.punted,
            r.suppressed,
            r.overflow,
            r.answered,
            r.flow_mods,
            result.classes.incremental,
            result.classes.per_table,
            result.classes.full,
        );
        points.push(Point {
            backend: spec.label(),
            result,
        });
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fig_reactive\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"ring_capacity\": {RING_CAPACITY},");
    let _ = writeln!(json, "  \"known_flows\": {known_flows},");
    let _ = writeln!(json, "  \"storm_flows\": {},", storm_flows());
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_packets\": {},", warmup_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"punt_rtt = enqueue-to-decisions-applied; flow_setup_per_sec = storm flows / time to zero punts; retained_converged = converged_pps / quiescent_pps (acceptance gate >= 0.9); punts counters obey punted+overflow+suppressed == attempts and answered == punted\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.result;
        let s = &r.reactive;
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"quiescent_pps\": {:.0}, \"storm_pps\": {:.0}, \"converged_pps\": {:.0}, \"retained_storm\": {:.4}, \"retained_converged\": {:.4}, \"flow_setup_per_sec\": {:.1}, \"punt_rtt_mean_us\": {:.2}, \"punt_rtt_max_us\": {:.2}, \"punts\": {{\"punted\": {}, \"suppressed\": {}, \"overflow\": {}, \"answered\": {}, \"flow_mods\": {}, \"reinjected\": {}, \"injected\": {}}}, \"classes\": {{\"incremental\": {}, \"per_table\": {}, \"full\": {}}}}}",
            p.backend,
            r.quiescent_pps,
            r.storm_pps,
            r.converged_pps,
            r.retained_storm(),
            r.retained_converged(),
            r.flow_setup_per_sec,
            r.rtt_mean_us(),
            r.rtt_max_us(),
            s.punted,
            s.suppressed,
            s.overflow,
            s.answered,
            s.flow_mods,
            s.reinjected,
            s.injected,
            r.classes.incremental,
            r.classes.per_table,
            r.classes.full,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
