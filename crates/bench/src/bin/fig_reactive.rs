//! fig_reactive — the reactive slow path of the sharded runtime under a
//! miss storm and under adversarial punt storms, recorded to
//! `BENCH_reactive.json` (schema v2).
//!
//! The classic reactive workload: a seeded MAC table whose misses punt to a
//! controller that installs the missing rule. On the sharded runtime the
//! punts travel the asynchronous controller channel — a matrix of SPSC punt
//! rings drained by N flow-signature-partitioned controller workers,
//! flow-mods published through the §3.4 planner, and packet-outs
//! re-injected through per-worker RSS dispatchers. Per backend:
//!
//! * **controller-worker sweep** — the three-phase miss-storm measurement
//!   (quiescent / storm / converged) at 1 and 2 controller workers, so the
//!   drain side's scaling is on record next to the single-thread baseline;
//! * **adversarial storm** — a victim tenant's steady feed and fresh-flow
//!   installs while one source cycles thousands of never-installable flows
//!   (`measure_punt_storm`), under the hardened admission policy (and, in
//!   full mode, the open policy for contrast). Victim bursts are timed
//!   against each attacker pass's in-flight punt backlog — the slow-path
//!   cost the defense can actually return. The acceptance gate is the
//!   victim retaining ≥70% of its no-attack burst rate under the hardened
//!   policy, with the per-layer shed counters accounting for every
//!   rejection (the identities are asserted at every shutdown).
//!
//! `ESWITCH_BENCH_QUICK=1` shrinks the windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::print_header;
use bench_harness::reactive::{
    measure_punt_storm, measure_reactive_load, ReactiveLoadConfig, ReactiveLoadPoint, StormConfig,
    StormPoint, RING_CAPACITY,
};
use shard::{BackendSpec, ControllerWorkerSnapshot, PuntPolicy};

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        120
    } else {
        600
    }
}

fn warmup_packets() -> usize {
    if bench_harness::quick_mode() {
        4_000
    } else {
        20_000
    }
}

fn storm_flows() -> usize {
    if bench_harness::quick_mode() {
        128
    } else {
        512
    }
}

fn attacker_flows() -> usize {
    if bench_harness::quick_mode() {
        1_024
    } else {
        4_096
    }
}

/// The hardened admission policy every storm run gates on: 200 punts/s per
/// source, a 20K/s aggregate controller budget.
fn hardened_policy() -> PuntPolicy {
    PuntPolicy::hardened(200, 20_000)
}

struct LoadPoint {
    backend: &'static str,
    controller_workers: usize,
    result: ReactiveLoadPoint,
}

struct StormRun {
    backend: &'static str,
    policy: &'static str,
    controller_workers: usize,
    result: StormPoint,
}

fn per_worker_json(per_worker: &[ControllerWorkerSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, w) in per_worker.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"drained\": {}, \"rtt_mean_us\": {:.2}, \"rtt_max_us\": {:.2}}}",
            w.drained,
            w.rtt_mean_nanos() / 1_000.0,
            w.rtt_max_nanos as f64 / 1_000.0,
        );
    }
    out.push(']');
    out
}

fn main() {
    let mut out_path = String::from("BENCH_reactive.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "Reactive slow path",
        "sharded controller channel: punt RTT, flow-setup scaling, victim pps under punt storms (BENCH_reactive.json)",
    );

    let workers = 2usize;
    let known_flows = 1_024usize;
    let mut points: Vec<LoadPoint> = Vec::new();
    for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
        for controller_workers in [1usize, 2] {
            let result = measure_reactive_load(
                spec,
                ReactiveLoadConfig {
                    workers,
                    controller_workers,
                    known_flows,
                    storm_flows: storm_flows(),
                    warmup: warmup_packets(),
                    duration_ms: duration_ms(),
                },
            );
            println!(
                "{:<4} cw={} quiescent {:>12.0} pps | storm {:>12.0} pps ({:>5.1}%) | converged {:>12.0} pps ({:>5.1}%) | {:>7.0} setups/s | punt RTT mean {:>7.1}µs max {:>8.1}µs",
                spec.label(),
                controller_workers,
                result.quiescent_pps,
                result.storm_pps,
                result.retained_storm() * 100.0,
                result.converged_pps,
                result.retained_converged() * 100.0,
                result.flow_setup_per_sec,
                result.rtt_mean_us(),
                result.rtt_max_us(),
            );
            let r = &result.reactive;
            let drains: Vec<u64> = r.per_worker.iter().map(|w| w.drained).collect();
            println!(
                "     punts: {} punted, {} suppressed, {} overflow, {} answered, {} flow-mods, {} reinjected; per-worker drains {:?}; classes {}/{}/{}",
                r.punted,
                r.suppressed,
                r.overflow,
                r.answered,
                r.flow_mods,
                r.reinjected,
                drains,
                result.classes.incremental,
                result.classes.per_table,
                result.classes.full,
            );
            points.push(LoadPoint {
                backend: spec.label(),
                controller_workers,
                result,
            });
        }
    }

    // The adversarial storm: hardened policy on both backends; in full mode
    // the eswitch backend also runs the open policy, the no-defense
    // baseline the hardened numbers are read against.
    let mut storms: Vec<StormRun> = Vec::new();
    let mut storm_specs: Vec<(BackendSpec, &'static str, PuntPolicy)> = vec![
        (BackendSpec::eswitch(), "hardened", hardened_policy()),
        (BackendSpec::ovs(), "hardened", hardened_policy()),
    ];
    if !bench_harness::quick_mode() {
        storm_specs.push((BackendSpec::eswitch(), "open", PuntPolicy::default()));
    }
    for (spec, policy_label, policy) in storm_specs {
        let controller_workers = 2usize;
        let result = measure_punt_storm(
            spec,
            StormConfig {
                workers,
                controller_workers,
                victim_flows: known_flows,
                fresh_victim_flows: 32,
                attacker_flows: attacker_flows(),
                warmup: warmup_packets(),
                duration_ms: duration_ms(),
                policy,
            },
        );
        let s = &result.reactive;
        println!(
            "{:<4} storm[{}] victim {:>12.0} -> {:>12.0} pps (retained {:>5.1}%) | installs in {:>7.1}ms | sheds: {} source, {} aggregate, {} overflow ({} attacker packets)",
            spec.label(),
            policy_label,
            result.victim_baseline_pps,
            result.victim_storm_pps,
            result.victim_retained() * 100.0,
            result.victim_install_ms,
            s.shed_source,
            s.shed_aggregate,
            s.overflow,
            result.attacker_offered,
        );
        if policy_label == "hardened" {
            assert!(
                result.victim_retained() >= 0.7,
                "{} hardened storm run retained only {:.1}% of the victim's burst rate",
                spec.label(),
                result.victim_retained() * 100.0
            );
        }
        storms.push(StormRun {
            backend: spec.label(),
            policy: policy_label,
            controller_workers,
            result,
        });
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fig_reactive\",\n");
    json.push_str("  \"schema_version\": 2,\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"ring_capacity\": {RING_CAPACITY},");
    let _ = writeln!(json, "  \"known_flows\": {known_flows},");
    let _ = writeln!(json, "  \"storm_flows\": {},", storm_flows());
    let _ = writeln!(json, "  \"attacker_flows\": {},", attacker_flows());
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_packets\": {},", warmup_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"punt_rtt = enqueue-to-decisions-applied; flow_setup_per_sec = storm flows / time to zero punts; every shutdown asserts attempts == admitted + suppressed, admitted == punted + overflow + shed_source + shed_aggregate, answered == punted, injected == reinjected, and punted == sum(per_worker.drained); storm runs cycle attacker_flows never-installable flows from one source signature against a victim tenant, timing victim bursts against each attacker pass's in-flight punt backlog (the attacker's own fast-path share is outside the victim clock; gate: hardened victim_retained >= 0.7)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.result;
        let s = &r.reactive;
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"controller_workers\": {}, \"quiescent_pps\": {:.0}, \"storm_pps\": {:.0}, \"converged_pps\": {:.0}, \"retained_storm\": {:.4}, \"retained_converged\": {:.4}, \"flow_setup_per_sec\": {:.1}, \"punt_rtt_mean_us\": {:.2}, \"punt_rtt_max_us\": {:.2}, \"punts\": {{\"punted\": {}, \"suppressed\": {}, \"overflow\": {}, \"shed_source\": {}, \"shed_aggregate\": {}, \"answered\": {}, \"flow_mods\": {}, \"reinjected\": {}, \"injected\": {}}}, \"per_worker\": {}, \"classes\": {{\"incremental\": {}, \"per_table\": {}, \"full\": {}}}}}",
            p.backend,
            p.controller_workers,
            r.quiescent_pps,
            r.storm_pps,
            r.converged_pps,
            r.retained_storm(),
            r.retained_converged(),
            r.flow_setup_per_sec,
            r.rtt_mean_us(),
            r.rtt_max_us(),
            s.punted,
            s.suppressed,
            s.overflow,
            s.shed_source,
            s.shed_aggregate,
            s.answered,
            s.flow_mods,
            s.reinjected,
            s.injected,
            per_worker_json(&s.per_worker),
            r.classes.incremental,
            r.classes.per_table,
            r.classes.full,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"storm\": [\n");
    for (i, run) in storms.iter().enumerate() {
        let r = &run.result;
        let s = &r.reactive;
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"policy\": \"{}\", \"controller_workers\": {}, \"victim_baseline_pps\": {:.0}, \"victim_storm_pps\": {:.0}, \"victim_retained\": {:.4}, \"victim_install_ms\": {:.1}, \"attacker_offered\": {}, \"punts\": {{\"punted\": {}, \"suppressed\": {}, \"overflow\": {}, \"shed_source\": {}, \"shed_aggregate\": {}, \"answered\": {}, \"flow_mods\": {}, \"reinjected\": {}, \"injected\": {}}}, \"per_worker\": {}}}",
            run.backend,
            run.policy,
            run.controller_workers,
            r.victim_baseline_pps,
            r.victim_storm_pps,
            r.victim_retained(),
            r.victim_install_ms,
            r.attacker_offered,
            s.punted,
            s.suppressed,
            s.overflow,
            s.shed_source,
            s.shed_aggregate,
            s.answered,
            s.flow_mods,
            s.reinjected,
            s.injected,
            per_worker_json(&s.per_worker),
        );
        json.push_str(if i + 1 < storms.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path} (counter identities verified at every shutdown)");
}
