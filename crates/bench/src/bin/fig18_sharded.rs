//! fig18_sharded — update cost of the *sharded* runtime under concurrent
//! flow-mod load (Fig. 18's experiment run against the production deployment
//! shape), recorded to `BENCH_updates.json`.
//!
//! For each workload × backend, two control-plane strategies are measured
//! with the same harness:
//!
//! * `planned` — the §3.4 update planner: incremental/per-table epoch
//!   publication with structural sharing, and delta-aware cache
//!   invalidation on OVS shards;
//! * `full_recompile` — the pre-planner baseline: every flow-mod recompiles
//!   the whole state and (on OVS) flushes every shard's cache hierarchy.
//!
//! Workloads:
//!
//! * `l2_hash` — a 1K-entry MAC table (compound-hash template); churn =
//!   template-shaped MAC adds/strict-deletes. Both backends can absorb
//!   this incrementally.
//! * `gateway_routes` — the access-gateway use case; churn = /24 route
//!   adds/deletes against the 10K-prefix routing table (the Fig. 18 update
//!   stream). ESWITCH absorbs these as in-place LPM edits; the gateway
//!   rewrites matched fields mid-pipeline, so OVS correctly refuses the
//!   delta and pays the full flush — the paper's contrast.
//!
//! Reported per point: sustained updates/sec, pps retained vs. quiescent,
//! and the update-class histogram; plus, per workload × backend, the
//! planned-vs-baseline updates/sec ratio (the PR's ≥3× acceptance gate on
//! the ESWITCH backend).
//!
//! `ESWITCH_BENCH_QUICK=1` shrinks the measurement windows for CI smoke runs.

use std::fmt::Write as _;

use bench_harness::print_header;
use bench_harness::updates::{
    measure_update_load, UpdateLoadConfig, UpdateLoadPoint, RING_CAPACITY,
};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowMod, Pipeline};
use shard::{BackendSpec, UpdateStrategy};
use workloads::gateway::{self, GatewayConfig};
use workloads::l2::{self, L2Config};
use workloads::FlowSet;

fn duration_ms() -> u64 {
    if bench_harness::quick_mode() {
        150
    } else {
        700
    }
}

fn warmup_packets() -> usize {
    if bench_harness::quick_mode() {
        4_000
    } else {
        20_000
    }
}

struct Workload {
    name: &'static str,
    pipeline: Pipeline,
    traffic: FlowSet,
    make_flow_mod: Box<dyn Fn(u64) -> FlowMod + Send + Sync>,
}

fn workloads() -> Vec<Workload> {
    let l2_config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 1,
    };
    let gw_config = GatewayConfig::default();
    vec![
        Workload {
            name: "l2_hash",
            pipeline: l2::build_pipeline(&l2_config),
            traffic: l2::build_traffic(&l2_config, 2_048),
            // Template-shaped MAC churn in a range disjoint from the
            // installed table: alternate add / strict delete.
            make_flow_mod: Box::new(|n| {
                let mac = 0x0200_0000_8000u64 + (n / 2) % 512;
                let m = FlowMatch::any().with_exact(Field::EthDst, u128::from(mac));
                if n.is_multiple_of(2) {
                    FlowMod::add(0, m, 10, terminal_actions(vec![Action::Output(1)]))
                } else {
                    FlowMod::delete_strict(0, m, 10)
                }
            }),
        },
        Workload {
            name: "gateway_routes",
            pipeline: gateway::build_pipeline(&gw_config),
            traffic: gateway::build_traffic(&gw_config, 1_000),
            // The Fig. 18 update stream: /24 route add/delete cycling over
            // 203.0.x.0 against the last-level routing table.
            make_flow_mod: Box::new(|n| {
                let prefix = u32::from_be_bytes([203, 0, ((n / 2) % 250) as u8, 0]);
                let m = FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(prefix), 24);
                if n.is_multiple_of(2) {
                    FlowMod::add(
                        gateway::ROUTING_TABLE,
                        m,
                        134,
                        terminal_actions(vec![Action::Output(1)]),
                    )
                } else {
                    FlowMod::delete_strict(gateway::ROUTING_TABLE, m, 134)
                }
            }),
        },
    ]
}

struct Point {
    workload: &'static str,
    backend: &'static str,
    strategy: &'static str,
    result: UpdateLoadPoint,
}

fn strategy_label(s: UpdateStrategy) -> &'static str {
    match s {
        UpdateStrategy::Planned => "planned",
        UpdateStrategy::FullRecompile => "full_recompile",
    }
}

fn main() {
    let mut out_path = String::from("BENCH_updates.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "Figure 18 (sharded)",
        "sharded-runtime update cost: planner vs full-recompile baseline (BENCH_updates.json)",
    );

    let workers = 2usize;
    let mut points: Vec<Point> = Vec::new();
    for workload in workloads() {
        for spec in [BackendSpec::eswitch(), BackendSpec::ovs()] {
            for strategy in [UpdateStrategy::Planned, UpdateStrategy::FullRecompile] {
                let result = measure_update_load(
                    spec,
                    workload.pipeline.clone(),
                    &workload.traffic,
                    UpdateLoadConfig {
                        workers,
                        strategy,
                        warmup: warmup_packets(),
                        duration_ms: duration_ms(),
                    },
                    &workload.make_flow_mod,
                );
                println!(
                    "{:<16} {:<4} {:<15} {:>9.0} updates/s  {:>12.0} pps loaded  {:>5.1}% retained  classes {}/{}/{}",
                    workload.name,
                    spec.label(),
                    strategy_label(strategy),
                    result.updates_per_sec,
                    result.loaded_pps,
                    result.retained() * 100.0,
                    result.classes.incremental,
                    result.classes.per_table,
                    result.classes.full,
                );
                points.push(Point {
                    workload: workload.name,
                    backend: spec.label(),
                    strategy: strategy_label(strategy),
                    result,
                });
            }
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fig18_sharded_updates\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"ring_capacity\": {RING_CAPACITY},");
    let _ = writeln!(json, "  \"duration_ms\": {},", duration_ms());
    let _ = writeln!(json, "  \"warmup_packets\": {},", warmup_packets());
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"machine\": {");
    let _ = write!(
        json,
        "\"logical_cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"updates/sec = flow-mods absorbed per second while traffic flows; retained = loaded_pps / quiescent_pps; classes = (incremental, per_table, full) epochs published during the loaded window\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.result;
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"strategy\": \"{}\", \"updates_per_sec\": {:.1}, \"quiescent_pps\": {:.0}, \"loaded_pps\": {:.0}, \"retained\": {:.4}, \"classes\": {{\"incremental\": {}, \"per_table\": {}, \"full\": {}}}}}",
            p.workload,
            p.backend,
            p.strategy,
            r.updates_per_sec,
            r.quiescent_pps,
            r.loaded_pps,
            r.retained(),
            r.classes.incremental,
            r.classes.per_table,
            r.classes.full,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"planned_vs_full_recompile_updates_ratio\": {\n");
    let mut combos: Vec<(&str, &str)> = Vec::new();
    for p in &points {
        if !combos.contains(&(p.workload, p.backend)) {
            combos.push((p.workload, p.backend));
        }
    }
    for (ci, (workload, backend)) in combos.iter().enumerate() {
        let rate = |strategy: &str| {
            points
                .iter()
                .find(|p| {
                    p.workload == *workload && p.backend == *backend && p.strategy == strategy
                })
                .map(|p| p.result.updates_per_sec)
                .unwrap_or(0.0)
        };
        let baseline = rate("full_recompile").max(1e-9);
        let _ = write!(
            json,
            "    \"{workload}/{backend}\": {:.2}",
            rate("planned") / baseline
        );
        json.push_str(if ci + 1 < combos.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
