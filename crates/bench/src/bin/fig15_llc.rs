//! Fig. 15 — last-level-cache misses per packet as the active flow set grows
//! (gateway use case).
//!
//! `perf` hardware counters are not portable, so this harness reproduces the
//! figure through the cache model of the `cpumodel` crate: each datapath
//! reports how many data-structure accesses it makes per packet and how large
//! the working set actually exercised by the traffic is; the hierarchy model
//! turns that into LLC misses per packet. Expected shape (paper): ESWITCH
//! stays around or below ~0.1 misses/packet across the sweep, OVS climbs past
//! 1 miss/packet once the flow set outgrows its caches.

use bench_harness::{
    flow_sweep, packets_per_point, print_header, render_series_table, warmup_packets, Series,
};
use cpumodel::CacheHierarchy;
use eswitch::runtime::EswitchRuntime;
use ovsdp::OvsDatapath;
use workloads::gateway::{self, GatewayConfig};

/// Rough per-entry resident sizes of the OVS cache structures (key + mask +
/// action program bookkeeping), used for its working-set estimate.
const OVS_MEGAFLOW_ENTRY_BYTES: usize = 256;
const OVS_MICROFLOW_ENTRY_BYTES: usize = 192;
/// Per-packet auxiliary state both datapaths touch (packet data, stack).
const PER_PACKET_BYTES: usize = 256;

fn main() {
    print_header(
        "Figure 15",
        "LLC misses per packet vs active flows (gateway use case, cache model)",
    );
    let config = GatewayConfig::default();
    let hierarchy = CacheHierarchy::default();
    let sweep = flow_sweep(true);

    let mut es_series = Series::new("ES");
    let mut ovs_series = Series::new("OVS");
    for &flows in &sweep {
        // ESWITCH: the working set is the compiled tables actually touched —
        // independent of the number of active flows — plus per-packet state.
        let runtime = EswitchRuntime::compile(gateway::build_pipeline(&config)).expect("compiles");
        let traffic = gateway::build_traffic(&config, flows);
        for i in 0..warmup_packets().min(20_000) {
            runtime.process(&mut traffic.packet(i));
        }
        let es_ws = runtime.datapath().memory_footprint().min(2 * 1024 * 1024) + PER_PACKET_BYTES;
        // 3 table-template accesses per packet (demux hash, per-CE hash, LPM).
        es_series.push(flows as f64, hierarchy.llc_misses_per_packet(4.0, es_ws));

        // OVS: the working set grows with the cached megaflow/microflow
        // entries the traffic exercises, i.e. with the active flow set.
        let dp = OvsDatapath::new(gateway::build_pipeline(&config));
        for i in 0..(warmup_packets() + packets_per_point() / 4) {
            dp.process(&mut traffic.packet(i));
        }
        let ovs_ws = dp.megaflow_count() * OVS_MEGAFLOW_ENTRY_BYTES
            + dp.microflow_count() * OVS_MICROFLOW_ENTRY_BYTES
            + PER_PACKET_BYTES;
        // Key extraction + microflow probe + megaflow subtable probes.
        ovs_series.push(flows as f64, hierarchy.llc_misses_per_packet(6.0, ovs_ws));
    }

    println!("LLC-load-misses per packet (modelled)\n");
    println!(
        "{}",
        render_series_table("active flows", &[es_series, ovs_series])
    );
}
