//! fig_conntrack — throughput and capacity harness for the stateful
//! datapath, recorded to `BENCH_conntrack.json`.
//!
//! Workloads (all burst-mode, engine ticked once per burst as the sharded
//! worker loop does):
//!
//! * `stateless_baseline` — the OVS cache hierarchy in its EMC-hit regime
//!   on the stateless twin of the ACL pipeline: the yardstick the
//!   established path is measured against;
//! * `ct_established`     — same traffic through the stateful-ACL pipeline:
//!   every measured packet is an established-path conntrack hit (one index
//!   probe + LRU touch + wheel re-arm). The headline number is this
//!   workload's pps as a fraction of the baseline;
//! * `ct_established_eswitch` — the compiled datapath on the same stateful
//!   pipeline, as the ESWITCH-side comparison point;
//! * `snat_established`   — the `snat_edge` use case: every hit also
//!   source-rewrites the packet from the stored tuples;
//! * `l4_lb_established`  — the `l4_lb` use case: maglev-pinned backend,
//!   destination rewrite per packet.
//!
//! The workloads are measured **interleaved in short time slices** rather
//! than one after another: on a shared machine the attainable packet rate
//! drifts on timescales of seconds, which sequential measurement folds
//! straight into the baseline ratio. Round-robining ~millisecond slices
//! exposes every workload to the same drift, and the headline numbers use
//! the **fastest single ring pass** per workload: interference only ever
//! adds time, so the minimum over hundreds of short passes estimates the
//! undisturbed cost (the `timeit` rationale). The mean is reported
//! alongside for honesty about run conditions.
//!
//! `ct_scaffold_noct` is a control: the stateful-ACL pipeline executed
//! with the null tracker. Its gap to `stateless_baseline` prices the ct
//! *plumbing* (tuple extraction, the extra cached action) and its gap to
//! `ct_established` prices the engine itself.
//!
//! The `capacity` section fills a 2²¹-slab engine with 1.5 M distinct UDP
//! flows, proving ≥ 1 M concurrent tracked connections inside the engine's
//! fixed memory envelope, then advances virtual time past the idle timeout
//! and checks the timing wheel reclaims every one of them.
//! `ESWITCH_BENCH_QUICK=1` shrinks packet counts and the fill for CI.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bench_harness::conntrack::{
    data_ring, run_capacity, stateless_pipeline, warm_established, CapacityReport, BURST,
};
use bench_harness::print_header;
use conntrack::{CtEngine, CtStats};
use netdev::sync::Arc;
use openflow::ct::NoCt;
use openflow::Verdict;
use ovsdp::OvsDatapath;
use pkt::Packet;
use workloads::usecases::{PORT_NET, PORT_USER};
use workloads::{l4_lb, snat_edge, stateful_acl_gateway as acl};

fn measured_packets() -> usize {
    if bench_harness::quick_mode() {
        200_000
    } else {
        1_000_000
    }
}

fn established_flows() -> usize {
    // Comfortably inside the EMC so the stateless baseline is pure
    // exact-match hits and the stateful runs isolate the conntrack cost.
    std::env::var("CT_BENCH_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_024)
}

/// Ring passes per interleaving slice: big enough that per-slice cache
/// re-warming amortises away, small enough that machine-load drift hits
/// every workload equally.
const PASSES_PER_SLICE: usize = 8;

/// A burst-processing closure: chunk of packets in, verdicts out.
type BurstFn = Box<dyn FnMut(&mut [Packet], &mut Vec<Verdict>)>;

/// One workload being measured: its pristine packet ring, a scratch copy
/// the bursts run over (translating pipelines rewrite packets in place),
/// and the closure that processes one burst.
struct Runner {
    name: &'static str,
    ring: Vec<Packet>,
    work: Vec<Packet>,
    process: BurstFn,
    /// Engine counters for hit accounting, when the workload has an engine.
    stats: Option<Arc<CtStats>>,
    timer: Duration,
    done: u64,
    /// Fastest single ring pass observed (ns/packet). On a shared machine
    /// interference only ever *adds* time, so the minimum over many short
    /// passes estimates the undisturbed cost — the `timeit` rationale. The
    /// headline ratios use this; the mean is reported alongside.
    best_pass_ns: f64,
    hits_at_start: u64,
}

impl Runner {
    fn new(
        name: &'static str,
        ring: Vec<Packet>,
        stats: Option<Arc<CtStats>>,
        process: BurstFn,
    ) -> Runner {
        let hits_at_start = stats.as_ref().map_or(0, |s| s.snapshot().hits);
        Runner {
            name,
            work: ring.clone(),
            ring,
            process,
            stats,
            timer: Duration::ZERO,
            done: 0,
            best_pass_ns: f64::INFINITY,
            hits_at_start,
        }
    }

    /// One measurement slice: [`PASSES_PER_SLICE`] replays of the ring,
    /// restoring the pristine packets outside the timed region each pass.
    fn slice(&mut self, verdicts: &mut Vec<Verdict>) {
        for _ in 0..PASSES_PER_SLICE {
            self.work.clone_from_slice(&self.ring);
            let start = Instant::now();
            for chunk in self.work.chunks_mut(BURST) {
                (self.process)(chunk, verdicts);
                std::hint::black_box(verdicts.len());
            }
            let elapsed = start.elapsed();
            self.timer += elapsed;
            self.done += self.work.len() as u64;
            let pass_ns = elapsed.as_nanos() as f64 / self.work.len().max(1) as f64;
            if pass_ns < self.best_pass_ns {
                self.best_pass_ns = pass_ns;
            }
        }
    }

    /// Mean ns/packet over the whole run (includes interference).
    fn mean_ns_per_packet(&self) -> f64 {
        self.timer.as_nanos() as f64 / self.done.max(1) as f64
    }

    /// Best-pass ns/packet — the noise-robust estimate the ratios use.
    fn ns_per_packet(&self) -> f64 {
        self.best_pass_ns
    }

    fn ct_hits_per_packet(&self) -> Option<f64> {
        let stats = self.stats.as_ref()?;
        let hits = stats.snapshot().hits - self.hits_at_start;
        Some(hits as f64 / self.done.max(1) as f64)
    }
}

/// Builds the stateless EMC-hit baseline runner.
fn stateless_runner(ring: &[Packet]) -> Runner {
    let dp = OvsDatapath::new(stateless_pipeline());
    let mut warm: Vec<Packet> = ring.to_vec();
    let mut verdicts = Vec::with_capacity(BURST);
    for chunk in warm.chunks_mut(BURST) {
        dp.process_batch_into_ct(chunk, &mut verdicts, &mut NoCt);
    }
    Runner::new(
        "stateless_baseline",
        ring.to_vec(),
        None,
        Box::new(move |chunk, verdicts| dp.process_batch_into_ct(chunk, verdicts, &mut NoCt)),
    )
}

/// Builds an OVS-backed stateful runner: datapath + engine, every ring
/// connection warmed to established before measurement starts.
fn ovs_ct_runner(
    name: &'static str,
    pipeline: openflow::Pipeline,
    config: &conntrack::CtConfig,
    ring: &[Packet],
    reply_port: u32,
) -> Runner {
    let dp = OvsDatapath::new(pipeline);
    let mut engine = CtEngine::new(config);
    warm_established(&dp, &mut engine, ring, reply_port);
    // Flush warm-up hits so the measured hits/packet starts from zero.
    engine.advance_to(engine.now());
    let stats = Arc::clone(engine.stats());
    Runner::new(
        name,
        ring.to_vec(),
        Some(stats),
        Box::new(move |chunk, verdicts| {
            engine.tick();
            dp.process_batch_into_ct(chunk, verdicts, &mut engine);
        }),
    )
}

/// Builds the compiled-datapath stateful runner on the ACL pipeline.
fn eswitch_ct_runner(ring: &[Packet]) -> Runner {
    let pipeline = acl::build_pipeline(&acl::StatefulAclConfig::default());
    let runtime = eswitch::runtime::EswitchRuntime::compile(pipeline).expect("pipeline compiles");
    let mut engine = CtEngine::new(&acl::ct_config());
    // The compiled path needs no cache fill, but the connections must exist
    // and be established before the timed loop.
    let mut verdicts = Vec::with_capacity(BURST);
    for packet in ring {
        let mut forward = packet.clone();
        runtime.process_batch_into_ct(
            std::slice::from_mut(&mut forward),
            &mut verdicts,
            &mut engine,
        );
        if let Some(mut reply) = workloads::reply_to(&forward, PORT_NET) {
            runtime.process_batch_into_ct(
                std::slice::from_mut(&mut reply),
                &mut verdicts,
                &mut engine,
            );
        }
    }
    engine.advance_to(engine.now());
    let stats = Arc::clone(engine.stats());
    Runner::new(
        "ct_established_eswitch",
        ring.to_vec(),
        Some(stats),
        Box::new(move |chunk, verdicts| {
            engine.tick();
            runtime.process_batch_into_ct(chunk, verdicts, &mut engine);
        }),
    )
}

fn main() {
    let mut out_path = String::from("BENCH_conntrack.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    print_header(
        "fig_conntrack",
        "stateful-datapath throughput and capacity (BENCH_conntrack.json)",
    );

    let flows = established_flows();
    let ring_user = data_ring(flows, PORT_USER);
    let lb_config = l4_lb::L4LbConfig::default();
    // LB traffic arrives on the network port addressed to the VIP.
    let ring_vip: Vec<Packet> = {
        let requests = l4_lb::build_requests(&lb_config, flows);
        (0..ring_user.len())
            .map(|i| requests.packet(i % flows))
            .collect()
    };

    // Control: the ct pipeline through the null tracker isolates the
    // plumbing cost from the engine cost (see the module docs).
    let noct_runner = {
        let dp = OvsDatapath::new(acl::build_pipeline(&acl::StatefulAclConfig::default()));
        let mut warm: Vec<Packet> = ring_user.to_vec();
        let mut verdicts = Vec::with_capacity(BURST);
        for chunk in warm.chunks_mut(BURST) {
            dp.process_batch_into_ct(chunk, &mut verdicts, &mut NoCt);
        }
        Runner::new(
            "ct_scaffold_noct",
            ring_user.to_vec(),
            None,
            Box::new(move |chunk, verdicts| dp.process_batch_into_ct(chunk, verdicts, &mut NoCt)),
        )
    };
    let mut runners = [
        noct_runner,
        stateless_runner(&ring_user),
        ovs_ct_runner(
            "ct_established",
            acl::build_pipeline(&acl::StatefulAclConfig::default()),
            &acl::ct_config(),
            &ring_user,
            PORT_NET,
        ),
        eswitch_ct_runner(&ring_user),
        ovs_ct_runner(
            "snat_established",
            snat_edge::build_pipeline(&snat_edge::SnatEdgeConfig::default()),
            &snat_edge::ct_config(),
            &ring_user,
            PORT_NET,
        ),
        ovs_ct_runner(
            "l4_lb_established",
            l4_lb::build_pipeline(&lb_config),
            &l4_lb::ct_config(&lb_config),
            &ring_vip,
            PORT_USER,
        ),
    ];

    // Interleave: round-robin millisecond-scale slices until every workload
    // has processed its packet quota, so load drift cancels out of ratios.
    let target = measured_packets() as u64;
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST);
    while runners.iter().any(|r| r.done < target) {
        for runner in &mut runners {
            if runner.done < target {
                runner.slice(&mut verdicts);
            }
        }
    }

    let baseline_ns = runners[1].ns_per_packet();
    for r in &runners {
        let ns = r.ns_per_packet();
        print!(
            "{:<22} {:>12.0} pps  {:>8.1} ns/pkt (mean {:>6.1})  ratio {:.3}",
            r.name,
            1e9 / ns,
            ns,
            r.mean_ns_per_packet(),
            baseline_ns / ns
        );
        if let Some(hits) = r.ct_hits_per_packet() {
            print!("  ct hits/pkt {hits:.3}");
        }
        println!();
    }

    let (capacity, offered) = if bench_harness::quick_mode() {
        (1 << 16, 48 * 1024)
    } else {
        (1 << 21, 1_500_000)
    };
    println!("\nfilling {offered} flows into a {capacity}-slab engine…");
    let cap: CapacityReport = run_capacity(capacity, offered);
    println!(
        "capacity: live_peak {} / {} slots, {:.1} MiB, after idle timeout {} live ({} reclaimed), identity {}",
        cap.live_peak,
        cap.capacity,
        cap.memory_bytes as f64 / (1024.0 * 1024.0),
        cap.live_after_timeout,
        cap.evicted_idle,
        cap.identity_holds
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"conntrack\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(json, "  \"burst_size\": {BURST},");
    let _ = writeln!(json, "  \"measured_packets\": {},", measured_packets());
    let _ = writeln!(json, "  \"established_flows\": {flows},");
    let _ = writeln!(json, "  \"quick\": {},", bench_harness::quick_mode());
    json.push_str("  \"established_path\": [\n");
    let n = runners.len();
    for (i, r) in runners.iter().enumerate() {
        let ns = r.ns_per_packet();
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"pps\": {:.0}, \"ns_per_packet\": {:.2}, \"mean_ns_per_packet\": {:.2}, \"ratio_vs_stateless\": {:.4}",
            r.name,
            1e9 / ns,
            ns,
            r.mean_ns_per_packet(),
            baseline_ns / ns
        );
        if let Some(hits) = r.ct_hits_per_packet() {
            let _ = write!(json, ", \"ct_hits_per_packet\": {hits:.4}");
        }
        json.push('}');
        json.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"capacity\": {\n");
    let _ = writeln!(json, "    \"slab_capacity\": {},", cap.capacity);
    let _ = writeln!(json, "    \"offered_flows\": {},", cap.offered);
    let _ = writeln!(json, "    \"live_peak\": {},", cap.live_peak);
    let _ = writeln!(
        json,
        "    \"live_after_idle_timeout\": {},",
        cap.live_after_timeout
    );
    let _ = writeln!(json, "    \"idle_reclaimed\": {},", cap.evicted_idle);
    let _ = writeln!(json, "    \"memory_bytes\": {},", cap.memory_bytes);
    let _ = writeln!(
        json,
        "    \"bytes_per_slot\": {:.1},",
        cap.memory_bytes as f64 / cap.capacity as f64
    );
    let _ = writeln!(json, "    \"stats_identity_holds\": {}", cap.identity_holds);
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}
